// Deduplicating compression of a synthetic archive using the hyperqueue
// dedup pipeline (the paper's Figure 10c structure), with verification by
// reassembly. Shows the public app API end to end.
//
//   $ ./examples/dedup_archive [workers] [megabytes]
#include <cstdio>
#include <cstdlib>

#include "apps/dedup/dedup.hpp"
#include "util/datagen.hpp"

int main(int argc, char** argv) {
  hq::apps::dedup::config cfg;
  cfg.threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  cfg.input_bytes =
      (argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4) << 20;

  auto input =
      hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  auto r = hq::apps::dedup::run_hyperqueue(cfg, input);

  std::printf("input      : %zu bytes\n", input.size());
  std::printf("output     : %zu bytes (%.1f%%)\n", r.output.size(),
              100.0 * static_cast<double>(r.output.size()) /
                  static_cast<double>(input.size()));
  std::printf("chunks     : %zu total, %zu unique (%.1f%% duplicates)\n",
              r.total_chunks, r.unique_chunks,
              100.0 * static_cast<double>(r.total_chunks - r.unique_chunks) /
                  static_cast<double>(r.total_chunks));
  std::printf("time       : %.3f s (%u workers)\n", r.seconds, cfg.threads);

  auto back = hq::apps::dedup::reassemble(r.output.data(), r.output.size());
  const bool ok = back == input;
  std::printf("verification: %s\n", ok ? "reassembled stream matches input"
                                       : "MISMATCH");
  return ok ? 0 : 1;
}
