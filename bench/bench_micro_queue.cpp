// Hyperqueue microbenchmarks and design ablations:
//  * push/pop throughput vs segment length (Section 5.1 tuning),
//  * slice API vs element-wise push/pop (Section 5.2),
//  * producer -> consumer task handoff.
//
// Provides its own main(): emits a BENCH_queue.json trajectory record with
// a segment/attachment steady-state probe as the correctness gate (see
// bench_json.hpp; --json PATH overrides, --quick shrinks to smoke size).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "hq.hpp"

namespace {

// Section 5.1: segment-length sweep. One pushpop task in ring steady state.
void BM_PushPop_SegmentLength(benchmark::State& state) {
  const auto seglen = static_cast<std::size_t>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    state.PauseTiming();
    long sum = 0;
    state.ResumeTiming();
    sched.run([&] {
      hq::hyperqueue<int> q(seglen);
      hq::spawn(
          [&sum](hq::pushpopdep<int> qq) {
            for (int i = 0; i < 20000; ++i) {
              qq.push(i);
              sum += qq.pop();
            }
          },
          (hq::pushpopdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PushPop_SegmentLength)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

// Section 5.2: slices amortize the per-element privilege lookup.
void BM_ElementWise(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 20000; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ElementWise);

void BM_Slices(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            int v = 0;
            while (v < 20000) {
              auto ws = qq.get_write_slice(256);
              for (std::size_t i = 0; i < ws.size(); ++i) ws.emplace(i, v++);
              ws.commit();
            }
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            for (;;) {
              auto rs = qq.get_read_slice(256);
              if (rs.empty()) break;
              for (int v : rs) sum += v;
              rs.release();
            }
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_Slices);

// Trivial-type batched transfer: write slices in, pop_bulk out (one memcpy
// per contiguous run on both sides).
void BM_PopBulk(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            int v = 0;
            while (v < 20000) {
              auto ws = qq.get_write_slice(256);
              for (std::size_t i = 0; i < ws.size(); ++i) ws.emplace(i, v++);
              ws.commit();
            }
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            int buf[256];
            for (;;) {
              const std::size_t n = qq.pop_bulk(buf, 256);
              if (n == 0) break;
              for (std::size_t i = 0; i < n; ++i) sum += buf[i];
            }
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PopBulk);

// Parallel producers: the paper's scale-free claim (Section 4). A fixed
// 64k-element stream is split across 1/8/64 producer tasks pushing into one
// queue; with constant total work, ns_per_op across the arms measures the
// cost of multiplying producers directly (it should stay flat — the sharded
// scan list splices and closes shards without any shared lock).
void BM_ParallelProducers(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  constexpr int kTotal = 64000;
  const int per_leaf = kTotal / leaves;
  hq::scheduler sched(2);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(256);
      for (int l = 0; l < leaves; ++l) {
        hq::spawn(
            [l, per_leaf](hq::pushdep<int> qq) {
              for (int i = 0; i < per_leaf; ++i) qq.push(l * per_leaf + i);
            },
            (hq::pushdep<int>)q);
      }
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_ParallelProducers)->Arg(1)->Arg(8)->Arg(64);

// Placement ablation of the same workload: identical stream, identical
// worker count, only the worker->CPU policy differs (compact packs both
// workers into one cache domain; scatter spreads them across nodes). On a
// single-node machine the two arms coincide — the records then document
// that placement is free, not that it helps.
void BM_ParallelProducersPlaced(benchmark::State& state,
                                hq::placement_policy policy) {
  const int leaves = static_cast<int>(state.range(0));
  constexpr int kTotal = 64000;
  const int per_leaf = kTotal / leaves;
  hq::scheduler sched(2, {policy, nullptr, {}});
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(256);
      for (int l = 0; l < leaves; ++l) {
        hq::spawn(
            [l, per_leaf](hq::pushdep<int> qq) {
              for (int i = 0; i < per_leaf; ++i) qq.push(l * per_leaf + i);
            },
            (hq::pushdep<int>)q);
      }
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK_CAPTURE(BM_ParallelProducersPlaced, compact,
                  hq::placement_policy::compact)
    ->Arg(8)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_ParallelProducersPlaced, scatter,
                  hq::placement_policy::scatter)
    ->Arg(8)
    ->Arg(64);

/// Pick a CPU pair from the machine model at a requested topology distance:
/// `cross_node` = two CPUs on different nodes, otherwise two CPUs sharing
/// an LLC. Falls back to the nearest available pair (single-node machines
/// have no cross-node pair; the record still exists and simply measures the
/// same placement as same_llc).
std::vector<unsigned> pick_pair(bool cross_node) {
  const hq::topology& t = hq::topology::system();
  const auto& cpus = t.cpus();
  if (cpus.size() < 2) return {cpus.empty() ? 0u : cpus[0].cpu};
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    for (std::size_t j = i + 1; j < cpus.size(); ++j) {
      if (cross_node ? cpus[i].node != cpus[j].node
                     : cpus[i].llc == cpus[j].llc) {
        return {cpus[i].cpu, cpus[j].cpu};
      }
    }
  }
  return {cpus.front().cpu, cpus.back().cpu};
}

// Producer/consumer pair at a controlled topology distance: same LLC vs
// different nodes. The element stream crosses exactly the boundary the
// explicit pinning chooses, so the arm difference is the cache/interconnect
// cost the placement policies are designed to manage.
void BM_PairPlacement(benchmark::State& state, bool cross_node) {
  hq::scheduler sched(
      2, {hq::placement_policy::compact, nullptr, pick_pair(cross_node)});
  constexpr int kTotal = 64000;
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(256);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < kTotal; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK_CAPTURE(BM_PairPlacement, same_llc, false);
BENCHMARK_CAPTURE(BM_PairPlacement, cross_node, true);

/// Steady-state probe: a producer/consumer ring that stays in step must
/// recycle one segment and a bounded set of qattaches — no fresh segment or
/// attachment allocations once warm. This is the JSON correctness gate.
struct probe_result {
  hq::detail::seg_pool_stats segs;
  hq::detail::obj_pool::stats_t attaches;
  bool zero_alloc_steady_state = false;
  bool sum_ok = false;
  std::uint64_t mu_attach_push_burst = 0;  // mu acquisitions by push spawns
  bool zero_mutex_push_path = false;
  bool push_burst_sum_ok = false;
  hq::detail::obj_pool::stats_t loc_frames;   // compact/flat locality run
  hq::detail::obj_pool::stats_t loc_attaches;
  bool locality_ok = false;
  bool locality_sum_ok = false;
};

/// Locality gate: under compact placement on a single-node (flat synthetic)
/// topology every worker magazine and slab is homed on node 0, so the pool
/// locality counters must attribute zero remote allocations — remote blocks
/// can only be minted by cross-node return-stack migration, and there is no
/// second node. Deterministic by construction (no dependence on the CI
/// machine's real topology or on whether the pins stuck).
void run_locality_probe(bool quick, probe_result& pr) {
  const int rounds = quick ? 8 : 32;
  const hq::topology topo = hq::topology::synthetic("flat");
  hq::scheduler sched(2, {hq::placement_policy::compact, &topo, {}});
  long total = 0;
  sched.run([&] {
    for (int r = 0; r < rounds; ++r) {
      hq::hyperqueue<int> q(256);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 4096; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&total](hq::popdep<int> qq) {
            long s = 0;
            while (!qq.empty()) s += qq.pop();
            total += s;
          },
          (hq::popdep<int>)q);
      hq::sync();
    }
  });
  pr.loc_frames = sched.frame_pool_stats();
  pr.loc_attaches = sched.attach_pool_stats();
  pr.locality_ok = pr.loc_frames.remote_allocs == 0 &&
                   pr.loc_attaches.remote_allocs == 0 &&
                   pr.loc_frames.node_local_allocs > 0 &&
                   pr.loc_attaches.node_local_allocs > 0;
  pr.locality_sum_ok =
      total == static_cast<long>(rounds) * (4096L * 4095 / 2);
}

/// Zero-mutex-on-push gate: repeated wide producer-only bursts must never
/// touch queue_cb::mu. mu_attach counts pop-FIFO registrations only, so its
/// delta across a burst of push spawns pins the lock-free producer contract
/// (push, write_slice, push-privileged spawn and completion); mu_view must
/// stay 0 outright. The owner then drains and checks the serial-elision sum.
void run_push_probe(bool quick, probe_result& pr) {
  const int rounds = quick ? 4 : 16;
  const int producers = 64;
  const int per_leaf = 256;
  hq::scheduler sched(2);
  std::uint64_t mu_delta = 0;
  bool sums_ok = true;
  sched.run([&] {
    for (int r = 0; r < rounds; ++r) {
      hq::hyperqueue<int> q(256);
      const hq::data_path_stats before = q.data_stats();
      for (int l = 0; l < producers; ++l) {
        hq::spawn(
            [l, per_leaf](hq::pushdep<int> qq) {
              for (int i = 0; i < per_leaf; ++i) qq.push(l * per_leaf + i);
            },
            (hq::pushdep<int>)q);
      }
      q.sync_push();
      const hq::data_path_stats after = q.data_stats();
      mu_delta += (after.mu_attach - before.mu_attach) +
                  (after.mu_view - before.mu_view);
      long sum = 0;
      while (!q.empty()) sum += q.pop();
      const long n = static_cast<long>(producers) * per_leaf;
      sums_ok = sums_ok && sum == n * (n - 1) / 2;
    }
  });
  pr.mu_attach_push_burst = mu_delta;
  pr.zero_mutex_push_path = mu_delta == 0;
  pr.push_burst_sum_ok = sums_ok;
}

probe_result run_probe(bool quick) {
  probe_result pr;
  const int rounds = quick ? 10 : 50;
  const int per_round = 4096;
  hq::scheduler sched(2);
  long total = 0;
  hq::detail::seg_pool_stats seg_warm{}, seg_after{};
  hq::detail::obj_pool::stats_t at_warm{}, at_after{};
  sched.run([&] {
    hq::hyperqueue<int> q(256);
    auto round = [&q, &total] {
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < per_round; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&total](hq::popdep<int> qq) {
            long s = 0;
            while (!qq.empty()) s += qq.pop();
            total += s;  // pop tasks run FIFO: no race on total
          },
          (hq::popdep<int>)q);
      hq::sync();
    };
    for (int r = 0; r < rounds; ++r) round();
    seg_warm = q.pool_stats();
    at_warm = sched.attach_pool_stats();
    for (int r = 0; r < rounds; ++r) round();
    seg_after = q.pool_stats();
    at_after = sched.attach_pool_stats();
  });
  pr.segs = seg_after;
  pr.attaches = at_after;
  // Gate with worst-case-derived tolerances so CI-runner preemption cannot
  // fail the job spuriously: a fully unconsumed push burst needs at most
  // ceil(per_round / 256) + 1 segments beyond the warm-up peak, and each
  // measured round can catch at most its two attachments in cross-worker
  // flight. A real leak grows with every round and sails past both bounds.
  const std::uint64_t seg_slack = per_round / 256 + 2;
  const std::uint64_t at_slack = 2u * static_cast<std::uint64_t>(rounds);
  pr.zero_alloc_steady_state =
      seg_after.allocated <= seg_warm.allocated + seg_slack &&
      seg_after.recycled > seg_warm.recycled &&
      at_after.allocated <= at_warm.allocated + at_slack &&
      at_after.recycled > at_warm.recycled;
  pr.sum_ok =
      total == 2L * rounds * (static_cast<long>(per_round) * (per_round - 1) / 2);
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  const auto opt =
      hq::bench::parse_micro_args(argc, argv, "BENCH_queue.json", args);
  benchmark::Initialize(&argc, args.data());
  hq::bench::collecting_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  probe_result pr = run_probe(opt.quick);
  run_push_probe(opt.quick, pr);
  run_locality_probe(opt.quick, pr);

  // Scale-free gate (machine-independent, so it can run on any CI host):
  // BM_ParallelProducers pushes the same 64k-element stream at every leaf
  // count, so 64 producers may cost at most kScaleFreeBound x the
  // single-producer time. A producer-side serialization bug shows up here
  // as a leaf-count-proportional blowup.
  constexpr double kScaleFreeBound = 8.0;
  double ns_1 = 0, ns_64 = 0;
  for (const auto& row : reporter.rows) {
    if (row.name == "BM_ParallelProducers/1") ns_1 = row.ns_per_op;
    if (row.name == "BM_ParallelProducers/64") ns_64 = row.ns_per_op;
  }
  const double scale_ratio = ns_1 > 0 ? ns_64 / ns_1 : -1.0;
  const bool scale_free = scale_ratio > 0 && scale_ratio <= kScaleFreeBound;
  if (!scale_free) {
    std::fprintf(stderr,
                 "FAIL: BM_ParallelProducers/64 is %.2fx the single-producer "
                 "time for the same total work (bound: %.1fx)\n",
                 scale_ratio, kScaleFreeBound);
  }

  if (!pr.zero_alloc_steady_state) {
    std::fprintf(stderr,
                 "FAIL: segment/attachment pools kept allocating in steady "
                 "state\n");
  }
  if (!pr.sum_ok) std::fprintf(stderr, "FAIL: probe checksum mismatch\n");
  if (!pr.zero_mutex_push_path) {
    std::fprintf(stderr,
                 "FAIL: producer path acquired queue_cb::mu %llu times "
                 "(contract: zero)\n",
                 static_cast<unsigned long long>(pr.mu_attach_push_burst));
  }
  if (!pr.push_burst_sum_ok) {
    std::fprintf(stderr, "FAIL: push-burst checksum mismatch\n");
  }
  if (!pr.locality_ok) {
    std::fprintf(stderr,
                 "FAIL: pool locality counters report remote allocations "
                 "under compact single-node placement (frames: %llu local / "
                 "%llu remote; attaches: %llu local / %llu remote)\n",
                 static_cast<unsigned long long>(pr.loc_frames.node_local_allocs),
                 static_cast<unsigned long long>(pr.loc_frames.remote_allocs),
                 static_cast<unsigned long long>(pr.loc_attaches.node_local_allocs),
                 static_cast<unsigned long long>(pr.loc_attaches.remote_allocs));
  }
  if (!pr.locality_sum_ok) {
    std::fprintf(stderr, "FAIL: locality-probe checksum mismatch\n");
  }

  const bool all_ok = pr.zero_alloc_steady_state && pr.sum_ok &&
                      pr.zero_mutex_push_path && pr.push_burst_sum_ok &&
                      pr.locality_ok && pr.locality_sum_ok && scale_free &&
                      !reporter.rows.empty();
  const bool wrote = hq::bench::write_micro_json(
      opt, "micro_queue", reporter.rows, all_ok, [&](FILE* f) {
        std::fprintf(f, "  \"probe\": {\n");
        std::fprintf(f,
                     "    \"segment_pool\": {\"allocated\": %llu, \"recycled\": "
                     "%llu, \"high_water\": %llu},\n",
                     static_cast<unsigned long long>(pr.segs.allocated),
                     static_cast<unsigned long long>(pr.segs.recycled),
                     static_cast<unsigned long long>(pr.segs.high_water));
        hq::bench::emit_pool_json(f, "attach_pool", pr.attaches);
        std::fprintf(f, "    \"zero_alloc_steady_state\": %s,\n",
                     pr.zero_alloc_steady_state ? "true" : "false");
        std::fprintf(f, "    \"mu_attach_push_burst\": %llu,\n",
                     static_cast<unsigned long long>(pr.mu_attach_push_burst));
        std::fprintf(f, "    \"zero_mutex_push_path\": %s,\n",
                     pr.zero_mutex_push_path ? "true" : "false");
        std::fprintf(f, "    \"parallel_producers_64_vs_1\": %.3f,\n",
                     scale_ratio);
        std::fprintf(f, "    \"scale_free\": %s,\n",
                     scale_free ? "true" : "false");
        std::fprintf(f, "    \"locality\": {\n");
        std::fprintf(f,
                     "      \"frame_node_local\": %llu, \"frame_remote\": "
                     "%llu,\n",
                     static_cast<unsigned long long>(
                         pr.loc_frames.node_local_allocs),
                     static_cast<unsigned long long>(pr.loc_frames.remote_allocs));
        std::fprintf(f,
                     "      \"attach_node_local\": %llu, \"attach_remote\": "
                     "%llu,\n",
                     static_cast<unsigned long long>(
                         pr.loc_attaches.node_local_allocs),
                     static_cast<unsigned long long>(
                         pr.loc_attaches.remote_allocs));
        std::fprintf(f, "      \"placement\": \"%s\",\n",
                     hq::to_string(hq::placement_policy_from_env()));
        std::fprintf(f, "      \"locality_ok\": %s\n    }\n  },\n",
                     pr.locality_ok ? "true" : "false");
      });
  return all_ok && wrote ? 0 : 1;
}
