// Core hyperqueue semantics: the Figure 2 program, FIFO order under
// parallelism, recursive producers, scheduling rules, concurrent push/pop,
// owner-task usage, value visibility (rule 4), segment recycling.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "hq.hpp"

namespace {

class HyperqueueParam : public ::testing::TestWithParam<unsigned> {};

// --------------------------------------------------------- Figure 2 shapes

void leaf_producer(hq::pushdep<int> q, int start, int end) {
  for (int n = start; n < end; ++n) q.push(n);
}

void recursive_producer(hq::pushdep<int> q, int start, int end) {
  if (end - start <= 10) {
    for (int n = start; n < end; ++n) q.push(n);
  } else {
    hq::spawn(recursive_producer, q, start, (start + end) / 2);
    hq::spawn(recursive_producer, q, (start + end) / 2, end);
    hq::sync();
  }
}

// Figure 3: shallow spawn tree with better locality.
void blocked_producer(hq::pushdep<int> q, int start, int end) {
  if (end - start <= 10) {
    for (int n = start; n < end; ++n) q.push(n);
  } else {
    for (int n = start; n < end; n += 10) {
      hq::spawn(leaf_producer, q, n, std::min(n + 10, end));
    }
    hq::sync();
  }
}

void collecting_consumer(hq::popdep<int> q, std::vector<int>* out) {
  while (!q.empty()) out->push_back(q.pop());
}

TEST_P(HyperqueueParam, Figure2TwoStagePipeline) {
  hq::scheduler sched(GetParam());
  constexpr int kTotal = 500;
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue;
    hq::spawn(recursive_producer, (hq::pushdep<int>)queue, 0, kTotal);
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got);
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i)
        << "consumer must observe serial program order";
  }
}

TEST_P(HyperqueueParam, Figure3BlockedProducerKeepsOrder) {
  hq::scheduler sched(GetParam());
  constexpr int kTotal = 333;
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue(16);  // small segments: forces chaining
    hq::spawn(blocked_producer, (hq::pushdep<int>)queue, 0, kTotal);
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got);
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(HyperqueueParam, MultipleProducersInProgramOrder) {
  // Several sibling producers; values must appear in sibling spawn order.
  hq::scheduler sched(GetParam());
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue(8);
    for (int blk = 0; blk < 20; ++blk) {
      hq::spawn(leaf_producer, (hq::pushdep<int>)queue, blk * 10, blk * 10 + 10);
    }
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(HyperqueueParam, OwnerPushesDirectly) {
  // The owner task holds both privileges and may use the queue without
  // spawning (Figure 6 idiom).
  hq::scheduler sched(GetParam());
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue;
    for (int i = 0; i < 50; ++i) queue.push(i);
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(HyperqueueParam, OwnerPopsDirectly) {
  hq::scheduler sched(GetParam());
  sched.run([&] {
    hq::hyperqueue<int> queue;
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 0, 30);
    int expect = 0;
    while (!queue.empty()) {
      ASSERT_EQ(queue.pop(), expect);
      ++expect;
    }
    EXPECT_EQ(expect, 30);
    hq::sync();
  });
}

TEST_P(HyperqueueParam, PushesAfterConsumerSpawnAreInvisible) {
  // Scheduling rule 4: a consumer must not see values pushed by tasks that
  // are younger in program order, even though they run concurrently.
  hq::scheduler sched(GetParam());
  std::vector<int> got_first, got_second;
  sched.run([&] {
    hq::hyperqueue<int> queue;
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 0, 10);
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got_first);
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 100, 110);  // younger
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got_second);
    hq::sync();
  });
  ASSERT_EQ(got_first.size(), 10u) << "first consumer sees exactly the older pushes";
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got_first[static_cast<std::size_t>(i)], i);
  ASSERT_EQ(got_second.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got_second[static_cast<std::size_t>(i)], 100 + i)
        << "second consumer sees exactly the younger pushes";
  }
}

TEST_P(HyperqueueParam, Section23SchedulingRules) {
  // The six-task example of Section 2.3: A,B push; C pops; D pushpop;
  // E push; F pops. Constraints: D after C; F after D; E not visible to C/D.
  hq::scheduler sched(GetParam());
  std::atomic<int> c_done{0}, d_started{0}, d_done{0}, f_started{0};
  std::vector<int> c_got, d_got, f_got;
  sched.run([&] {
    hq::hyperqueue<int> queue;
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 0, 5);     // A
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 5, 10);    // B
    hq::spawn(
        [&](hq::popdep<int> q) {  // C: pop 6 of the 10
          for (int i = 0; i < 6; ++i) {
            ASSERT_FALSE(q.empty());
            c_got.push_back(q.pop());
          }
          c_done.store(1);
        },
        (hq::popdep<int>)queue);
    hq::spawn(
        [&](hq::pushpopdep<int> q) {  // D
          d_started.store(1);
          EXPECT_EQ(c_done.load(), 1) << "rule 3: D must wait for C";
          while (!q.empty()) d_got.push_back(q.pop());
          q.push(777);
          d_done.store(1);
        },
        (hq::pushpopdep<int>)queue);
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 100, 103);  // E
    hq::spawn(
        [&](hq::popdep<int> q) {  // F
          f_started.store(1);
          EXPECT_EQ(d_done.load(), 1) << "rule 3: F must wait for D";
          while (!q.empty()) f_got.push_back(q.pop());
        },
        (hq::popdep<int>)queue);
    hq::sync();
  });
  // C saw 0..5, D saw the remaining 6..9 (E's values are younger than D).
  ASSERT_EQ(c_got.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(c_got[static_cast<std::size_t>(i)], i);
  ASSERT_EQ(d_got.size(), 4u) << "D sees only values older than itself";
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d_got[static_cast<std::size_t>(i)], 6 + i);
  // F sees D's push (777) then E's values, in program order.
  ASSERT_EQ(f_got.size(), 4u);
  EXPECT_EQ(f_got[0], 777);
  EXPECT_EQ(f_got[1], 100);
  EXPECT_EQ(f_got[2], 101);
  EXPECT_EQ(f_got[3], 102);
}

TEST_P(HyperqueueParam, ConcurrentPushAndPop) {
  // Rule 2: the consumer runs concurrently with producers; with a slow
  // producer the consumer's empty() must block, not return true early.
  hq::scheduler sched(GetParam());
  constexpr int kTotal = 2000;
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue(32);
    hq::spawn(
        [](hq::pushdep<int> q, int total) {
          for (int i = 0; i < total; ++i) q.push(i);
        },
        (hq::pushdep<int>)queue, kTotal);
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &got);
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(HyperqueueParam, EmptyQueueIsEmptyImmediately) {
  hq::scheduler sched(GetParam());
  sched.run([&] {
    hq::hyperqueue<int> queue;
    EXPECT_TRUE(queue.empty());
    hq::spawn([](hq::popdep<int> q) { EXPECT_TRUE(q.empty()); },
              (hq::popdep<int>)queue);
    hq::sync();
  });
}

TEST_P(HyperqueueParam, DestructionWithValuesInside) {
  // The paper allows destroying a hyperqueue with values still stored.
  hq::scheduler sched(GetParam());
  static std::atomic<int> live_objects{0};
  struct tracked {
    tracked() noexcept { live_objects.fetch_add(1); }
    tracked(const tracked&) noexcept { live_objects.fetch_add(1); }
    tracked(tracked&&) noexcept { live_objects.fetch_add(1); }
    ~tracked() { live_objects.fetch_sub(1); }
  };
  live_objects.store(0);
  sched.run([&] {
    hq::hyperqueue<tracked> queue(8);
    hq::spawn(
        [](hq::pushdep<tracked> q) {
          for (int i = 0; i < 100; ++i) q.push(tracked{});
        },
        (hq::pushdep<tracked>)queue);
    hq::sync();
  });
  EXPECT_EQ(live_objects.load(), 0) << "leftover values must be destroyed";
}

TEST_P(HyperqueueParam, MoveOnlyElementType) {
  hq::scheduler sched(GetParam());
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<std::unique_ptr<int>> queue;
    hq::spawn(
        [](hq::pushdep<std::unique_ptr<int>> q) {
          for (int i = 0; i < 64; ++i) q.push(std::make_unique<int>(i));
        },
        (hq::pushdep<std::unique_ptr<int>>)queue);
    hq::spawn(
        [&got](hq::popdep<std::unique_ptr<int>> q) {
          while (!q.empty()) got.push_back(*q.pop());
        },
        (hq::popdep<std::unique_ptr<int>>)queue);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(HyperqueueParam, SteadyStatePairReusesOneSegment) {
  // Section 3.2: a producer/consumer pair that stays in step recycles its
  // segment circularly — zero allocation in steady state. A pushpop task
  // alternating push and pop is the deterministic way to exercise this.
  hq::scheduler sched(GetParam());
  std::size_t segments_after = 0;
  sched.run([&] {
    hq::hyperqueue<int> queue(16);
    hq::spawn(
        [](hq::pushpopdep<int> q) {
          for (int i = 0; i < 10000; ++i) {
            q.push(i);
            ASSERT_FALSE(q.empty());
            ASSERT_EQ(q.pop(), i);
          }
        },
        (hq::pushpopdep<int>)queue);
    hq::sync();
    segments_after = queue.segments();
  });
  EXPECT_LE(segments_after, 2u) << "in-step pair must ring-recycle one segment";
}

TEST_P(HyperqueueParam, SerialExecutionGrowsQueue) {
  // Section 2.1: under depth-first (serial) execution the queue stores all
  // produced data before any is consumed — the motivation for the loop-split
  // idiom of Section 5.4. Verify the queue indeed grows to hold everything
  // when the producer completes before the consumer starts.
  hq::scheduler sched(GetParam());
  std::size_t peak_segments = 0;
  sched.run([&] {
    hq::hyperqueue<int> queue(16);
    hq::spawn(
        [](hq::pushdep<int> q) {
          for (int i = 0; i < 1600; ++i) q.push(i);
        },
        (hq::pushdep<int>)queue);
    hq::sync();  // force full production before consumption
    peak_segments = queue.segments();
    hq::spawn(
        [](hq::popdep<int> q) {
          long sum = 0;
          while (!q.empty()) sum += q.pop();
          EXPECT_EQ(sum, 1600L * 1599 / 2);
        },
        (hq::popdep<int>)queue);
    hq::sync();
  });
  EXPECT_GE(peak_segments, 1600u / 16u) << "serial elision stores all data";
}

TEST_P(HyperqueueParam, NestedPipelinesOnSharedWriteQueue) {
  // The dedup pattern (Figure 10): inner pipelines all push to one shared
  // write queue; program order across the nested pipelines must hold.
  hq::scheduler sched(GetParam());
  constexpr int kChunks = 12, kPerChunk = 25;
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> write_queue(16);
    hq::spawn(
        [&](hq::pushdep<int> wq) {  // Fragment
          for (int c = 0; c < kChunks; ++c) {
            hq::hyperqueue<int>* local = new hq::hyperqueue<int>(8);
            hq::spawn(
                [c](hq::pushdep<int> lq) {  // FragmentRefine
                  for (int i = 0; i < kPerChunk; ++i) lq.push(c * kPerChunk + i);
                },
                (hq::pushdep<int>)*local);
            hq::spawn(
                [](hq::popdep<int> lq, hq::pushdep<int> out) {  // Dedup+Compress
                  while (!lq.empty()) out.push(lq.pop());
                },
                (hq::popdep<int>)*local, wq);
            // The local queue must outlive its tasks; sync before delete.
            hq::sync();
            delete local;
          }
        },
        (hq::pushdep<int>)write_queue);
    hq::spawn(collecting_consumer, (hq::popdep<int>)write_queue, &got);  // Output
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kChunks * kPerChunk));
  for (int i = 0; i < kChunks * kPerChunk; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, HyperqueueParam, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace

namespace {

// The Figure 4 walkthrough of the paper (Section 4.3): Task 0 spawns a
// producer subtree (Task 1 -> Tasks 2,3), then a consumer subtree (Task 4 ->
// Task 5), then another producer (Task 6). Determinism requires the
// consumer to see exactly 0..7 (Tasks 2,3) and never Task 6's value 8,
// which only a later consumer may observe.
class Figure4 : public ::testing::TestWithParam<unsigned> {};

TEST_P(Figure4, ScenarioReproducesPaperOrder) {
  hq::scheduler sched(GetParam());
  std::vector<int> task5_got, drain_got;
  sched.run([&] {
    hq::hyperqueue<int> queue(4);  // small segments: forces splits/merges
    hq::spawn(
        [](hq::pushdep<int> q) {  // Task 1
          hq::spawn(leaf_producer, q, 0, 4);  // Task 2: values 0-3
          hq::spawn(leaf_producer, q, 4, 8);  // Task 3: values 4-7
          hq::sync();
        },
        (hq::pushdep<int>)queue);
    hq::spawn(
        [&task5_got](hq::popdep<int> q) {  // Task 4
          hq::spawn(
              [&task5_got](hq::popdep<int> qq) {  // Task 5: pops everything
                while (!qq.empty()) task5_got.push_back(qq.pop());
              },
              q);
          hq::sync();
        },
        (hq::popdep<int>)queue);
    hq::spawn(leaf_producer, (hq::pushdep<int>)queue, 8, 9);  // Task 6
    hq::spawn(collecting_consumer, (hq::popdep<int>)queue, &drain_got);
    hq::sync();
  });
  ASSERT_EQ(task5_got.size(), 8u) << "Task 5 must see Tasks 2+3, never Task 6";
  for (int i = 0; i < 8; ++i) EXPECT_EQ(task5_got[static_cast<std::size_t>(i)], i);
  ASSERT_EQ(drain_got.size(), 1u);
  EXPECT_EQ(drain_got[0], 8) << "Task 6's value reaches only the later consumer";
}

INSTANTIATE_TEST_SUITE_P(Workers, Figure4, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
