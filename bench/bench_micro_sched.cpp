// Scheduler and dataflow-tracker microbenchmarks: spawn/sync overhead,
// recursive task trees, versioned-object dependence chains.
//
// Provides its own main(): after the Google-Benchmark runs it executes a
// correctness-gated probe (spawn/steal counters + frame-pool steady state —
// a warm pipeline must report zero fresh task_frame allocations) and emits
// a BENCH_sched.json trajectory record (see bench_json.hpp; --json PATH
// overrides, --quick shrinks everything to smoke size).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "hq.hpp"

namespace {

void BM_SpawnSyncFlat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    sched.run([&] {
      for (int i = 0; i < n; ++i) hq::spawn([] {});
      hq::sync();
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnSyncFlat)->Arg(1000)->Arg(10000);

void BM_CallSync(benchmark::State& state) {
  // hq::call round trip: spawn + completion-hook signalling on the caller's
  // stack flag (no shared_ptr allocation).
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    long acc = 0;
    sched.run([&] {
      for (int i = 0; i < n; ++i) hq::call([&acc] { ++acc; });
    });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CallSync)->Arg(1000);

long fib_serial(long n) { return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2); }

void fib_task(long n, long* out) {
  if (n < 10) {
    *out = fib_serial(n);
    return;
  }
  long a = 0, b = 0;
  hq::spawn(fib_task, n - 1, &a);
  hq::spawn(fib_task, n - 2, &b);
  hq::sync();
  *out = a + b;
}

void BM_FibTree(benchmark::State& state) {
  hq::scheduler sched(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    long out = 0;
    sched.run([&] { fib_task(24, &out); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FibTree)->Arg(1)->Arg(2)->Arg(4);

void BM_DataflowInoutChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    hq::versioned<long> acc(0);
    sched.run([&] {
      for (int i = 0; i < n; ++i) {
        hq::spawn([](hq::inoutdep<long> v) { *v += 1; }, (hq::inoutdep<long>)acc);
      }
      hq::sync();
    });
    benchmark::DoNotOptimize(acc.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataflowInoutChain)->Arg(1000);

void BM_DataflowRenamedProducers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(2);
  for (auto _ : state) {
    hq::versioned<long> v(0);
    sched.run([&] {
      for (int i = 0; i < n; ++i) {
        hq::spawn([i](hq::outdep<long> o) { *o = i; }, (hq::outdep<long>)v);
      }
      hq::sync();
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataflowRenamedProducers)->Arg(1000);

// Early head reduction cost vs spawn-tree depth (Section 4.5: O(depth)).
void deep_push(hq::pushdep<int> q, int depth) {
  if (depth == 0) {
    q.push(1);
    return;
  }
  hq::spawn(deep_push, q, depth - 1);
  hq::sync();
  q.push(1);  // empty user view here: triggers the early reduction walk
}

void BM_EarlyReductionDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(64);
      hq::spawn(deep_push, (hq::pushdep<int>)q, depth);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EarlyReductionDepth)->Arg(4)->Arg(16)->Arg(64);

/// Counter/pool probe: fixed spawn workloads with known answers, reported
/// into the JSON record. The frame-pool steady-state check is the
/// correctness gate CI keys on: after warm-up, a bounded-burst workload on
/// one worker must allocate zero fresh task frames.
struct probe_result {
  hq::scheduler::stats_t stats;
  hq::detail::obj_pool::stats_t frames;
  hq::detail::obj_pool::stats_t attaches;
  bool zero_alloc_steady_state = false;
  bool counters_ok = false;
};

probe_result run_probe(bool quick) {
  probe_result pr;
  const int rounds = quick ? 20 : 200;
  const int width = 64;

  {
    // Deterministic zero-alloc gate on one worker, snapshots inside run().
    hq::scheduler sched(1);
    hq::detail::obj_pool::stats_t warm{}, after{};
    sched.run([&] {
      for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < width; ++i) hq::spawn([] {});
        hq::sync();
      }
      warm = sched.frame_pool_stats();
      for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < width; ++i) hq::spawn([] {});
        hq::sync();
      }
      after = sched.frame_pool_stats();
    });
    pr.zero_alloc_steady_state =
        after.allocated == warm.allocated && after.recycled > warm.recycled;
  }

  {
    // Steal-rate probe at 4 workers (recursive tree forces stealing).
    hq::scheduler sched(4);
    long out = 0;
    sched.run([&] { fib_task(quick ? 20 : 26, &out); });
    pr.stats = sched.stats();
    pr.frames = sched.frame_pool_stats();
    pr.attaches = sched.attach_pool_stats();
    pr.counters_ok = out == fib_serial(quick ? 20 : 26) &&
                     pr.stats.executed == pr.stats.spawns + 1 &&  // + root
                     pr.stats.steals <= pr.stats.steal_attempts;
  }
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  const auto opt =
      hq::bench::parse_micro_args(argc, argv, "BENCH_sched.json", args);
  benchmark::Initialize(&argc, args.data());
  hq::bench::collecting_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const probe_result pr = run_probe(opt.quick);
  if (!pr.zero_alloc_steady_state) {
    std::fprintf(stderr,
                 "FAIL: frame pool kept allocating in steady state (warm "
                 "pipeline must spawn with zero fresh task frames)\n");
  }
  if (!pr.counters_ok) {
    std::fprintf(stderr, "FAIL: scheduler counter probe inconsistent\n");
  }

  // Headline: ns per spawn/execute/finish round trip from the largest flat
  // storm. Derived from wall-clock time (items_per_second is CPU-time based
  // and the workers run on their own threads).
  double spawn_ns = 0;
  for (const auto& r : reporter.rows) {
    if (r.name == "BM_SpawnSyncFlat/10000") spawn_ns = r.ns_per_op / 10000.0;
  }

  const bool all_ok = pr.zero_alloc_steady_state && pr.counters_ok &&
                      !reporter.rows.empty();
  const bool wrote = hq::bench::write_micro_json(
      opt, "micro_sched", reporter.rows, all_ok, [&](FILE* f) {
        std::fprintf(f, "  \"spawn_ns\": %.1f,\n", spawn_ns);
        std::fprintf(f, "  \"probe\": {\n");
        std::fprintf(
            f,
            "    \"workers\": 4, \"spawns\": %llu, \"executed\": %llu, "
            "\"steals\": %llu, \"steal_attempts\": %llu, \"helps\": %llu,\n",
            static_cast<unsigned long long>(pr.stats.spawns),
            static_cast<unsigned long long>(pr.stats.executed),
            static_cast<unsigned long long>(pr.stats.steals),
            static_cast<unsigned long long>(pr.stats.steal_attempts),
            static_cast<unsigned long long>(pr.stats.helps));
        std::fprintf(f, "    \"steal_rate\": %.4f,\n",
                     pr.stats.spawns > 0
                         ? static_cast<double>(pr.stats.steals) /
                               static_cast<double>(pr.stats.spawns)
                         : 0.0);
        hq::bench::emit_pool_json(f, "frame_pool", pr.frames);
        hq::bench::emit_pool_json(f, "attach_pool", pr.attaches);
        std::fprintf(f, "    \"frame_zero_alloc_steady_state\": %s\n  },\n",
                     pr.zero_alloc_steady_state ? "true" : "false");
      });
  return all_ok && wrote ? 0 : 1;
}
