// Table 1 reproduction: characterization of ferret's pipeline.
// Prints iterations, per-stage serial time and time share, next to the
// paper's reported shares. Absolute times differ (synthetic workload, other
// machine); the *shape* — ranking-dominated, input ≈4.5% serial — is the
// reproduced claim.
//
// Environment knobs: HQ_FERRET_IMAGES (default 300). --quick shrinks the
// workload for smoke testing.
#include <cstdlib>
#include <string>

#include "apps/ferret/ferret.hpp"
#include "quick.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hq::apps::ferret::config cfg;
  cfg.num_images = 300;
  if (const char* env = std::getenv("HQ_FERRET_IMAGES")) {
    cfg.num_images = static_cast<std::size_t>(std::atol(env));
  }
  if (hq::bench::quick_mode(argc, argv)) cfg.num_images = 40;

  auto t = hq::apps::ferret::stage_times(cfg);
  double total = 0;
  for (double s : t) total += s;

  const char* names[6] = {"Input",       "Segmentation", "Extraction",
                          "Vectorizing", "Ranking",      "Output"};
  // Paper Table 1 shares (%), for side-by-side comparison.
  const double paper_pct[6] = {4.48, 3.57, 0.35, 16.20, 75.30, 0.10};
  const std::uint64_t iters[6] = {1,
                                  cfg.num_images,
                                  cfg.num_images,
                                  cfg.num_images,
                                  cfg.num_images,
                                  cfg.num_images};

  hq::util::table table({"Stage", "Iterations", "Time (s)", "Time (%)",
                         "Paper (%)"});
  for (int s = 0; s < 6; ++s) {
    table.add_row({names[s], hq::util::table::cell(iters[s]),
                   hq::util::table::cell(t[static_cast<std::size_t>(s)], 4),
                   hq::util::table::cell(
                       100.0 * t[static_cast<std::size_t>(s)] / total, 2),
                   hq::util::table::cell(paper_pct[s], 2)});
  }
  table.print("Table 1: characterization of ferret's pipeline (" +
              std::to_string(cfg.num_images) + " images)");
  return 0;
}
