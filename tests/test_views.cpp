// Unit tests for the split/reduce view algebra (paper Section 3.3) in
// isolation from the scheduler, plus segment mechanics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/segment.hpp"
#include "core/view.hpp"

namespace {

using hq::detail::element_ops;

element_ops int_ops() {
  element_ops ops;
  ops.size = sizeof(int);
  ops.align = alignof(int);
  ops.move_construct = [](void* dst, void* src) noexcept {
    *static_cast<int*>(dst) = *static_cast<int*>(src);
  };
  ops.destroy = [](void*) noexcept {};
  return ops;
}

struct SegmentFixture : ::testing::Test {
  element_ops ops = int_ops();
  std::vector<hq::detail::segment*> segs;

  hq::detail::segment* make(std::uint64_t cap = 8) {
    auto* s = hq::detail::segment::create(cap, &ops);
    segs.push_back(s);
    return s;
  }

  void TearDown() override {
    for (auto* s : segs) {
      s->destroy_remaining();
      s->next.store(nullptr, std::memory_order_relaxed);
      hq::detail::segment::destroy(s);
    }
  }

  static void push(hq::detail::segment* s, int v) { ASSERT_TRUE(s->try_push(&v)); }
};

// ----------------------------------------------------------------- segment

TEST_F(SegmentFixture, PushPopRoundtrip) {
  auto* s = make(4);
  for (int i = 0; i < 4; ++i) push(s, i);
  int dummy = 99;
  EXPECT_FALSE(s->try_push(&dummy)) << "segment must report full";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(s->readable());
    int out = -1;
    s->pop_into(&out);
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(s->readable());
}

TEST_F(SegmentFixture, CircularReuseZeroAllocation) {
  // Steady-state producer/consumer pair recycles one segment (Section 3.2).
  auto* s = make(4);
  for (int round = 0; round < 100; ++round) {
    push(s, round);
    int out = -1;
    s->pop_into(&out);
    ASSERT_EQ(out, round);
  }
  EXPECT_EQ(s->head.load(), 100u);
  EXPECT_EQ(s->tail.load(), 100u);
}

TEST_F(SegmentFixture, DestroyRemainingCountsElements) {
  struct counter {
    static int& live() {
      static int n = 0;
      return n;
    }
  };
  element_ops cops;
  cops.size = sizeof(int);
  cops.align = alignof(int);
  cops.move_construct = [](void* dst, void* src) noexcept {
    *static_cast<int*>(dst) = *static_cast<int*>(src);
    ++counter::live();
  };
  cops.destroy = [](void*) noexcept { --counter::live(); };
  auto* s = hq::detail::segment::create(8, &cops);
  int v = 1;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s->try_push(&v));
  EXPECT_EQ(counter::live(), 5);
  s->destroy_remaining();
  EXPECT_EQ(counter::live(), 0);
  hq::detail::segment::destroy(s);
}

// -------------------------------------------------------------------- view

using hq::detail::reduce_into;
using hq::detail::split;
using hq::detail::view;

TEST_F(SegmentFixture, LocalViewConstruction) {
  auto* s = make();
  view v = view::local(s);
  EXPECT_TRUE(v.present);
  EXPECT_TRUE(v.head_local());
  EXPECT_TRUE(v.tail_local());
  EXPECT_EQ(v.head, s);
  EXPECT_EQ(v.tail, s);
}

TEST_F(SegmentFixture, SplitProducesMatchingPair) {
  auto* s = make();
  auto [head_v, tail_v] = split(view::local(s), 42);
  EXPECT_EQ(head_v.head, s);
  EXPECT_TRUE(head_v.head_local());
  EXPECT_FALSE(head_v.tail_local());
  EXPECT_EQ(head_v.tail_nl, 42u);
  EXPECT_EQ(tail_v.tail, s);
  EXPECT_FALSE(tail_v.head_local());
  EXPECT_EQ(tail_v.head_nl, 42u);
}

TEST_F(SegmentFixture, ReduceLocalLocalLinksSegments) {
  auto* s1 = make();
  auto* s2 = make();
  view left = view::local(s1);
  view right = view::local(s2);
  reduce_into(left, std::move(right));
  EXPECT_TRUE(right.empty());
  EXPECT_EQ(left.head, s1);
  EXPECT_EQ(left.tail, s2);
  EXPECT_EQ(s1->next.load(), s2) << "reduce must concatenate the chains";
}

TEST_F(SegmentFixture, ReduceNonLocalPairIsInverseOfSplit) {
  auto* s = make();
  auto [head_v, tail_v] = split(view::local(s), 7);
  view left = head_v;
  reduce_into(left, std::move(tail_v));
  // Back to the local view (s, s); no self-link was created.
  EXPECT_TRUE(left.head_local());
  EXPECT_TRUE(left.tail_local());
  EXPECT_EQ(left.head, s);
  EXPECT_EQ(left.tail, s);
  EXPECT_EQ(s->next.load(), nullptr);
}

TEST_F(SegmentFixture, ReduceWithEmptyEitherSide) {
  auto* s = make();
  view v = view::local(s);
  view e;  // ε
  reduce_into(v, view{});  // reduce(v, ε) = v
  EXPECT_TRUE(v.present);
  EXPECT_EQ(v.head, s);
  reduce_into(e, view::local(s));  // reduce(ε, v) = v
  EXPECT_TRUE(e.present);
  EXPECT_EQ(e.head, s);
  view e1, e2;
  reduce_into(e1, std::move(e2));  // reduce(ε, ε) = ε
  EXPECT_TRUE(e1.empty());
}

TEST_F(SegmentFixture, ReduceKeepsOuterNonLocalSides) {
  // reduce((qNL, t1), (h2, rNL)) with t1,h2 local must yield (qNL, rNL):
  // a shared view, distinct from ε (paper Section 3.3).
  auto* s1 = make();
  auto* s2 = make();
  auto [h1, t1] = split(view::local(s1), 1);  // t1 = (NL1, s1)
  auto [h2, t2] = split(view::local(s2), 2);  // h2 = (s2, NL2)
  view left = t1;                             // (NL1, s1)
  reduce_into(left, std::move(h2));           // -> (NL1, NL2)
  EXPECT_TRUE(left.present) << "shared view with two non-local sides is not empty";
  EXPECT_FALSE(left.head_local());
  EXPECT_FALSE(left.tail_local());
  EXPECT_EQ(left.head_nl, 1u);
  EXPECT_EQ(left.tail_nl, 2u);
  EXPECT_EQ(s1->next.load(), s2);
  // Keep algebra closed: reduce the remaining halves too.
  view a = h1;
  reduce_into(a, std::move(left));
  reduce_into(a, std::move(t2));
  EXPECT_EQ(a.head, s1);
  EXPECT_EQ(a.tail, s2);
}

TEST_F(SegmentFixture, ThreeWayAssociativity) {
  // ((a+b)+c) and (a+(b+c)) must produce the same chain.
  auto* s1 = make();
  auto* s2 = make();
  auto* s3 = make();
  {
    view a = view::local(s1), b = view::local(s2), c = view::local(s3);
    reduce_into(a, std::move(b));
    reduce_into(a, std::move(c));
    EXPECT_EQ(a.head, s1);
    EXPECT_EQ(a.tail, s3);
  }
  EXPECT_EQ(s1->next.load(), s2);
  EXPECT_EQ(s2->next.load(), s3);

  auto* t1 = make();
  auto* t2 = make();
  auto* t3 = make();
  {
    view a = view::local(t1), b = view::local(t2), c = view::local(t3);
    reduce_into(b, std::move(c));
    reduce_into(a, std::move(b));
    EXPECT_EQ(a.head, t1);
    EXPECT_EQ(a.tail, t3);
  }
  EXPECT_EQ(t1->next.load(), t2);
  EXPECT_EQ(t2->next.load(), t3);
}

TEST_F(SegmentFixture, TakeLeavesEmptyBehind) {
  auto* s = make();
  view v = view::local(s);
  view w = v.take();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(w.present);
  EXPECT_EQ(w.head, s);
}

}  // namespace
