// Synthetic input generators — the substitution for PARSEC's 'native'
// inputs (see DESIGN.md). All generators are seeded and deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hq::util {

/// Text-like data: words drawn from a Zipf-ish vocabulary with punctuation
/// and line breaks. Compressible like natural text (the bzip2 workload).
std::vector<std::uint8_t> gen_text(std::size_t bytes, std::uint64_t seed);

/// Archive-like data for dedup: a sequence of content blocks where
/// `dup_fraction` of blocks repeat earlier blocks exactly (whole-block
/// duplication, the pattern dedup exploits) and the rest are fresh
/// semi-compressible payloads.
std::vector<std::uint8_t> gen_archive(std::size_t bytes, double dup_fraction,
                                      std::uint64_t seed);

/// A synthetic "image": dense feature grid with a few superimposed blobs.
/// Used by the ferret pipeline; width*height floats in [0,1].
std::vector<float> gen_image(std::size_t width, std::size_t height,
                             std::uint64_t seed);

/// A synthetic directory tree listing for ferret's recursive input stage:
/// returns file identifiers (paths) in the traversal's deterministic order.
struct dir_tree {
  struct dir_node {
    std::string name;
    std::vector<std::string> files;
    std::vector<dir_node> subdirs;
  };
  dir_node root;
  std::size_t total_files = 0;
};
dir_tree gen_dir_tree(std::size_t total_files, std::uint64_t seed);

}  // namespace hq::util
