// App-runner conformance matrix: every registered app on every parallel
// backend at 1/2/4/8 workers must produce a digest byte-identical to the
// memoized serial-elision reference. This is the output-equality gate of
// the generic runner exercised end to end — the per-app run_* wrappers and
// benches route through the same execute() paths tested here.
//
// Test names carry the backend label, so the sanitizer CI can select the
// hyperqueue rows with --gtest_filter='*Hyperqueue*'.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <tuple>

#include "pipeline/runner.hpp"

namespace {

using hq::pipe::app_params;
using hq::pipe::backend;

std::string backend_label(backend b) {
  switch (b) {
    case backend::hyperqueue: return "Hyperqueue";
    case backend::hyperqueue_element: return "HyperqueueElement";
    case backend::pthreads: return "Pthreads";
    case backend::tbb: return "Tbb";
    case backend::serial: break;
  }
  return "Serial";
}

std::string app_label(const std::string& name) {
  std::string s = name;
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  return s;
}

using matrix_param = std::tuple<std::string, backend, unsigned>;

class RunnerConformance : public ::testing::TestWithParam<matrix_param> {};

TEST_P(RunnerConformance, DigestMatchesSerialElision) {
  const auto& [app, b, workers] = GetParam();
  app_params p;
  p.workers = workers;
  const auto run = hq::pipe::run_app(app, b, p);
  EXPECT_FALSE(run.reference.empty());
  EXPECT_EQ(run.digest, run.reference)
      << app << " on " << hq::pipe::to_string(b) << " at " << workers
      << " workers diverged from the serial elision";
  EXPECT_TRUE(run.ok);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, RunnerConformance,
    ::testing::Combine(
        ::testing::Values(std::string("bzip2"), std::string("dedup"),
                          std::string("ferret")),
        ::testing::Values(backend::hyperqueue, backend::hyperqueue_element,
                          backend::pthreads, backend::tbb),
        ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return app_label(std::get<0>(info.param)) +
             backend_label(std::get<1>(info.param)) + "W" +
             std::to_string(std::get<2>(info.param));
    });

// The registry itself: the built-ins are present, unknown names throw, and
// a repeated run reuses the memoized reference (same digest object).
TEST(RunnerRegistry, BuiltinsRegisteredAndGated) {
  const auto& names = hq::pipe::registered_apps();
  ASSERT_GE(names.size(), 3u);
  for (const char* want : {"bzip2", "dedup", "ferret"})
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end());
  EXPECT_THROW((void)hq::pipe::run_app("no_such_app", backend::tbb, {}),
               std::out_of_range);

  app_params p;
  p.workers = 2;
  const auto first = hq::pipe::run_app("ferret", backend::tbb, p);
  const auto again = hq::pipe::run_app("ferret", backend::tbb, p);
  EXPECT_TRUE(first.ok);
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(first.reference, again.reference);
}

}  // namespace
