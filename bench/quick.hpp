// --quick: shrink the workload so every bench harness doubles as a ctest
// smoke test (see smoke_* entries in CMakeLists.txt). The full-size runs
// stay the default for real measurements; --quick overrides the size knobs
// (including the HQ_* environment variables) with small values.
#pragma once

#include <string_view>

namespace hq::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") return true;
  }
  return false;
}

}  // namespace hq::bench
