// A three-stage text-processing pipeline: a reader task streams text lines
// into a hyperqueue, parallel tokenizer tasks split them into words on a
// second hyperqueue, and an ordered counter consumes the word stream.
// Demonstrates chained hyperqueues and dispatch-per-element spawning.
//
//   $ ./examples/wordcount_pipeline [workers] [kilobytes]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "hq.hpp"
#include "util/datagen.hpp"

namespace {

void reader(const std::vector<std::uint8_t>* text, hq::pushdep<std::string> lines) {
  std::string cur;
  for (std::uint8_t b : *text) {
    if (b == '\n') {
      lines.push(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(b));
    }
  }
  if (!cur.empty()) lines.push(std::move(cur));
}

void tokenize_line(std::string line, hq::pushdep<std::string> words) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ' ' || line[i] == '.') {
      if (i > start) words.push(line.substr(start, i - start));
      start = i + 1;
    }
  }
}

void tokenizer(hq::popdep<std::string> lines, hq::pushdep<std::string> words) {
  // One spawned task per line: tokens appear on `words` in line order even
  // though lines tokenize in parallel.
  while (!lines.empty()) {
    hq::spawn(tokenize_line, lines.pop(), words);
  }
  hq::sync();
}

void counter(hq::popdep<std::string> words, std::map<std::string, long>* counts,
             long* total) {
  while (!words.empty()) {
    ++(*counts)[words.pop()];
    ++*total;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::size_t kb = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 256;

  auto text = hq::util::gen_text(kb << 10, /*seed=*/2024);
  hq::scheduler sched(workers);
  std::map<std::string, long> counts;
  long total = 0;
  sched.run([&] {
    hq::hyperqueue<std::string> lines(128);
    hq::hyperqueue<std::string> words(512);
    hq::spawn(reader, &text, (hq::pushdep<std::string>)lines);
    hq::spawn(tokenizer, (hq::popdep<std::string>)lines,
              (hq::pushdep<std::string>)words);
    hq::spawn(counter, (hq::popdep<std::string>)words, &counts, &total);
    hq::sync();
  });

  std::printf("counted %ld words, %zu distinct; top words:\n", total, counts.size());
  std::multimap<long, std::string, std::greater<>> by_count;
  for (const auto& [w, n] : counts) by_count.emplace(n, w);
  int shown = 0;
  for (const auto& [n, w] : by_count) {
    std::printf("  %6ld  %s\n", n, w.c_str());
    if (++shown == 5) break;
  }
  return total > 0 ? 0 : 1;
}
