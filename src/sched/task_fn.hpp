// Type-erased nullary task closure with small-buffer optimization.
//
// Every spawned task's body (user function + bound arguments) is stored in a
// task_fn inside the task frame. Closures up to kInlineBytes live inline in
// the frame allocation; larger ones take one extra heap allocation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hq {

/// Move-only `void()` callable wrapper tuned for task frames.
class task_fn {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  task_fn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, task_fn>>>
  task_fn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "task body must be callable as void()");
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  task_fn(task_fn&& other) noexcept { move_from(std::move(other)); }

  task_fn& operator=(task_fn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  task_fn(const task_fn&) = delete;
  task_fn& operator=(const task_fn&) = delete;

  ~task_fn() { reset(); }

  /// Invoke the stored closure. Must not be empty.
  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct vtable {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
  };

  template <typename Fn>
  static constexpr vtable vtable_inline = {
      [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); },
      [](void* p) noexcept { std::launder(static_cast<Fn*>(p))->~Fn(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
  };

  template <typename Fn>
  static constexpr vtable vtable_heap = {
      [](void* p) { (**std::launder(static_cast<Fn**>(p)))(); },
      [](void* p) noexcept { delete *std::launder(static_cast<Fn**>(p)); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
  };

  void move_from(task_fn&& other) noexcept {
    vt_ = other.vt_;
    if (vt_) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  const vtable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace hq
