#include "pipeline/runner.hpp"

#include <array>
#include <atomic>
#include <cassert>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "conc/bounded_queue.hpp"
#include "pipeline/tbb_pipeline.hpp"
#include "sched/partition.hpp"
#include "sched/watchdog.hpp"
#include "util/stats.hpp"

namespace hq::pipe {

const char* to_string(backend b) noexcept {
  switch (b) {
    case backend::serial:
      return "serial";
    case backend::hyperqueue:
      return "hyperqueue";
    case backend::hyperqueue_element:
      return "hyperqueue_element";
    case backend::pthreads:
      return "pthreads";
    case backend::tbb:
      return "tbb";
  }
  return "?";
}

const char* to_string(run_outcome o) noexcept {
  switch (o) {
    case run_outcome::ok:
      return "ok";
    case run_outcome::failed:
      return "failed";
    case run_outcome::stalled:
      return "stalled";
  }
  return "?";
}

const std::vector<backend>& parallel_backends() {
  static const std::vector<backend> v = {
      backend::hyperqueue, backend::hyperqueue_element, backend::pthreads,
      backend::tbb};
  return v;
}

namespace {

using detail::erased_emit;
using detail::stage_rec;

// ---- serial elision --------------------------------------------------------
// Stages invoked depth-first on the calling thread: each emission is a call
// into the next stage's deliver thunk with a pointer to the value still on
// the emitter's stack. No queues, no heap tokens — this is the elision whose
// output order defines correctness for every parallel backend.

exec_result run_serial_elision(graph& g, detail::admission_ctl* ctl = nullptr) {
  graph::plan p = g.compile();
  const std::size_t n = p.order.size();
  std::vector<std::function<void(void*)>> deliver(n);
  std::vector<erased_emit> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      next[i].ctx = &deliver[i + 1];
      next[i].fn = [](void* ctx, void* tok) {
        (*static_cast<std::function<void(void*)>*>(ctx))(tok);
      };
    }
    const stage_rec& s = g.stage_at(p.order[i]);
    deliver[i] = [&s, &next, i](void* tok) { s.run_value(tok, next[i]); };
  }
  if (ctl != nullptr) {
    // Same boundary as the parallel backends: gate each source emission,
    // retire at the sink. Tokens flow source->sink within one emit call
    // here, so in_flight never exceeds one and the elision stays the
    // lossless reference under any admission policy.
    auto sink = std::move(deliver[n - 1]);
    deliver[n - 1] = [sink, ctl](void* tok) {
      sink(tok);
      ctl->complete();
    };
    auto first = std::move(deliver[1]);
    deliver[1] = [first, ctl](void* tok) {
      if (ctl->admit()) first(tok);
    };
  }
  exec_result res;
  util::stopwatch sw;
  deliver[0](nullptr);
  res.seconds = sw.seconds();
  return res;
}

// ---- hyperqueue backend ----------------------------------------------------
// One hyperqueue per edge, created by the root task (which thereby owns
// them, per the attachment model) and homed per the partition plan; stage
// tasks spawned in chain order — the serial-elision order the queues'
// visibility rules assume. The element backend is the same lowering with
// the bulk path forced off on every edge.

detail::hq_knobs knobs_for(const graph& g, const graph::plan& p,
                           std::size_t chain_pos, bool force_element) {
  detail::hq_knobs k;
  if (chain_pos > 0) {
    const auto& in = g.edge_at(p.edges[chain_pos - 1]).opts;
    k.in_batch = in.slice_batch ? in.slice_batch : 1;
    k.in_bulk = in.bulk && !force_element;
  }
  if (chain_pos + 1 < p.order.size()) {
    const auto& out = g.edge_at(p.edges[chain_pos]).opts;
    k.out_batch = out.slice_batch ? out.slice_batch : 1;
    k.out_bulk = out.bulk && !force_element;
  }
  return k;
}

exec_result run_hyperqueue_backend(graph& g, const exec_options& opt,
                                   bool force_element,
                                   detail::admission_ctl* ctl) {
  graph::plan p = g.compile();
  const std::size_t n = p.order.size();

  std::unique_ptr<scheduler> sched;
  if (opt.placement)
    sched = std::make_unique<scheduler>(opt.workers, *opt.placement);
  else
    sched = std::make_unique<scheduler>(opt.workers);

  // Runtime-fed placement: the builder knows the stage->queue attachment
  // graph, so under a placement policy each queue's segments are homed on
  // its consumer stage's node without the caller supplying a queue_graph.
  std::vector<int> nodes(p.edges.size(), -1);
  if (sched->policy() != placement_policy::none &&
      sched->topo().num_nodes() > 1) {
    queue_plan plan = plan_queue_placement(
        g.build_queue_graph(), sched->topo().num_nodes(), opt.seed);
    for (std::size_t j = 0; j < p.edges.size(); ++j)
      nodes[j] = plan.queue_node[j];
  }

  exec_result res;
  util::stopwatch sw;
  sched->run([&] {
    std::vector<std::unique_ptr<detail::hq_chan_base>> chans;
    chans.reserve(p.edges.size());
    for (std::size_t j = 0; j < p.edges.size(); ++j) {
      const auto& opts = g.edge_at(p.edges[j]).opts;
      std::size_t seglen = opts.segment_length
                               ? opts.segment_length
                               : 2 * (opts.slice_batch ? opts.slice_batch : 1);
      chans.push_back(g.stage_at(p.order[j])
                          .make_out_chan(seglen, nodes[j], opts.memory_budget));
    }
    for (std::size_t i = 0; i < n; ++i) {
      detail::hq_stage_ctx ctx;
      ctx.in = i > 0 ? chans[i - 1].get() : nullptr;
      ctx.out = i + 1 < n ? chans[i].get() : nullptr;
      ctx.knobs = knobs_for(g, p, i, force_element);
      // Admission boundary: gate at the source's emitter, retire at the
      // sink's pop loop.
      if (i == 0) ctx.knobs.admit = ctl;
      if (i + 1 == n) ctx.knobs.complete = ctl;
      g.stage_at(p.order[i]).hq_spawn(ctx);
    }
    sync();
    for (auto& ch : chans) {
      res.pool = res.pool + ch->pool();
      res.peak_segments = std::max(res.peak_segments, ch->segments());
      res.queue_nodes.push_back(ch->node());
    }
    chans.clear();  // queues must be destroyed by their owning task
  });
  res.seconds = sw.seconds();
  return res;
}

// ---- pthreads backend ------------------------------------------------------
// One bounded_queue per edge (capacity = the edge knob), explicit stage
// threads. Serial-elision order behind parallel and expand stages is
// recovered by a multi-level reorder buffer: tokens carry a path of
// sequence components (one per expand level), count records announce how
// many children each path prefix has, and a cursor walks the leaf paths in
// lexicographic = elision order, carrying at exhausted prefixes. This
// generalizes the two-level (coarse, fine) counting scheme of PARSEC
// dedup's pthread version to any declared chain.

struct prec {
  std::array<std::uint32_t, graph::kMaxDepth> path{};
  std::uint8_t depth = 0;
  bool is_count = false;      ///< `count` children exist under prefix `path`
  std::uint32_t count = 0;
  void* payload = nullptr;    ///< owned heap token (leaf records only)
};

/// First-failure slot of one pthreads-backend run. A throwing stage records
/// its exception here and closes every inter-stage queue: close *is* the
/// cancellation signal (bounded_queue has closed_ in both wait predicates),
/// so all other stage threads unblock — producers see push() == false,
/// consumers drain then see nullopt — and exit their loops without any
/// polling. The backend then drains the queues, destroys stranded payloads
/// through the stage destroy hooks, and rethrows on the calling thread.
struct pth_fail {
  std::mutex mu;
  std::exception_ptr err;
  std::vector<bounded_queue<prec>*> queues;
  detail::admission_ctl* ctl = nullptr;

  void fail(std::exception_ptr e) noexcept {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!err) err = std::move(e);
    }
    // The source may be parked on a full admission window; the sink that
    // would open it is tearing down. Cancel first so it sheds and exits.
    if (ctl != nullptr) ctl->cancel();
    for (auto* q : queues) q->close();
  }

  [[nodiscard]] std::exception_ptr take() {
    std::lock_guard<std::mutex> lk(mu);
    return std::exchange(err, nullptr);
  }
};

/// Thrown out of a source body's emit when its output queue closed under
/// it (cancellation initiated elsewhere): unwinds the source without
/// recording a failure of its own.
struct src_abort {};

class reorderer {
 public:
  explicit reorderer(unsigned leaf_depth) : cursor_(leaf_depth, 0) {
    assert(leaf_depth >= 1);
  }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Ingest one record, delivering any now-in-order leaf payloads.
  template <typename Deliver>
  void feed(const prec& r, Deliver&& deliver) {
    if (r.is_count) {
      counts_.emplace(key(r, r.depth), r.count);
    } else {
      assert(r.depth == cursor_.size());
      pending_.emplace(key(r, r.depth), r.payload);
    }
    drain(deliver);
  }

  /// Failure teardown: hand every undelivered leaf payload to `f` (which
  /// destroys it) and forget it. After a cancelled run the reorder buffer
  /// still holds the out-of-order leaves that never met the cursor.
  template <typename F>
  void for_each_pending(F&& f) {
    for (auto& [path, payload] : pending_) f(payload);
    pending_.clear();
  }

 private:
  static std::vector<std::uint32_t> key(const prec& r, unsigned len) {
    return {r.path.begin(), r.path.begin() + len};
  }

  template <typename Deliver>
  void drain(Deliver&& deliver) {
    const auto L = static_cast<int>(cursor_.size());
    while (!done_) {
      auto it = pending_.find(cursor_);
      if (it != pending_.end()) {
        void* payload = it->second;
        pending_.erase(it);
        deliver(payload);
        ++cursor_[L - 1];
        continue;
      }
      // The cursor's leaf hasn't arrived. Either it is genuinely pending,
      // or the cursor sits one past the end of an exhausted subtree and
      // must carry. Walk prefixes deepest-first; at each level the deeper
      // cursor components are all zero (guaranteed by the walk order), so
      // a count match means "this prefix is complete".
      bool progressed = false;
      for (int d = L - 1; d >= 0; --d) {
        auto ct = counts_.find(
            std::vector<std::uint32_t>(cursor_.begin(), cursor_.begin() + d));
        if (ct != counts_.end() && ct->second == cursor_[d]) {
          counts_.erase(ct);
          progressed = true;
          if (d == 0) {
            done_ = true;
            assert(pending_.empty() && counts_.empty());
          } else {
            cursor_[d] = 0;
            ++cursor_[d - 1];
          }
          break;  // re-check pending at the carried cursor
        }
        if (ct != counts_.end()) break;  // subtree not exhausted yet
        if (cursor_[d] != 0) break;      // mid-subtree; count not yet known
        // Count absent with cursor 0 at this level: this subtree may not
        // exist at all (cursor one past its parent's last child) — keep
        // walking up; the parent's count decides.
      }
      if (!progressed) return;  // wait for more records
    }
  }

  std::vector<std::uint32_t> cursor_;
  std::map<std::vector<std::uint32_t>, void*> pending_;
  std::map<std::vector<std::uint32_t>, std::uint32_t> counts_;
  bool done_ = false;
};

/// Run one heap-mode stage body, collecting its emitted heap tokens. The
/// input payload is consumed even on throw (run_heap owns it); tokens
/// already emitted before a throw are destroyed before rethrowing.
std::vector<void*> run_collect(const stage_rec& s, void* payload) {
  std::vector<void*> outs;
  erased_emit em;
  em.ctx = &outs;
  em.fn = [](void* c, void* t) {
    static_cast<std::vector<void*>*>(c)->push_back(t);
  };
  try {
    s.run_heap(payload, em);
  } catch (...) {
    if (s.destroy_out)
      for (void* t : outs) s.destroy_out(t);
    throw;
  }
  return outs;
}

/// Push `outs` tagged relative to input record `r` (parallel / unordered
/// stages: output order is derived from the input's path). Returns false —
/// with the unsent tokens destroyed — when the output queue closed under
/// us, i.e. the run was cancelled.
[[nodiscard]] bool push_tagged(bounded_queue<prec>& out, const stage_rec& s,
                               const prec& r, std::vector<void*>&& outs) {
  if (s.multi_out) {
    for (std::uint32_t j = 0; j < outs.size(); ++j) {
      prec c;
      c.path = r.path;
      c.path[r.depth] = j;
      c.depth = static_cast<std::uint8_t>(r.depth + 1);
      c.payload = outs[j];
      if (!out.push(c)) {
        if (s.destroy_out)
          for (std::size_t k = j; k < outs.size(); ++k) s.destroy_out(outs[k]);
        return false;
      }
    }
    prec cnt;
    cnt.path = r.path;
    cnt.depth = r.depth;
    cnt.is_count = true;
    cnt.count = static_cast<std::uint32_t>(outs.size());
    return out.push(cnt);
  }
  assert(outs.size() == 1 && "pipe::stage body must emit exactly once");
  prec o = r;
  o.payload = outs[0];
  if (!out.push(o)) {
    if (s.destroy_out) s.destroy_out(outs[0]);
    return false;
  }
  return true;
}

void pth_worker_stage(const stage_rec& s, bounded_queue<prec>& in,
                      bounded_queue<prec>& out) {
  for (;;) {
    auto v = in.pop();
    if (!v) break;
    if (v->is_count) {
      if (!out.push(*v)) break;  // counts pass through; paths are preserved
      continue;
    }
    if (!push_tagged(out, s, *v, run_collect(s, v->payload))) break;
  }
}

/// serial_in_order middle stage: reorder the input to elision order, run
/// the body inline, and restart sequence numbering on the output stream.
void pth_inorder_stage(const stage_rec& s, unsigned in_depth,
                       bounded_queue<prec>& in, bounded_queue<prec>& out) {
  reorderer ro(in_depth);
  std::uint32_t in_seq = 0;
  // The reorder buffer owns out-of-order payloads; destroy them on any exit
  // that leaves it non-empty (body throw, cancellation via closed queues).
  auto drop_pending = [&] {
    if (s.destroy_in) ro.for_each_pending([&](void* p) { s.destroy_in(p); });
  };
  try {
    bool live = true;
    for (;;) {
      auto v = in.pop();
      if (!v) break;
      ro.feed(*v, [&](void* payload) {
        if (!live) {  // output closed mid-drain: consume, don't run
          if (s.destroy_in) s.destroy_in(payload);
          return;
        }
        prec r;
        r.path[0] = in_seq++;
        r.depth = 1;
        live = push_tagged(out, s, r, run_collect(s, payload));
      });
      if (!live || ro.done()) break;
    }
  } catch (...) {
    drop_pending();
    throw;
  }
  drop_pending();  // no-op on a clean, completed run
  prec root;
  root.is_count = true;
  root.count = in_seq;
  (void)out.push(root);  // rejected iff cancelled; the count is moot then
}

void pth_sink_stage(const stage_rec& s, unsigned in_depth,
                    bounded_queue<prec>& in, detail::admission_ctl* ctl) {
  erased_emit none;
  auto retire = [&](void* payload) {
    s.run_heap(payload, none);
    if (ctl != nullptr) ctl->complete();
  };
  if (s.kind == stage_kind::serial_in_order) {
    reorderer ro(in_depth);
    auto drop_pending = [&] {
      if (s.destroy_in) ro.for_each_pending([&](void* p) { s.destroy_in(p); });
    };
    try {
      for (;;) {
        auto v = in.pop();
        if (!v) break;
        ro.feed(*v, retire);
        if (ro.done()) break;
      }
    } catch (...) {
      drop_pending();
      throw;
    }
    drop_pending();
  } else {
    for (;;) {
      auto v = in.pop();
      if (!v) break;
      if (!v->is_count) retire(v->payload);
    }
  }
}

exec_result run_pthreads_backend(graph& g, const exec_options& opt,
                                 detail::admission_ctl* ctl) {
  graph::plan p = g.compile();
  const std::size_t n = p.order.size();
  const unsigned workers = opt.workers ? opt.workers : 1;

  std::vector<std::unique_ptr<bounded_queue<prec>>> qs;
  qs.reserve(p.edges.size());
  for (auto e : p.edges)
    qs.push_back(
        std::make_unique<bounded_queue<prec>>(g.edge_at(e).opts.capacity));

  pth_fail fl;
  fl.ctl = ctl;
  fl.queues.reserve(qs.size());
  for (auto& q : qs) fl.queues.push_back(q.get());

  exec_result res;
  util::stopwatch sw;
  std::vector<std::vector<std::thread>> stage_threads(n);
  for (std::size_t i = 1; i < n; ++i) {
    const stage_rec& s = g.stage_at(p.order[i]);
    const unsigned in_depth = p.edge_depth[i - 1];
    auto* in = qs[i - 1].get();
    if (s.is_sink) {
      stage_threads[i].emplace_back([&fl, &s, in_depth, in, ctl] {
        try {
          pth_sink_stage(s, in_depth, *in, ctl);
        } catch (...) {
          fl.fail(std::current_exception());
        }
      });
    } else {
      auto* out = qs[i].get();
      if (s.kind == stage_kind::serial_in_order) {
        stage_threads[i].emplace_back([&fl, &s, in_depth, in, out] {
          try {
            pth_inorder_stage(s, in_depth, *in, *out);
          } catch (...) {
            fl.fail(std::current_exception());
          }
        });
      } else {
        const unsigned nthreads =
            s.kind == stage_kind::parallel ? workers : 1;
        for (unsigned t = 0; t < nthreads; ++t)
          stage_threads[i].emplace_back([&fl, &s, in, out] {
            try {
              pth_worker_stage(s, *in, *out);
            } catch (...) {
              fl.fail(std::current_exception());
            }
          });
      }
    }
  }

  // The source runs on the calling thread, numbering its stream directly.
  {
    const stage_rec& src = g.stage_at(p.order[0]);
    struct src_ctx {
      bounded_queue<prec>* q;
      void (*destroy)(void*);
      detail::admission_ctl* ctl;
      std::uint32_t seq = 0;
    } c{qs[0].get(), src.destroy_out, ctl};
    erased_emit em;
    em.ctx = &c;
    em.fn = [](void* cp, void* tok) {
      auto* ctx = static_cast<src_ctx*>(cp);
      if (ctx->ctl != nullptr && !ctx->ctl->admit()) {
        // Shed before numbering: the stream stays dense, so downstream
        // reorderers never wait on a sequence slot that will not arrive.
        if (ctx->destroy) ctx->destroy(tok);
        return;
      }
      prec r;
      r.path[0] = ctx->seq++;
      r.depth = 1;
      r.payload = tok;
      if (!ctx->q->push(r)) {
        // Queue closed under us: a downstream stage failed. Stop producing.
        if (ctx->destroy) ctx->destroy(tok);
        throw src_abort{};
      }
    };
    try {
      src.run_heap(nullptr, em);
      prec root;
      root.is_count = true;
      root.count = c.seq;
      (void)qs[0]->push(root);
    } catch (const src_abort&) {
      // Cancelled from elsewhere; that stage recorded the failure.
    } catch (...) {
      fl.fail(std::current_exception());
    }
    qs[0]->close();
  }

  for (std::size_t i = 1; i < n; ++i) {
    for (auto& t : stage_threads[i]) t.join();
    if (i < n - 1) qs[i]->close();
  }
  res.seconds = sw.seconds();

  if (std::exception_ptr err = fl.take()) {
    // All threads have exited; whatever is still buffered in the queues was
    // abandoned mid-stream. Queue j carries the *output* tokens of stage
    // order[j] — destroy the stranded payloads through that stage's hook.
    for (std::size_t j = 0; j < qs.size(); ++j) {
      const stage_rec& prod = g.stage_at(p.order[j]);
      for (prec& r : qs[j]->drain())
        if (!r.is_count && r.payload != nullptr && prod.destroy_out)
          prod.destroy_out(r.payload);
    }
    std::rethrow_exception(err);
  }
  return res;
}

// ---- TBB backend -----------------------------------------------------------
// Gathered-list tokens (paper Figure 10a): each token is the list of all
// live descendants of one source item, so expand stages grow the list in
// place and ordered filters recover elision order from token order alone.
// A feeder thread adapts the push-style source to the engine's pull-style
// first filter through a bounded queue, preserving input/compute overlap.

exec_result run_tbb_backend(graph& g, const exec_options& opt,
                            detail::admission_ctl* ctl) {
  graph::plan p = g.compile();
  const std::size_t n = p.order.size();
  const unsigned workers = opt.workers ? opt.workers : 1;
  using toklist = std::vector<void*>;

  // A filter's *input* is a gathered list whose elements are the previous
  // stage's output tokens: the engine reclaims parked/queued lists through
  // this hook when a failure cancels the run.
  auto list_destroy = [](void (*elem)(void*)) {
    return [elem](void* t) {
      std::unique_ptr<toklist> list(static_cast<toklist*>(t));
      if (elem)
        for (void* v : *list) elem(v);
    };
  };

  bounded_queue<void*> feed(g.edge_at(p.edges[0]).opts.capacity);
  std::exception_ptr feeder_err;
  std::thread feeder([&] {
    const stage_rec& src = g.stage_at(p.order[0]);
    struct fctx {
      bounded_queue<void*>* q;
      void (*destroy)(void*);
      detail::admission_ctl* ctl;
    } c{&feed, src.destroy_out, ctl};
    erased_emit em;
    em.ctx = &c;
    em.fn = [](void* cp, void* tok) {
      auto* ctx = static_cast<fctx*>(cp);
      if (ctx->ctl != nullptr && !ctx->ctl->admit()) {
        if (ctx->destroy) ctx->destroy(tok);
        return;
      }
      if (!ctx->q->push(tok)) {
        // Feed closed under us: the engine failed. Stop producing.
        if (ctx->destroy) ctx->destroy(tok);
        throw src_abort{};
      }
    };
    try {
      src.run_heap(nullptr, em);
    } catch (const src_abort&) {
      // Cancelled from elsewhere; the engine holds the failure.
    } catch (...) {
      feeder_err = std::current_exception();
    }
    feed.close();
  });

  tbbpipe::pipeline pl;
  pl.add_filter(tbbpipe::filter_mode::serial_in_order, [&feed](void*) -> void* {
    auto v = feed.pop();
    if (!v) return nullptr;
    return new toklist{*v};
  });
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const stage_rec& s = g.stage_at(p.order[i]);
    auto mode = s.kind == stage_kind::parallel
                    ? tbbpipe::filter_mode::parallel
                    : tbbpipe::filter_mode::serial_in_order;
    pl.add_filter(
        mode,
        [&s](void* t) -> void* {
          std::unique_ptr<toklist> list(static_cast<toklist*>(t));
          toklist next;
          next.reserve(list->size());
          erased_emit em;
          em.ctx = &next;
          em.fn = [](void* c, void* tok) {
            static_cast<toklist*>(c)->push_back(tok);
          };
          // run_heap consumes its input even on throw, so on failure the
          // leak set is exactly: outputs already gathered, plus the inputs
          // not yet consumed (everything after index `done`).
          std::size_t done = 0;
          try {
            for (void* v : *list) {
              s.run_heap(v, em);
              ++done;
            }
          } catch (...) {
            if (s.destroy_out)
              for (void* o : next) s.destroy_out(o);
            if (s.destroy_in)
              for (std::size_t k = done + 1; k < list->size(); ++k)
                s.destroy_in((*list)[k]);
            throw;
          }
          *list = std::move(next);
          return list.release();
        },
        list_destroy(s.destroy_in));
  }
  {
    const stage_rec& snk = g.stage_at(p.order[n - 1]);
    pl.add_filter(
        tbbpipe::filter_mode::serial_in_order,
        [&snk, ctl](void* t) -> void* {
          std::unique_ptr<toklist> list(static_cast<toklist*>(t));
          erased_emit none;
          std::size_t done = 0;
          try {
            for (void* v : *list) {
              snk.run_heap(v, none);
              if (ctl != nullptr) ctl->complete();
              ++done;
            }
          } catch (...) {
            if (snk.destroy_in)
              for (std::size_t k = done + 1; k < list->size(); ++k)
                snk.destroy_in((*list)[k]);
            throw;
          }
          return nullptr;
        },
        list_destroy(snk.destroy_in));
  }

  exec_result res;
  util::stopwatch sw;
  std::exception_ptr run_err;
  try {
    pl.run(opt.max_tokens ? opt.max_tokens : 4 * std::size_t{workers}, workers);
  } catch (...) {
    run_err = std::current_exception();
  }
  res.seconds = sw.seconds();
  // Unblock and retire the feeder (a failed engine stops pulling from the
  // feed), then reclaim whatever it had buffered. A feeder parked on a full
  // admission window would never see the feed close — shed it out first.
  if (run_err != nullptr && ctl != nullptr) ctl->cancel();
  feed.close();
  feeder.join();
  {
    const stage_rec& src = g.stage_at(p.order[0]);
    for (void* tok : feed.drain())
      if (src.destroy_out) src.destroy_out(tok);
  }
  if (run_err) std::rethrow_exception(run_err);
  if (feeder_err) std::rethrow_exception(feeder_err);
  return res;
}

}  // namespace

exec_result execute(graph& g, backend b, const exec_options& opt) {
  // One admission gate per run, shared by the source (admit) and the sink
  // (complete) ends across every backend lowering.
  std::unique_ptr<detail::admission_ctl> ctl;
  if (opt.admission.policy != admission_policy::none)
    ctl = std::make_unique<detail::admission_ctl>(opt.admission);

  auto run = [&]() -> exec_result {
    switch (b) {
      case backend::serial:
        return run_serial_elision(g, ctl.get());
      case backend::hyperqueue:
        return run_hyperqueue_backend(g, opt, /*force_element=*/false,
                                      ctl.get());
      case backend::hyperqueue_element:
        return run_hyperqueue_backend(g, opt, /*force_element=*/true,
                                      ctl.get());
      case backend::pthreads:
        return run_pthreads_backend(g, opt, ctl.get());
      case backend::tbb:
        return run_tbb_backend(g, opt, ctl.get());
    }
    throw std::logic_error("pipe::execute: unknown backend");
  };
  exec_result res = run();
  if (ctl) {
    res.admitted = ctl->admitted.load(std::memory_order_relaxed);
    res.shed = ctl->shed.load(std::memory_order_relaxed);
    res.admission_wait_ns = ctl->wait_ns.load(std::memory_order_relaxed);
  }
  return res;
}

// ---- app registry ----------------------------------------------------------

namespace {

struct registry_t {
  std::mutex mu;
  std::vector<std::string> names;
  std::map<std::string, app_factory> factories;
  std::map<std::string, std::string> references;  // (name|seed|mode) -> digest
};

registry_t& registry() {
  static registry_t r;
  return r;
}

std::string ref_key(const std::string& name, const app_params& p) {
  return name + "|" + std::to_string(p.seed) + (p.quick ? "|q" : "|f");
}

}  // namespace

void register_app(std::string name, app_factory make) {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.factories.emplace(name, std::move(make)).second)
    r.names.push_back(std::move(name));
}

const std::vector<std::string>& registered_apps() {
  ensure_builtin_apps();
  return registry().names;
}

app_run run_app(const std::string& name, backend b, const app_params& p,
                const exec_options* opt_override) {
  ensure_builtin_apps();
  app_factory make;
  {
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.factories.find(name);
    if (it == r.factories.end())
      throw std::out_of_range("pipe::run_app: unknown app '" + name + "'");
    make = it->second;
  }

  app_run out;
  // Serial-elision reference digest, memoized per (app, seed, size). The
  // runner owns the equality gate: apps only declare kernels and a digest.
  {
    const std::string key = ref_key(name, p);
    auto& r = registry();
    std::unique_lock<std::mutex> lk(r.mu);
    auto it = r.references.find(key);
    if (it == r.references.end()) {
      lk.unlock();
      app_params ref_p = p;
      ref_p.workers = 1;
      auto ref_inst = make(ref_p);
      graph ref_g;
      ref_inst->describe(ref_g);
      (void)run_serial_elision(ref_g);
      std::string digest = ref_inst->digest();
      lk.lock();
      it = r.references.emplace(key, std::move(digest)).first;
    }
    out.reference = it->second;
  }

  auto inst = make(p);
  graph g;
  inst->describe(g);
  exec_options opt;
  if (opt_override) {
    opt = *opt_override;
  } else {
    opt.workers = p.workers;
    opt.seed = p.seed;
  }
  // A failing run is a reportable result, not a crash of the harness: map
  // the backend's rethrown exception onto exec.outcome/error. The digest is
  // left empty (partial output must not masquerade as a result), so ok
  // stays false. graph_error still propagates — a miswired pipeline is a
  // caller bug, not a run outcome.
  try {
    out.exec = execute(g, b, opt);
    out.digest = inst->digest();
    out.ok = out.digest == out.reference;
  } catch (const graph_error&) {
    throw;
  } catch (const stall_error& e) {
    out.exec.outcome = run_outcome::stalled;
    out.exec.error = e.what();
  } catch (const std::exception& e) {
    out.exec.outcome = run_outcome::failed;
    out.exec.error = e.what();
  }
  return out;
}

}  // namespace hq::pipe
