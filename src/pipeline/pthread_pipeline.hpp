// POSIX-threads pipeline baseline (the "Pthreads" model of the evaluation).
//
// PARSEC's pthreads versions of ferret and dedup hand-build pipelines as
// chains of thread pools connected by bounded queues, with explicit reorder
// logic before serial stages. This module provides those building blocks in
// the same style:
//   * stage_pool<In>  — a pool of threads draining a bounded_queue until it
//                       is closed; the stage body forwards results itself.
//   * serial_stage<In> — one thread, in arrival order (wrap ordered_commit
//                       for in-sequence delivery).
//
// Note what is *absent* compared to hyperqueues: the programmer wires
// queues, chooses thread counts per stage (the core-count tuning the paper
// criticizes), and re-implements ordering by hand.
#pragma once

#include <cassert>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "conc/bounded_queue.hpp"
#include "conc/ordered_commit.hpp"

namespace hq::pth {

/// A pool of `threads` workers, each looping: pop from `input` until closed
/// and drained, apply `body`. The body pushes to downstream queues itself.
template <typename In>
class stage_pool {
 public:
  stage_pool(bounded_queue<In>& input, unsigned threads, std::function<void(In&&)> body)
      : input_(input), threads_(threads), body_(std::move(body)) {
    assert(threads_ >= 1);
  }

  stage_pool(const stage_pool&) = delete;
  stage_pool& operator=(const stage_pool&) = delete;

  void start() {
    for (unsigned i = 0; i < threads_; ++i) {
      pool_.emplace_back([this] {
        while (auto item = input_.pop()) body_(std::move(*item));
      });
    }
  }

  /// Wait for all worker threads (the input queue must have been closed).
  void join() {
    for (auto& t : pool_) t.join();
    pool_.clear();
  }

 private:
  bounded_queue<In>& input_;
  const unsigned threads_;
  std::function<void(In&&)> body_;
  std::vector<std::thread> pool_;
};

/// One thread that consumes sequence-tagged items in order: upstream stages
/// call emit(seq, item) from any thread; `body` observes items sorted by
/// seq with no gaps. Call finish() after all producers completed.
template <typename In>
class ordered_serial_stage {
 public:
  explicit ordered_serial_stage(std::function<void(In&&)> body)
      : body_(std::move(body)) {}

  ordered_serial_stage(const ordered_serial_stage&) = delete;
  ordered_serial_stage& operator=(const ordered_serial_stage&) = delete;

  void start() {
    worker_ = std::thread([this] {
      while (auto item = oc_.take_next()) body_(std::move(*item));
    });
  }

  void emit(std::uint64_t seq, In item) { oc_.put(seq, std::move(item)); }

  void finish_and_join() {
    oc_.finish();
    worker_.join();
  }

 private:
  ordered_commit<In> oc_;
  std::function<void(In&&)> body_;
  std::thread worker_;
};

}  // namespace hq::pth
