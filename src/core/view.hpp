// Views and the split/reduce algebra (paper Section 3.3).
//
// A view is a (head, tail) pair over a linked chain of queue segments. Each
// side is either *local* (a real segment pointer) or *non-local* (the
// segment is shared with the logically adjacent view; represented by a null
// pointer carrying a match id used to check the pairing invariant).
// The empty view ε is distinct from a view whose two sides are both
// non-local.
//
//   split((s,s))              = ((s, nlX), (nlX, s))         (new id X)
//   reduce((h1,t1),(h2,t2))   = ((h1,t2), ε)
//     - t1, h2 local:         link t1->next = h2
//     - t1, h2 non-local:     ids must match (already linked by the split)
//   reduce(v, ε) = (v, ε);  reduce(ε, v) = (v, ε)
#pragma once

#include <cstdint>
#include <utility>

#include "core/segment.hpp"

namespace hq::detail {

struct view {
  segment* head = nullptr;   // local head pointer, when head_nl == 0
  segment* tail = nullptr;   // local tail pointer, when tail_nl == 0
  std::uint64_t head_nl = 0;  // nonzero: head side is non-local with this id
  std::uint64_t tail_nl = 0;  // nonzero: tail side is non-local with this id
  bool present = false;       // false: this is the empty view ε

  [[nodiscard]] bool empty() const noexcept { return !present; }
  [[nodiscard]] bool head_local() const noexcept { return present && head_nl == 0; }
  [[nodiscard]] bool tail_local() const noexcept { return present && tail_nl == 0; }

  /// The local view (s, s) on a single segment.
  static view local(segment* s) noexcept {
    view v;
    v.head = s;
    v.tail = s;
    v.present = true;
    return v;
  }

  /// Detach and return this view's contents, leaving ε behind.
  view take() noexcept {
    view v = *this;
    *this = view{};
    return v;
  }
};

/// Split a local view (s, s) into a head-only and a tail-only view joined by
/// the fresh non-local id `nl_id`. Returns {head_view, tail_view}.
std::pair<view, view> split(view v, std::uint64_t nl_id) noexcept;

/// Reduce `right` into `left` in program order; `right` becomes ε.
/// Aborts (assert) on pairings that the paper proves cannot occur.
void reduce_into(view& left, view&& right) noexcept;

}  // namespace hq::detail
