#include "core/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

namespace hq {

namespace {

/// Read a one-line sysfs attribute; empty string when absent/unreadable.
std::string read_attr(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return {};
  std::string line;
  std::getline(f, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                           line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

long read_long(const std::string& path, long fallback) {
  const std::string s = read_attr(path);
  if (s.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  return end == s.c_str() ? fallback : v;
}

/// Parse a kernel cpulist ("0-3,5,8-9") into ascending CPU ids.
std::vector<unsigned> parse_cpulist(const std::string& list) {
  std::vector<unsigned> cpus;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const std::size_t dash = tok.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (end != tok.c_str() && v >= 0) cpus.push_back(static_cast<unsigned>(v));
    } else {
      const long lo = std::strtol(tok.c_str(), &end, 10);
      const long hi = std::strtol(tok.c_str() + dash + 1, &end, 10);
      for (long v = lo; v >= 0 && v <= hi; ++v) {
        cpus.push_back(static_cast<unsigned>(v));
      }
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

unsigned hardware_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Renumber arbitrary raw ids into dense 0..k-1 ids, preserving raw order.
unsigned densify(std::vector<unsigned>& ids) {
  std::vector<unsigned> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (unsigned& id : ids) {
    id = static_cast<unsigned>(
        std::lower_bound(sorted.begin(), sorted.end(), id) - sorted.begin());
  }
  return static_cast<unsigned>(sorted.size());
}

}  // namespace

const topology& topology::system() {
  static const topology t = detect();
  return t;
}

topology topology::detect() {
  if (const char* env = std::getenv("HQ_TOPOLOGY")) {
    return synthetic(env);
  }
  topology t = from_sysfs("/sys/devices/system");
  if (t.num_cpus() == 0) return flat(hardware_cpus());
  return t;
}

topology topology::flat(unsigned ncpus) {
  topology t;
  if (ncpus == 0) ncpus = 1;
  t.cpus_.reserve(ncpus);
  for (unsigned c = 0; c < ncpus; ++c) {
    t.cpus_.push_back(cpu_desc{c, 0, 0, 0, c, 0});
  }
  t.index();
  return t;
}

topology topology::synthetic(std::string_view spec) {
  if (spec == "flat") {
    topology t = flat(hardware_cpus());
    t.synthetic_ = true;
    return t;
  }
  // "<nodes>x<cpus-per-node>[x<smt-ways>]" — each node is its own package
  // and LLC group; cpus-per-node must divide by the SMT ways.
  unsigned dims[3] = {0, 0, 1};
  int ndims = 0;
  const char* p = spec.data();
  const char* end = p + spec.size();
  while (p < end && ndims < 3) {
    char* stop = nullptr;
    const long v = std::strtol(p, &stop, 10);
    if (stop == p || v <= 0) break;
    dims[ndims++] = static_cast<unsigned>(v);
    p = stop;
    if (p == end) break;
    if (*p != 'x' && *p != 'X') break;
    ++p;
  }
  const unsigned nodes = dims[0], per_node = dims[1], smt = dims[2];
  const bool valid = p == end && ndims >= 2 && nodes >= 1 && per_node >= 1 &&
                     smt >= 1 && per_node % smt == 0 &&
                     nodes * per_node <= 4096;
  if (!valid) {
    topology t = flat(hardware_cpus());
    t.synthetic_ = true;
    return t;
  }
  topology t;
  t.synthetic_ = true;
  const unsigned cores_per_node = per_node / smt;
  for (unsigned n = 0; n < nodes; ++n) {
    for (unsigned c = 0; c < cores_per_node; ++c) {
      for (unsigned s = 0; s < smt; ++s) {
        cpu_desc d;
        d.cpu = n * per_node + c * smt + s;
        d.package = n;
        d.node = n;
        d.llc = n;
        d.core = n * cores_per_node + c;
        d.smt = s;
        t.cpus_.push_back(d);
      }
    }
  }
  t.index();
  return t;
}

topology topology::from_sysfs(const std::string& root) {
  topology t;
  const std::string cpu_root = root + "/cpu";
  std::vector<unsigned> online = parse_cpulist(read_attr(cpu_root + "/online"));
  if (online.empty()) return t;

  // NUMA node of each CPU from node/nodeN/cpulist; absent tree = one node.
  std::map<unsigned, unsigned> cpu_node;
  for (unsigned n = 0; n < 1024; ++n) {
    const std::string list =
        read_attr(root + "/node/node" + std::to_string(n) + "/cpulist");
    if (list.empty()) {
      if (n > 64) break;  // tolerate sparse node ids near the origin
      continue;
    }
    for (unsigned cpu : parse_cpulist(list)) cpu_node[cpu] = n;
  }

  std::vector<unsigned> raw_pkg, raw_node, raw_llc, raw_core;
  std::map<std::string, unsigned> llc_groups;    // shared_cpu_list -> group id
  std::map<std::pair<long, long>, unsigned> core_groups;  // (pkg, core_id)

  for (unsigned cpu : online) {
    const std::string base = cpu_root + "/cpu" + std::to_string(cpu);
    cpu_desc d;
    d.cpu = cpu;
    const long pkg = read_long(base + "/topology/physical_package_id", 0);
    const long core_id = read_long(base + "/topology/core_id", cpu);

    // SMT rank: position among the online thread siblings.
    std::string sib = read_attr(base + "/topology/thread_siblings_list");
    if (sib.empty()) sib = read_attr(base + "/topology/core_cpus_list");
    unsigned rank = 0;
    for (unsigned s : parse_cpulist(sib)) {
      if (s >= cpu) break;
      if (std::binary_search(online.begin(), online.end(), s)) ++rank;
    }
    d.smt = rank;

    // LLC group: deepest data/unified cache level's shared_cpu_list.
    long best_level = -1;
    std::string best_shared;
    for (unsigned idx = 0; idx < 32; ++idx) {
      const std::string cbase = base + "/cache/index" + std::to_string(idx);
      const long level = read_long(cbase + "/level", -1);
      if (level < 0) continue;
      if (read_attr(cbase + "/type") == "Instruction") continue;
      if (level > best_level) {
        const std::string shared = read_attr(cbase + "/shared_cpu_list");
        if (!shared.empty()) {
          best_level = level;
          best_shared = shared;
        }
      }
    }

    auto node_it = cpu_node.find(cpu);
    const unsigned node = node_it != cpu_node.end() ? node_it->second : 0;
    // No cache description: fall back to one LLC per node.
    if (best_shared.empty()) best_shared = "node:" + std::to_string(node);
    const unsigned llc =
        llc_groups.emplace(best_shared, static_cast<unsigned>(llc_groups.size()))
            .first->second;
    const unsigned core =
        core_groups
            .emplace(std::make_pair(pkg, core_id),
                     static_cast<unsigned>(core_groups.size()))
            .first->second;

    raw_pkg.push_back(static_cast<unsigned>(pkg));
    raw_node.push_back(node);
    raw_llc.push_back(llc);
    raw_core.push_back(core);
    t.cpus_.push_back(d);
  }

  densify(raw_pkg);
  densify(raw_node);
  for (std::size_t i = 0; i < t.cpus_.size(); ++i) {
    t.cpus_[i].package = raw_pkg[i];
    t.cpus_[i].node = raw_node[i];
    t.cpus_[i].llc = raw_llc[i];
    t.cpus_[i].core = raw_core[i];
  }
  t.index();
  return t;
}

void topology::index() {
  std::vector<unsigned> v;
  auto count = [&](unsigned cpu_desc::* field) {
    v.clear();
    for (const cpu_desc& d : cpus_) v.push_back(d.*field);
    return densify(v);
  };
  num_packages_ = count(&cpu_desc::package);
  num_nodes_ = count(&cpu_desc::node);
  num_llcs_ = count(&cpu_desc::llc);
  num_cores_ = count(&cpu_desc::core);
}

const cpu_desc* topology::find(unsigned cpu) const noexcept {
  for (const cpu_desc& d : cpus_) {
    if (d.cpu == cpu) return &d;
  }
  return nullptr;
}

unsigned topology::distance(const cpu_desc& a, const cpu_desc& b) noexcept {
  if (a.cpu == b.cpu) return kDistSelf;
  if (a.core == b.core) return kDistSmt;
  if (a.llc == b.llc) return kDistLlc;
  if (a.node == b.node) return kDistNode;
  if (a.package == b.package) return kDistPackage;
  return kDistRemote;
}

placement_policy placement_policy_from_env() noexcept {
  const char* env = std::getenv("HQ_PLACEMENT");
  if (env == nullptr) return placement_policy::none;
  const std::string_view s(env);
  if (s == "compact") return placement_policy::compact;
  if (s == "scatter") return placement_policy::scatter;
  return placement_policy::none;
}

const char* to_string(placement_policy p) noexcept {
  switch (p) {
    case placement_policy::compact: return "compact";
    case placement_policy::scatter: return "scatter";
    case placement_policy::none: break;
  }
  return "none";
}

std::vector<unsigned> plan_placement(const topology& topo,
                                     placement_policy policy,
                                     unsigned num_workers) {
  if (policy == placement_policy::none || topo.num_cpus() == 0 ||
      num_workers == 0) {
    return {};
  }
  // Compact fill order: domain by domain, SMT siblings adjacent. Ties
  // cannot occur (cpu ids are unique), so the order is a pure function of
  // the topology.
  std::vector<const cpu_desc*> order;
  order.reserve(topo.num_cpus());
  for (const cpu_desc& d : topo.cpus()) order.push_back(&d);
  std::sort(order.begin(), order.end(), [](const cpu_desc* a, const cpu_desc* b) {
    return std::tie(a->node, a->llc, a->core, a->smt, a->cpu) <
           std::tie(b->node, b->llc, b->core, b->smt, b->cpu);
  });

  if (policy == placement_policy::scatter) {
    // Round-robin the compact per-node sequences across nodes.
    std::vector<std::vector<const cpu_desc*>> per_node(topo.num_nodes());
    for (const cpu_desc* d : order) per_node[d->node].push_back(d);
    std::vector<const cpu_desc*> rr;
    rr.reserve(order.size());
    for (std::size_t i = 0; rr.size() < order.size(); ++i) {
      for (auto& nl : per_node) {
        if (i < nl.size()) rr.push_back(nl[i]);
      }
    }
    order = std::move(rr);
  }

  std::vector<unsigned> cpus(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    cpus[w] = order[w % order.size()]->cpu;
  }
  return cpus;
}

}  // namespace hq
