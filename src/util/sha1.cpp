#include "util/sha1.hpp"

#include <cstring>

namespace hq::util {

namespace {
inline std::uint32_t rol(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void sha1_stream::process_block(const std::uint8_t* p) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(p[4 * i]) << 24) |
           (static_cast<std::uint32_t>(p[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(p[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(p[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rol(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t t = rol(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rol(b, 30);
    b = a;
    a = t;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void sha1_stream::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_ += len;
  if (buf_len_ != 0) {
    const std::size_t need = 64 - buf_len_;
    const std::size_t take = len < need ? len : need;
    std::memcpy(buf_ + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    len -= take;
    if (buf_len_ == 64) {
      process_block(buf_);
      buf_len_ = 0;
    }
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len != 0) {
    std::memcpy(buf_, p, len);
    buf_len_ = len;
  }
}

sha1_digest sha1_stream::finish() noexcept {
  const std::uint64_t bits = total_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buf_len_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  // Bypass total_ accounting for the length field itself.
  std::memcpy(buf_ + 56, len_be, 8);
  process_block(buf_);
  buf_len_ = 0;
  sha1_digest d;
  for (int i = 0; i < 5; ++i) d.h[static_cast<std::size_t>(i)] = h_[i];
  return d;
}

sha1_digest sha1(const void* data, std::size_t len) noexcept {
  sha1_stream s;
  s.update(data, len);
  return s.finish();
}

std::string sha1_digest::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint32_t word : h) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(digits[(word >> shift) & 0xF]);
    }
  }
  return out;
}

}  // namespace hq::util
