#include "core/segment.hpp"

#include <bit>
#include <new>

namespace hq::detail {

namespace {

std::size_t segment_alignment(const element_ops* ops) {
  // The padded index lines require cache-line alignment of the header; the
  // slot array additionally honors the element alignment.
  std::size_t align = alignof(segment) > kCacheLine ? alignof(segment) : kCacheLine;
  return ops->align > align ? ops->align : align;
}

}  // namespace

segment* segment::create(std::uint64_t capacity, const element_ops* ops,
                         data_path_counters* counters) {
  assert(capacity >= 2 && std::has_single_bit(capacity));
  // One allocation: [segment header | padding to element alignment | slots].
  const std::size_t align = segment_alignment(ops);
  const std::size_t elem_align = ops->align > alignof(segment) ? ops->align
                                                               : alignof(segment);
  const std::size_t header = (sizeof(segment) + elem_align - 1) / elem_align * elem_align;
  const std::size_t bytes = header + capacity * ops->size;
  auto* raw = static_cast<std::byte*>(::operator new(bytes, std::align_val_t{align}));
  return ::new (raw) segment(capacity, ops, raw + header, counters);
}

void segment::destroy(segment* s) {
  assert(s->head.load(std::memory_order_relaxed) ==
             s->tail.load(std::memory_order_relaxed) &&
         "elements must be destroyed before freeing a segment");
  const std::size_t align = segment_alignment(s->ops);
  s->~segment();
  ::operator delete(static_cast<void*>(s), std::align_val_t{align});
}

}  // namespace hq::detail
