// Machine topology model: packages, NUMA nodes, last-level-cache groups,
// cores and SMT siblings, plus the deterministic placement policies built
// on it.
//
// The model is parsed from /sys/devices/system/{cpu,node} (the root is
// injectable so tests can run against golden fixture trees), or fabricated
// from the HQ_TOPOLOGY env knob:
//
//   HQ_TOPOLOGY=flat      one node holding every hardware thread
//   HQ_TOPOLOGY=2x8       2 nodes x 8 CPUs (one LLC and package per node)
//   HQ_TOPOLOGY=2x8x2     2 nodes x 8 CPUs with 2-way SMT (4 cores/node)
//
// Synthetic topologies exist so single-node CI machines exercise every
// multi-node code path (per-node arenas, distance-ordered stealing, the
// shard partitioner) deterministically. Placement built on a synthetic
// model is *logical*: worker pinning to CPUs the real machine lacks simply
// fails and is recorded as unpinned, while arenas, steal order and the
// locality counters all follow the synthetic node ids.
//
// Everything here is a pure function of its inputs — no randomness, no
// iteration-order dependence — so any placement derived from a topology is
// reproducible run over run, which the determinism gates require.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hq {

/// One hardware thread (logical CPU) and the sharing domains it belongs to.
/// All ids are dense indices into the owning topology (NOT raw sysfs ids).
struct cpu_desc {
  unsigned cpu = 0;      ///< logical CPU id (sysfs cpuN / synthetic index)
  unsigned package = 0;  ///< physical package (socket)
  unsigned node = 0;     ///< NUMA node
  unsigned llc = 0;      ///< last-level-cache sharing group
  unsigned core = 0;     ///< physical core (globally unique across packages)
  unsigned smt = 0;      ///< thread rank within the core (0 = first sibling)
};

class topology {
 public:
  /// Steal-distance rungs between two CPUs, nearest first. try_steal walks
  /// victims in this order: an SMT sibling shares L1/L2, an LLC peer shares
  /// the last-level cache, a node peer at least shares the memory
  /// controller; everything beyond pays a cross-package cache-line bounce.
  enum : unsigned {
    kDistSelf = 0,
    kDistSmt = 1,
    kDistLlc = 2,
    kDistNode = 3,
    kDistPackage = 4,
    kDistRemote = 5,
  };

  /// The process-wide model: HQ_TOPOLOGY when set, else the real machine,
  /// else a flat fallback. Resolved once and cached.
  static const topology& system();

  /// Uncached detection (env, then sysfs, then flat).
  static topology detect();

  /// Parse a sysfs tree rooted at `root` (normally /sys/devices/system;
  /// tests inject fixture directories). Missing files degrade gracefully:
  /// absent node dirs collapse to one node, absent cache dirs make the LLC
  /// group the node, absent sibling lists make every CPU its own core.
  static topology from_sysfs(const std::string& root);

  /// Build the synthetic model for an HQ_TOPOLOGY spec. Unparsable specs
  /// fall back to flat (the knob must never brick a run).
  static topology synthetic(std::string_view spec);

  /// One node, one LLC, `ncpus` single-thread cores.
  static topology flat(unsigned ncpus);

  [[nodiscard]] const std::vector<cpu_desc>& cpus() const noexcept { return cpus_; }
  [[nodiscard]] unsigned num_cpus() const noexcept {
    return static_cast<unsigned>(cpus_.size());
  }
  [[nodiscard]] unsigned num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] unsigned num_llcs() const noexcept { return num_llcs_; }
  [[nodiscard]] unsigned num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] unsigned num_packages() const noexcept { return num_packages_; }
  /// True when the model came from HQ_TOPOLOGY rather than the machine.
  [[nodiscard]] bool is_synthetic() const noexcept { return synthetic_; }

  /// Descriptor for a logical CPU id; null when the id is not in the model.
  [[nodiscard]] const cpu_desc* find(unsigned cpu) const noexcept;

  /// Topology distance (kDist* rung) between two CPUs of this model.
  [[nodiscard]] static unsigned distance(const cpu_desc& a, const cpu_desc& b) noexcept;

 private:
  void index();  ///< recompute the num_* counts from cpus_

  std::vector<cpu_desc> cpus_;
  unsigned num_nodes_ = 0;
  unsigned num_llcs_ = 0;
  unsigned num_cores_ = 0;
  unsigned num_packages_ = 0;
  bool synthetic_ = false;
};

/// Worker pinning policy (HQ_PLACEMENT):
///  * none    — no pinning, no per-worker node affinity (the pre-topology
///              behavior); steal order is a plain index rotation;
///  * compact — fill the machine domain by domain: node 0's cores (SMT
///              siblings adjacent) before node 1 — minimizes the number of
///              nodes touched, producer/consumer pairs share caches;
///  * scatter — round-robin workers across nodes (compact order within
///              each) — maximizes memory bandwidth per worker.
enum class placement_policy : std::uint8_t { none, compact, scatter };

/// HQ_PLACEMENT env knob (none when unset or unrecognized).
[[nodiscard]] placement_policy placement_policy_from_env() noexcept;

[[nodiscard]] const char* to_string(placement_policy p) noexcept;

/// Deterministic worker -> CPU assignment: a pure function of (topology,
/// policy, worker count). Returns one CPU id per worker; more workers than
/// CPUs wrap around (oversubscription keeps the mapping total). Empty for
/// policy none.
[[nodiscard]] std::vector<unsigned> plan_placement(const topology& topo,
                                                   placement_policy policy,
                                                   unsigned num_workers);

}  // namespace hq
