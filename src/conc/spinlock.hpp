// Tiny test-and-set spinlock with backoff, for very short critical sections
// (frame dependent lists, object trackers). Satisfies Lockable, so it works
// with std::lock_guard (C++ Core Guidelines CP.20: RAII, never bare lock()).
#pragma once

#include <atomic>

#include "conc/backoff.hpp"

namespace hq {

class spinlock {
 public:
  void lock() noexcept {
    backoff bo;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace hq
