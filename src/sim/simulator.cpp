#include "sim/des.hpp"

#include <cassert>

namespace hq::sim {

double engine::slowdown(unsigned busy_after) const {
  if (opt_.fpu_pairs == 0 || opt_.fpu_penalty <= 0 ||
      busy_after <= opt_.fpu_pairs || opt_.cores <= opt_.fpu_pairs) {
    return 1.0;
  }
  // Only the cores beyond the FPU-pair count contend for shared FPUs; the
  // average stretch dilutes over all busy cores, so adding cores past the
  // knee still helps (the curve flattens rather than regresses, as in the
  // paper's Figure 8).
  const double over = static_cast<double>(busy_after - opt_.fpu_pairs);
  return 1.0 + opt_.fpu_penalty * (over / static_cast<double>(busy_after));
}

void engine::dispatch() {
  while (busy_ < opt_.cores && !run_queue_.empty()) {
    pending p = std::move(run_queue_.front());
    run_queue_.pop_front();
    ++busy_;
    const double service = p.service * slowdown(busy_);
    events_.push(event{now_ + service, next_tie_++, std::move(p.done), true});
  }
}

double engine::run() {
  dispatch();
  while (!events_.empty()) {
    event e = std::move(const_cast<event&>(events_.top()));
    events_.pop();
    assert(e.time >= now_);
    now_ = e.time;
    if (e.frees_core) --busy_;
    if (e.fire) e.fire();
    dispatch();
  }
  return now_;
}

}  // namespace hq::sim
