// Canonical Huffman coding over bytes, with a simple bit stream — the
// entropy-coding stage of the mbzip block compressor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hq::util {

/// Append-only MSB-first bit writer.
class bit_writer {
 public:
  void put(std::uint32_t bits, unsigned count) noexcept {
    for (int i = static_cast<int>(count) - 1; i >= 0; --i) {
      acc_ = (acc_ << 1) | ((bits >> i) & 1u);
      if (++fill_ == 8) {
        out_.push_back(static_cast<std::uint8_t>(acc_));
        acc_ = 0;
        fill_ = 0;
      }
    }
  }

  /// Flush the final partial byte (zero-padded) and take the buffer.
  std::vector<std::uint8_t> finish() {
    if (fill_ != 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - fill_)));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint32_t acc_ = 0;
  unsigned fill_ = 0;
};

/// MSB-first bit reader over a borrowed buffer.
class bit_reader {
 public:
  bit_reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  /// Read one bit; returns false at end of buffer (treated as 0 by caller).
  int get() noexcept {
    if (byte_ >= len_) return -1;
    const int bit = (data_[byte_] >> (7 - fill_)) & 1;
    if (++fill_ == 8) {
      fill_ = 0;
      ++byte_;
    }
    return bit;
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t byte_ = 0;
  unsigned fill_ = 0;
};

/// Code lengths (0 = symbol unused) for a canonical Huffman code over 256
/// symbols, depth-limited to kMaxCodeLen.
struct huffman_code {
  static constexpr unsigned kMaxCodeLen = 20;
  std::uint8_t lengths[256] = {};
  std::uint32_t codes[256] = {};  // canonical codes, derived from lengths

  /// Build from symbol frequencies (at least one must be nonzero).
  static huffman_code build(const std::uint64_t freq[256]);

  /// Recompute canonical codes from lengths (after deserializing lengths).
  void assign_canonical_codes();
};

/// Encode `len` bytes: [256 length bytes][varint bit count][bit payload].
std::vector<std::uint8_t> huffman_encode(const std::uint8_t* data, std::size_t len);

/// Decode a huffman_encode buffer back to `expected_len` original bytes.
std::vector<std::uint8_t> huffman_decode(const std::uint8_t* data, std::size_t len,
                                         std::size_t expected_len);

}  // namespace hq::util
