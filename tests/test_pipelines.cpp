// Tests for the two baseline programming models: pthreads-style stage pools
// and the TBB-like token pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "pipeline/pthread_pipeline.hpp"
#include "pipeline/tbb_pipeline.hpp"

namespace {

// ------------------------------------------------------------ pthreads

TEST(PthreadPipeline, TwoStageOrderedOutput) {
  // source -> parallel square stage -> ordered serial sink.
  struct item {
    std::uint64_t seq;
    long value;
  };
  constexpr int kN = 2000;
  hq::bounded_queue<item> q1(64);
  std::vector<long> out;
  hq::pth::ordered_serial_stage<long> sink([&](long&& v) { out.push_back(v); });
  hq::pth::stage_pool<item> squares(q1, 4, [&](item&& it) {
    sink.emit(it.seq, it.value * it.value);
  });
  sink.start();
  squares.start();
  for (int i = 0; i < kN; ++i) q1.push(item{static_cast<std::uint64_t>(i), i});
  q1.close();
  squares.join();
  sink.finish_and_join();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], static_cast<long>(i) * i)
        << "serial sink must see items in sequence order";
  }
}

TEST(PthreadPipeline, ThreeStageChain) {
  struct item {
    std::uint64_t seq;
    long value;
  };
  constexpr int kN = 1000;
  hq::bounded_queue<item> q1(32), q2(32);
  std::atomic<long> sum{0};
  hq::pth::stage_pool<item> add1(q1, 3, [&](item&& it) {
    it.value += 1;
    q2.push(std::move(it));
  });
  hq::pth::stage_pool<item> acc(q2, 2, [&](item&& it) { sum.fetch_add(it.value); });
  add1.start();
  acc.start();
  for (int i = 0; i < kN; ++i) q1.push(item{static_cast<std::uint64_t>(i), i});
  q1.close();
  add1.join();
  q2.close();
  acc.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kN) * (kN - 1) / 2 + kN);
}

// ----------------------------------------------------------------- tbb-like

TEST(TbbPipeline, SerialParallelSerialKeepsOrder) {
  constexpr long kN = 3000;
  long next = 0;
  std::vector<long> out;
  hq::tbbpipe::pipeline p;
  // Source (serial): numbers 0..kN-1.
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
    if (next >= kN) return nullptr;
    return new long(next++);
  });
  // Parallel transform.
  p.add_filter(hq::tbbpipe::filter_mode::parallel, [](void* v) -> void* {
    auto* x = static_cast<long*>(v);
    *x = *x * 3 + 1;
    return x;
  });
  // Serial in-order sink.
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void* v) -> void* {
    std::unique_ptr<long> x(static_cast<long*>(v));
    out.push_back(*x);
    return nullptr;
  });
  p.run(/*max_tokens=*/8, /*num_threads=*/4);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  for (long i = 0; i < kN; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i * 3 + 1)
        << "serial_in_order sink must preserve token order";
  }
}

TEST(TbbPipeline, TokenBoundLimitsInFlight) {
  constexpr long kN = 200;
  constexpr std::size_t kTokens = 4;
  long next = 0;
  std::atomic<long> in_flight{0};
  std::atomic<long> max_seen{0};
  hq::tbbpipe::pipeline p;
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
    if (next >= kN) return nullptr;
    long cur = in_flight.fetch_add(1) + 1;
    long seen = max_seen.load();
    while (cur > seen && !max_seen.compare_exchange_weak(seen, cur)) {
    }
    return new long(next++);
  });
  p.add_filter(hq::tbbpipe::filter_mode::parallel, [&](void* v) -> void* {
    return v;
  });
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void* v) -> void* {
    delete static_cast<long*>(v);
    in_flight.fetch_sub(1);
    return nullptr;
  });
  p.run(kTokens, 4);
  EXPECT_LE(max_seen.load(), static_cast<long>(kTokens))
      << "no more than max_tokens items may be in flight";
  EXPECT_EQ(in_flight.load(), 0);
}

TEST(TbbPipeline, SingleThreadStillCompletes) {
  constexpr long kN = 500;
  long next = 0;
  long sum = 0;
  hq::tbbpipe::pipeline p;
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
    return next < kN ? new long(next++) : nullptr;
  });
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void* v) -> void* {
    std::unique_ptr<long> x(static_cast<long*>(v));
    sum += *x;
    return nullptr;
  });
  p.run(4, 1);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(TbbPipeline, RunIsReusable) {
  for (int round = 0; round < 3; ++round) {
    long next = 0;
    std::atomic<long> count{0};
    hq::tbbpipe::pipeline p;
    p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
      return next < 100 ? new long(next++) : nullptr;
    });
    p.add_filter(hq::tbbpipe::filter_mode::parallel, [&](void* v) -> void* {
      delete static_cast<long*>(v);
      count.fetch_add(1);
      return nullptr;
    });
    p.run(6, 3);
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(TbbPipeline, TypedFilterShim) {
  constexpr long kN = 100;
  long next = 0;
  std::vector<std::string> out;
  hq::tbbpipe::pipeline p;
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
    return next < kN ? new long(next++) : nullptr;
  });
  p.add_filter(hq::tbbpipe::filter_mode::parallel,
               hq::tbbpipe::make_filter<long, std::string>(
                   [](std::unique_ptr<long> v) {
                     return std::make_unique<std::string>(std::to_string(*v));
                   }));
  p.add_filter(hq::tbbpipe::filter_mode::serial_in_order, [&](void* v) -> void* {
    std::unique_ptr<std::string> s(static_cast<std::string*>(v));
    out.push_back(*s);
    return nullptr;
  });
  p.run(8, 4);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  for (long i = 0; i < kN; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

}  // namespace
