// Unit and stress tests for the low-level concurrency substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "conc/bounded_queue.hpp"
#include "conc/chase_lev_deque.hpp"
#include "conc/inline_vec.hpp"
#include "conc/ordered_commit.hpp"
#include "conc/spin_barrier.hpp"
#include "conc/spinlock.hpp"
#include "conc/spsc_ring.hpp"

namespace {

// ---------------------------------------------------------------- spsc_ring

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  hq::spsc_ring<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  hq::spsc_ring<int> q2(128);
  EXPECT_EQ(q2.capacity(), 128u);
  hq::spsc_ring<int> tiny(0);
  EXPECT_GE(tiny.capacity(), 2u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  hq::spsc_ring<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "ring must report full";
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  hq::spsc_ring<int> q(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(round));
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, round);
  }
}

TEST(SpscRing, TwoThreadStress) {
  constexpr int kN = 20000;
  hq::spsc_ring<int> q(64);
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int got = 0;
    long long s = 0;
    while (got < kN) {
      if (auto v = q.try_pop()) {
        s += *v;
        ++got;
      } else {
        std::this_thread::yield();  // single-core host: let the producer run
      }
    }
    sum.store(s);
  });
  for (int i = 0; i < kN;) {
    if (q.try_push(i)) ++i;
    else std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(SpscRing, PreservesOrderUnderConcurrency) {
  constexpr int kN = 20000;
  hq::spsc_ring<int> q(16);
  bool ok = true;
  std::thread consumer([&] {
    int expect = 0;
    while (expect < kN) {
      if (auto v = q.try_pop()) {
        if (*v != expect) {
          ok = false;
          break;
        }
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kN;) {
    if (q.try_push(i)) ++i;
    else std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ok);
}

// ------------------------------------------------------------------ ff_ring

TEST(FfRing, FifoWithSentinel) {
  hq::ff_ring<int> q(8, /*nil=*/-1);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(42));
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(FfRing, PointerStress) {
  constexpr int kN = 20000;
  static int slots[kN];
  hq::ff_ring<int*> q(32, nullptr);
  std::thread consumer([&] {
    int got = 0;
    while (got < kN) {
      if (auto v = q.try_pop()) {
        ASSERT_EQ(*v, &slots[got]);
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kN;) {
    if (q.try_push(&slots[i])) ++i;
    else std::this_thread::yield();
  }
  consumer.join();
}

// --------------------------------------------------------- chase_lev_deque

TEST(ChaseLev, OwnerLifoOrder) {
  hq::chase_lev_deque<int> d;
  int a = 1, b = 2, c = 3;
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.pop_bottom(), &c);
  EXPECT_EQ(d.pop_bottom(), &b);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLev, ThiefFifoOrder) {
  hq::chase_lev_deque<int> d;
  int a = 1, b = 2;
  d.push_bottom(&a);
  d.push_bottom(&b);
  EXPECT_EQ(d.steal(), &a) << "thieves must take the oldest task";
  EXPECT_EQ(d.pop_bottom(), &b);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  hq::chase_lev_deque<int> d(4);
  std::vector<int> vals(1000);
  for (auto& v : vals) d.push_bottom(&v);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop_bottom(), &vals[i]);
}

TEST(ChaseLev, StealStressNoLossNoDup) {
  constexpr int kItems = 100000;
  constexpr int kThieves = 3;
  hq::chase_lev_deque<int> d;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};
  std::atomic<int> taken{0};

  auto account = [&](int* p) {
    seen[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
    taken.fetch_add(1);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || taken.load() < kItems) {
        if (int* p = d.steal()) account(p);
        if (taken.load() >= kItems) break;
      }
    });
  }
  // Owner interleaves pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(&vals[i]);
    if ((i & 7) == 0) {
      if (int* p = d.pop_bottom()) account(p);
    }
  }
  while (taken.load() < kItems) {
    if (int* p = d.pop_bottom()) account(p);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(taken.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i << " lost or duplicated";
  }
}

// ------------------------------------------------------------ bounded_queue

TEST(BoundedQueue, BlockingPushPopRoundtrip) {
  hq::bounded_queue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expect = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expect);
    ++expect;
  }
  EXPECT_EQ(expect, 1000);
  producer.join();
}

TEST(BoundedQueue, CloseUnblocksProducers) {
  hq::bounded_queue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] {
    // Queue full: this blocks until close().
    EXPECT_FALSE(q.push(2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedQueue, MpmcStressConservesItems) {
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 3, kConsumers = 3;
  hq::bounded_queue<int> q(64);
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) sum.fetch_add(*v);
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const long long n = static_cast<long long>(kPerProducer) * kProducers;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------- ordered_commit

TEST(OrderedCommit, ReleasesInSequenceOrder) {
  hq::ordered_commit<int> oc;
  oc.put(2, 20);
  oc.put(0, 0);
  EXPECT_EQ(oc.parked(), 2u);
  auto run = oc.drain_ready();
  ASSERT_EQ(run.size(), 1u);  // only seq 0 is ready; 2 waits for 1
  EXPECT_EQ(run[0], 0);
  oc.put(1, 10);
  run = oc.drain_ready();
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0], 10);
  EXPECT_EQ(run[1], 20);
}

TEST(OrderedCommit, BlockingTakeAcrossThreads) {
  hq::ordered_commit<int> oc;
  std::vector<int> got;
  std::thread consumer([&] {
    while (auto v = oc.take_next()) got.push_back(*v);
  });
  // Insert out of order from two threads.
  std::thread p1([&] {
    for (int i = 9; i >= 0; i -= 2) oc.put(static_cast<std::uint64_t>(i), i);
  });
  std::thread p2([&] {
    for (int i = 8; i >= 0; i -= 2) oc.put(static_cast<std::uint64_t>(i), i);
  });
  p1.join();
  p2.join();
  oc.finish();
  consumer.join();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

// -------------------------------------------------------------- inline_vec

TEST(InlineVec, StaysInlineThenSpills) {
  hq::inline_vec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);  // spill to heap
  v.push_back(5);
  ASSERT_EQ(v.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVec, EraseValueAndUnordered) {
  hq::inline_vec<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  EXPECT_TRUE(v.erase_value(2));
  EXPECT_FALSE(v.erase_value(42));
  EXPECT_EQ(v.size(), 2u);
  // Remaining elements are 1 and 3 in some order.
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 4);
}

TEST(InlineVec, MoveOnlyPayload) {
  hq::inline_vec<std::unique_ptr<int>, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(std::make_unique<int>(i));
  hq::inline_vec<std::unique_ptr<int>, 2> w(std::move(v));
  ASSERT_EQ(w.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*w[static_cast<std::size_t>(i)], i);
}

TEST(InlineVec, MoveFromInlineStorage) {
  hq::inline_vec<std::unique_ptr<int>, 8> v;
  v.push_back(std::make_unique<int>(7));
  hq::inline_vec<std::unique_ptr<int>, 8> w(std::move(v));
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(*w[0], 7);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): documented state
}

// ------------------------------------------------------------ spin_barrier

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4, kPhases = 50;
  hq::spin_barrier bar(kThreads);
  std::atomic<int> phase_counts[kPhases];
  for (auto& c : phase_counts) c.store(0);
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        bar.arrive_and_wait();
        // After the barrier, every participant must have arrived.
        if (phase_counts[p].load() != kThreads) ok.store(false);
        bar.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

// ---------------------------------------------------------------- spinlock

TEST(Spinlock, MutualExclusionCounter) {
  hq::spinlock mu;
  long counter = 0;
  constexpr int kThreads = 4, kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<hq::spinlock> lk(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

}  // namespace
