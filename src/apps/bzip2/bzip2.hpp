// bzip2-like block compression utility over the mbzip kernel (paper
// Section 6.3): a 3-stage pipeline — serial read, parallel per-block
// compression, serial in-order write.
//
// Variants: serial, pthreads, tbb, task dataflow ("objects", the structure
// of prior work [7] the paper compares against), hyperqueue, and the
// hyperqueue version with the loop-split idiom of Section 5.4 that bounds
// queue growth under serial execution.
#pragma once

#include <cstdint>
#include <vector>

namespace hq::apps::bzip2 {

struct config {
  std::size_t input_bytes = 4u << 20;
  std::size_t block_bytes = 128u << 10;
  unsigned threads = 1;
  std::uint64_t seed = 99;
  std::size_t split_batch = 8;  // blocks per batch in the loop-split variant
};

struct result {
  std::vector<std::uint8_t> output;  // mbzip stream (decompressible)
  double seconds = 0;
  std::size_t blocks = 0;
  std::size_t peak_segments = 0;  // hyperqueue variants: memory footprint probe
};

result run_serial(const config& cfg, const std::vector<std::uint8_t>& input);
result run_pthreads(const config& cfg, const std::vector<std::uint8_t>& input);
result run_tbb(const config& cfg, const std::vector<std::uint8_t>& input);
result run_objects(const config& cfg, const std::vector<std::uint8_t>& input);
result run_hyperqueue(const config& cfg, const std::vector<std::uint8_t>& input);
result run_hyperqueue_split(const config& cfg,
                            const std::vector<std::uint8_t>& input);

/// Serial per-stage seconds {read, compress, write}.
std::vector<double> stage_times(const config& cfg,
                                const std::vector<std::uint8_t>& input);

}  // namespace hq::apps::bzip2
