// SLO service simulation (sim/service.hpp): workload generation is a pure
// function of the seed, the virtual-time queueing model reproduces
// byte-identical percentile curves at any worker count and on any backend,
// the model's dispatch agrees with the sim::engine DES it folds in, and the
// shed policy delivers the headline property — bounded in-system population
// AND bounded admitted-request tail under 2x overload — while the real
// transport underneath respects its per-queue memory budget.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/latency.hpp"
#include "sim/des.hpp"
#include "sim/service.hpp"

namespace {

using hq::pipe::admission_policy;
using hq::sim::generate_requests;
using hq::sim::request;
using hq::sim::run_service;
using hq::sim::service_model;
using hq::sim::service_result;
using hq::sim::service_spec;

service_spec quick_spec() {
  service_spec s;
  s.requests = 3000;
  s.servers = 4;
  s.service_mean = 1.0e-3;
  s.service_sigma = 0.5;
  s.offered_load = 1.5;
  s.seed = 99;
  s.window = 64;
  s.workers = 1;
  return s;
}

TEST(Service, WorkloadIsSeedPure) {
  service_spec s = quick_spec();
  auto a = generate_requests(s);
  auto b = generate_requests(s);
  ASSERT_EQ(a.size(), s.requests);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].service, b[i].service);
  }
  s.seed = 100;
  auto c = generate_requests(s);
  EXPECT_NE(a[0].service, c[0].service);
  // Arrivals are monotone, services positive, sample mean within 20% of
  // the configured mean.
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) EXPECT_GT(a[i].arrival, a[i - 1].arrival);
    EXPECT_GT(a[i].service, 0.0);
    sum += a[i].service;
  }
  const double mean = sum / static_cast<double>(a.size());
  EXPECT_NEAR(mean, s.service_mean, 0.2 * s.service_mean);
}

TEST(Service, CurvesIdenticalAcrossWorkersAndBackends) {
  service_spec s = quick_spec();
  s.policy = admission_policy::shed;
  service_result ref = run_service(s);
  ASSERT_EQ(ref.exec.outcome, hq::pipe::run_outcome::ok);
  ASSERT_GT(ref.admitted, 0u);

  for (unsigned workers : {2u, 4u}) {
    service_spec v = s;
    v.workers = workers;
    service_result r = run_service(v);
    EXPECT_TRUE(r.latency == ref.latency) << "workers=" << workers;
    EXPECT_EQ(r.admitted, ref.admitted) << "workers=" << workers;
    EXPECT_EQ(r.shed, ref.shed) << "workers=" << workers;
    EXPECT_EQ(r.checksum, ref.checksum) << "workers=" << workers;
    EXPECT_EQ(r.makespan, ref.makespan) << "workers=" << workers;
  }
  for (hq::pipe::backend b :
       {hq::pipe::backend::serial, hq::pipe::backend::hyperqueue_element,
        hq::pipe::backend::pthreads, hq::pipe::backend::tbb}) {
    service_spec v = s;
    v.transport = b;
    v.workers = 2;
    service_result r = run_service(v);
    EXPECT_TRUE(r.latency == ref.latency) << hq::pipe::to_string(b);
    EXPECT_EQ(r.checksum, ref.checksum) << hq::pipe::to_string(b);
  }
}

TEST(Service, ModelAgreesWithDesEngine) {
  // Replay the admitted trace through the sim::engine DES (FIFO dispatch,
  // `servers` cores): sojourn histograms must match the min-heap model's
  // bucket for bucket.
  for (admission_policy policy :
       {admission_policy::none, admission_policy::shed}) {
    service_spec s = quick_spec();
    s.policy = policy;
    auto reqs = generate_requests(s);
    service_model model(s);
    std::vector<request> admitted;
    for (const request& r : reqs)
      if (model.offer(r)) admitted.push_back(r);

    hq::sim::engine eng({.cores = s.servers});
    hq::stats::latency_histogram replay;
    for (const request& r : admitted) {
      eng.submit_after(r.arrival, [&eng, &replay, r] {
        eng.submit(r.service, [&eng, &replay, r] {
          const double sojourn = eng.now() - r.arrival;
          replay.record(sojourn <= 0
                            ? 0
                            : static_cast<std::uint64_t>(sojourn * 1e9));
        });
      });
    }
    const double makespan = eng.run();
    EXPECT_TRUE(replay == model.latency())
        << "policy=" << static_cast<int>(policy);
    EXPECT_NEAR(makespan, model.makespan(), 1e-9);
  }
}

TEST(Service, ShedBoundsTailAndMemoryUnderOverload) {
  service_spec s = quick_spec();
  s.offered_load = 2.0;

  service_spec none = s;
  none.policy = admission_policy::none;
  service_result r_none = run_service(none);

  service_spec shed = s;
  shed.policy = admission_policy::shed;
  service_result r_shed = run_service(shed);

  EXPECT_EQ(r_shed.admitted + r_shed.shed, s.requests);
  EXPECT_GT(r_shed.shed, 0u);
  EXPECT_LE(r_shed.peak_in_system, s.window);
  EXPECT_GT(r_none.peak_in_system, s.window);  // unbounded growth at 2x
  EXPECT_LT(r_shed.latency.p99(), r_none.latency.p99());
  // Absolute SLO bound: at most `window` predecessors over `servers`
  // servers, factor 4 for the lognormal service tail.
  const double bound_ns = 4.0 *
                          (static_cast<double>(s.window) / s.servers + 1.0) *
                          s.service_mean * 1e9;
  EXPECT_LT(static_cast<double>(r_shed.latency.p99()), bound_ns);
}

TEST(Service, BudgetedTransportSameCurvesBoundedBytes) {
  service_spec s = quick_spec();
  s.policy = admission_policy::shed;
  service_result free_run = run_service(s);

  service_spec b = s;
  b.memory_budget = 16 * 1024;
  b.workers = 2;
  service_result budgeted = run_service(b);

  // The budget changes scheduling pressure, never results.
  EXPECT_TRUE(budgeted.latency == free_run.latency);
  EXPECT_EQ(budgeted.checksum, free_run.checksum);
  EXPECT_EQ(budgeted.exec.pool.budget_bytes, 2 * b.memory_budget);  // 2 edges
  if (budgeted.exec.pool.budget_overruns == 0) {
    // Per-queue cap plus the exact structural slack: kShardMinSegs exempt
    // segments per live producer shard at the observed shard high-water
    // mark. Schedule-independent — under sanitizers far more shards sit
    // open concurrently, and the bound tracks that.
    EXPECT_LE(budgeted.exec.pool.peak_bytes,
              budgeted.exec.pool.budget_bytes +
                  budgeted.exec.pool.exempt_peak_bytes);
  }
}

}  // namespace
