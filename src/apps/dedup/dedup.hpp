// dedup — deduplicating compression (PARSEC), rebuilt on synthetic archives
// (see DESIGN.md substitutions).
//
// Pipeline (paper Figure 9): Fragment -> FragmentRefine -> Deduplicate ->
// Compress -> Output, with variable-rate stages: refinement produces many
// small chunks per coarse chunk, and compression is skipped for duplicates.
// The output stream interleaves unique payloads ('U') and back-references
// ('R'); the first occurrence in OUTPUT order carries the payload, so the
// stream is byte-identical across all implementations and schedules.
//
// Five implementations share these kernels; correctness = the reassembled
// stream equals the input, and all variants produce byte-identical output.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/sha1.hpp"

namespace hq::pipe {
class graph;
}

namespace hq::apps::dedup {

struct config {
  std::size_t input_bytes = 8u << 20;  // paper 'native': 672 MiB archive
  double dup_fraction = 0.5;           // whole-block duplicate rate
  std::size_t coarse_bytes = 128u << 10;  // Fragment granularity
  unsigned fine_avg_log2 = 12;            // FragmentRefine ~4 KiB chunks
  std::size_t fine_min = 512, fine_max = 16u << 10;
  unsigned threads = 1;
  std::uint64_t seed = 7;
  std::size_t slice_batch = 16;  // records moved per queue slice (Section 5.2)
  /// Coarse chunks per nested pipeline (hyperqueue variants): one local
  /// queue and one refine/dedup task pair serve this many consecutive
  /// coarse chunks, so the per-pipeline setup cost (queue construction,
  /// attachments, spawns) amortizes over a stream of batch * fine-chunk
  /// records instead of being paid per coarse chunk.
  std::size_t coarse_batch = 8;
};

/// Shared state of one unique content chunk.
struct dedup_entry {
  std::vector<std::uint8_t> compressed;
  std::atomic<bool> ready{false};  // compression finished
  bool written = false;            // output stage only (serial)
};

/// A fine-grained chunk record travelling to the output stage.
struct chunk_rec {
  std::uint64_t coarse_seq = 0;
  std::uint64_t fine_seq = 0;
  util::sha1_digest digest{};
  std::shared_ptr<dedup_entry> entry;  // shared with equal-content chunks
  bool owner = false;                  // this record must compress the data
  std::vector<std::uint8_t> data;      // raw payload (owners only)
};

/// Thread-safe digest -> entry map (striped locking, PARSEC-style).
class dedup_table {
 public:
  /// Returns the entry for the digest; *inserted is true when this caller
  /// created it (and therefore owns compression).
  std::shared_ptr<dedup_entry> intern(const util::sha1_digest& d, bool* inserted);

  [[nodiscard]] std::size_t unique_chunks() const;

 private:
  static constexpr std::size_t kStripes = 64;
  mutable std::mutex mu_[kStripes];
  std::unordered_map<util::sha1_digest, std::shared_ptr<dedup_entry>>
      map_[kStripes];
};

// ---- stage kernels -------------------------------------------------------

/// Fragment: content-defined coarse chunk boundaries.
std::vector<std::pair<std::size_t, std::size_t>> k_fragment(
    const config& cfg, const std::uint8_t* data, std::size_t len);

/// FragmentRefine: content-defined fine chunks of one coarse chunk.
std::vector<chunk_rec> k_refine(const config& cfg, const std::uint8_t* base,
                                std::size_t off, std::size_t len,
                                std::uint64_t coarse_seq);

/// Deduplicate: digest + table interning. Owners keep their payload.
void k_dedup(dedup_table* table, chunk_rec* c);

/// Compress: LZ-compress an owner's payload into its entry.
void k_compress(chunk_rec* c);

/// Output: append one record to the stream (strictly in (coarse,fine)
/// order; serial). Blocks until the entry's compression is ready when the
/// record is the first occurrence.
void k_output(std::vector<std::uint8_t>* out, chunk_rec* c);

/// Rebuild the original data from an output stream (verification).
std::vector<std::uint8_t> reassemble(const std::uint8_t* stream, std::size_t len);

struct result {
  std::vector<std::uint8_t> output;
  double seconds = 0;
  std::size_t total_chunks = 0;
  std::size_t unique_chunks = 0;
  // Segment-pool counters of the shared write queue (hyperqueue variants).
  std::size_t seg_allocated = 0;
  std::size_t seg_recycled = 0;
  std::size_t seg_high_water = 0;
};

result run_serial(const config& cfg, const std::vector<std::uint8_t>& input);
/// Declarative Figure 9 description (pipeline/builder.hpp): fragment ->
/// refine (variable-rate expand) -> dedup+compress -> in-order output. The
/// pthreads/tbb/hyperqueue variants below all execute this one graph;
/// `cfg`, `input`, `table` and `r` must outlive the built graph.
void describe_pipeline(const config& cfg, const std::vector<std::uint8_t>& input,
                       dedup_table* table, result* r, pipe::graph& g);
result run_pthreads(const config& cfg, const std::vector<std::uint8_t>& input);
result run_tbb(const config& cfg, const std::vector<std::uint8_t>& input);
result run_objects(const config& cfg, const std::vector<std::uint8_t>& input);
/// Slice-based hyperqueue pipeline (the default; Section 5.2 batching).
result run_hyperqueue(const config& cfg, const std::vector<std::uint8_t>& input);
/// Element-at-a-time hyperqueue pipeline (baseline for the slice bench).
result run_hyperqueue_element(const config& cfg,
                              const std::vector<std::uint8_t>& input);

/// Serial per-stage seconds {Fragment, FragmentRefine, Deduplicate,
/// Compress, Output} plus iteration counts, for Table 2.
struct characterization {
  double seconds[5];
  std::uint64_t iterations[5];
};
characterization stage_times(const config& cfg,
                             const std::vector<std::uint8_t>& input);

}  // namespace hq::apps::dedup
