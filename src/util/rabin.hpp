// Rabin-style rolling-hash content-defined chunking — the FragmentRefine
// kernel of dedup: split a byte stream at content-determined boundaries so
// that identical content produces identical chunks regardless of position.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hq::util {

/// Rolling hash over a fixed window with per-byte push/roll.
class rabin_hash {
 public:
  static constexpr std::size_t kWindow = 32;

  rabin_hash() noexcept;

  /// Feed the next byte, evicting the oldest once the window is full.
  void roll(std::uint8_t byte) noexcept {
    const std::uint8_t old = window_[pos_];
    window_[pos_] = byte;
    pos_ = (pos_ + 1) % kWindow;
    hash_ = hash_ * kPrime + table_[byte] - out_factor_ * table_[old];
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

  void reset() noexcept;

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t table_[256];
  std::uint64_t out_factor_;  // kPrime^kWindow
  std::uint64_t hash_ = 0;
  std::uint8_t window_[kWindow] = {};
  std::size_t pos_ = 0;
};

struct chunk_bounds {
  std::size_t offset;
  std::size_t size;
};

/// Content-defined chunking: cut where the rolling hash matches a mask,
/// subject to [min_size, max_size]. `avg_size_log2` sets the expected chunk
/// size to 2^avg_size_log2 bytes.
std::vector<chunk_bounds> chunk_stream(const std::uint8_t* data, std::size_t len,
                                       unsigned avg_size_log2, std::size_t min_size,
                                       std::size_t max_size);

}  // namespace hq::util
