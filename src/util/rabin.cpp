#include "util/rabin.hpp"

#include "util/rng.hpp"

namespace hq::util {

rabin_hash::rabin_hash() noexcept {
  std::uint64_t seed = 0x5eed5eed5eed5eedull;
  for (auto& t : table_) t = splitmix64(seed);
  out_factor_ = 1;
  for (std::size_t i = 0; i < kWindow; ++i) out_factor_ *= kPrime;
  reset();
}

void rabin_hash::reset() noexcept {
  hash_ = 0;
  pos_ = 0;
  for (auto& b : window_) b = 0;
  // Prime the hash as if the window were all zeros, so value() is stable
  // from the first roll.
  for (std::size_t i = 0; i < kWindow; ++i) hash_ = hash_ * kPrime + table_[0];
}

std::vector<chunk_bounds> chunk_stream(const std::uint8_t* data, std::size_t len,
                                       unsigned avg_size_log2, std::size_t min_size,
                                       std::size_t max_size) {
  std::vector<chunk_bounds> chunks;
  if (len == 0) return chunks;
  const std::uint64_t mask = (1ull << avg_size_log2) - 1;
  rabin_hash rh;
  std::size_t start = 0;
  std::size_t i = 0;
  while (i < len) {
    rh.roll(data[i]);
    ++i;
    const std::size_t cur = i - start;
    const bool at_boundary = (rh.value() & mask) == mask;
    if ((at_boundary && cur >= min_size) || cur >= max_size) {
      chunks.push_back({start, cur});
      start = i;
      rh.reset();
    }
  }
  if (start < len) chunks.push_back({start, len - start});
  return chunks;
}

}  // namespace hq::util
