// Host calibration of the simulator's overhead constants: measures the
// actual per-operation costs of the runtimes built in this repository so
// the virtual-time models (sim/models.hpp) are parameterized by this
// machine, not by guesses.
#pragma once

#include <cstdio>

#include "conc/bounded_queue.hpp"
#include "hq.hpp"
#include "pipeline/tbb_pipeline.hpp"
#include "sim/models.hpp"
#include "util/stats.hpp"

namespace hq::bench {

inline sim::overheads calibrate_overheads() {
  sim::overheads ov;

  // Task spawn + schedule + join, amortized over a flat batch.
  {
    scheduler sched(1);
    constexpr int kN = 20000;
    util::stopwatch sw;
    sched.run([&] {
      for (int i = 0; i < kN; ++i) spawn([] {});
      sync();
    });
    ov.task_spawn = sw.seconds() / kN;
  }

  // Hyperqueue push+pop per element (single pushpop task, ring steady state).
  {
    scheduler sched(1);
    constexpr int kN = 100000;
    double secs = 0;
    sched.run([&] {
      hyperqueue<int> q(512);
      util::stopwatch sw;
      spawn(
          [](pushpopdep<int> qq) {
            for (int i = 0; i < kN; ++i) {
              qq.push(i);
              (void)qq.pop();
            }
          },
          (pushpopdep<int>)q);
      sync();
      secs = sw.seconds();
    });
    ov.hq_queue_op = secs / kN;
  }

  // pthread bounded-queue transfer (mutex + condvar, uncontended).
  {
    bounded_queue<int> q(1024);
    constexpr int kN = 100000;
    util::stopwatch sw;
    for (int i = 0; i < kN; ++i) {
      q.push(i);
      (void)q.try_pop();
    }
    ov.pth_queue_op = sw.seconds() / kN;
  }

  // TBB-like token advance: empty 2-filter pipeline, 1 thread.
  {
    constexpr long kN = 20000;
    long next = 0;
    tbbpipe::pipeline p;
    p.add_filter(tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
      return next < kN ? reinterpret_cast<void*>(++next) : nullptr;
    });
    p.add_filter(tbbpipe::filter_mode::serial_in_order,
                 [](void*) -> void* { return nullptr; });
    util::stopwatch sw;
    p.run(8, 1);
    ov.tbb_token = sw.seconds() / (2.0 * kN);
  }

  std::printf(
      "calibrated overheads (host): task_spawn=%.2fus hq_queue_op=%.2fus "
      "pth_queue_op=%.2fus tbb_token=%.2fus\n",
      ov.task_spawn * 1e6, ov.hq_queue_op * 1e6, ov.pth_queue_op * 1e6,
      ov.tbb_token * 1e6);
  return ov;
}

/// The paper's machine shape: 2x AMD Opteron 6272 — 32 cores in 16 modules,
/// each module pair sharing one FPU.
inline sim::machine paper_machine(unsigned cores) {
  return sim::machine{cores, 16, 0.35};
}

}  // namespace hq::bench
