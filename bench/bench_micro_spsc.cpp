// Section 3.2 substrate ablation: single-producer single-consumer queue
// designs — Lamport array ring (with cached indices), FastForward
// slot-state ring, mutex+condvar bounded queue, and the hyperqueue segment
// itself. Single-threaded ping-pong isolates the per-operation cost.
//
// The segment appears twice: the current padded / cached-index /
// trivial-batched implementation, and a faithful replica of the seed layout
// (head and tail adjacent, remote index acquired on every operation, every
// element through a function pointer) so the cached-vs-seed speedup is a
// single JSON diff away.
//
// Provides its own main(): emits a BENCH_spsc.json trajectory record (see
// bench_json.hpp; --json PATH overrides, --quick shrinks to smoke size)
// gated on a single-threaded reload-count probe and a 2-thread FIFO
// torture of the padded segment.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_json.hpp"
#include "conc/backoff.hpp"
#include "conc/bounded_queue.hpp"
#include "conc/spsc_ring.hpp"
#include "core/hyperqueue.hpp"

namespace {

void BM_LamportRing(benchmark::State& state) {
  hq::spsc_ring<int> q(1024);
  int v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LamportRing);

void BM_FastForwardRing(benchmark::State& state) {
  hq::ff_ring<int> q(1024, -1);
  int v = 0;
  for (auto _ : state) {
    q.try_push(v++ & 0xFFFF);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastForwardRing);

void BM_MutexBoundedQueue(benchmark::State& state) {
  hq::bounded_queue<int> q(1024);
  int v = 0;
  for (auto _ : state) {
    q.push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexBoundedQueue);

/// The seed-era segment, reproduced verbatim as a benchmark-local fixture:
/// head and tail share a cache line, the remote index is acquired on every
/// push/pop, and each element moves through an element_ops function pointer.
class seed_segment {
 public:
  seed_segment(std::uint64_t capacity, const hq::detail::element_ops* o)
      : mask_(capacity - 1), ops_(o), storage_(new std::byte[capacity * o->size]) {}
  ~seed_segment() { delete[] storage_; }

  bool try_push(void* src) noexcept {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return false;
    ops_->move_construct(slot(t), src);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }
  bool readable() const noexcept {
    return head_.load(std::memory_order_relaxed) <
           tail_.load(std::memory_order_acquire);
  }
  void pop_into(void* dst) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    // The seed's precondition assert re-read the remote tail; the repo
    // ships with asserts on (HQ_KEEP_ASSERTS), so the seed paid this load.
    assert(h < tail_.load(std::memory_order_acquire));
    void* s = slot(h);
    ops_->move_construct(dst, s);
    ops_->destroy(s);
    head_.store(h + 1, std::memory_order_release);
  }

 private:
  void* slot(std::uint64_t i) noexcept { return storage_ + (i & mask_) * ops_->size; }

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  const std::uint64_t mask_;
  const hq::detail::element_ops* ops_;
  std::byte* storage_;
};

void BM_HyperqueueSegment_Seed(benchmark::State& state) {
  const hq::detail::element_ops ops = hq::detail::make_element_ops<int>();
  hq::detail::element_ops seed_ops = ops;
  seed_ops.trivial_copy = false;  // the seed had no flags: always indirect
  seed_ops.trivial_destroy = false;
  seed_segment seg(1024, &seed_ops);
  int v = 0, out = 0;
  // Streaming steady state: producer half a ring ahead, as in a pipeline
  // whose stages are rate-matched (the paper's Section 5.1 setting).
  while (v < 512) {
    seg.try_push(&v);
    ++v;
  }
  for (auto _ : state) {
    seg.try_push(&v);
    ++v;
    // The real consumer polls readable() before every pop (poll_chain).
    if (seg.readable()) seg.pop_into(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperqueueSegment_Seed);

void BM_HyperqueueSegment(benchmark::State& state) {
  const hq::detail::element_ops ops = hq::detail::make_element_ops<int>();
  auto* seg = hq::detail::segment::create(1024, &ops);
  int v = 0, out = 0;
  // Same streaming depth as the seed variant.
  while (v < 512) {
    seg->try_push(&v);
    ++v;
  }
  for (auto _ : state) {
    seg->try_push(&v);
    ++v;
    // Fused poll+pop; usually resolves on the cached index alone.
    seg->try_pop_into(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
}
BENCHMARK(BM_HyperqueueSegment);

/// Batched trivial-type transfer: write slices in, pop_n out, 64 at a time.
void BM_HyperqueueSegment_Bulk64(benchmark::State& state) {
  const hq::detail::element_ops ops = hq::detail::make_element_ops<int>();
  auto* seg = hq::detail::segment::create(1024, &ops);
  int buf[64];
  int v = 0;
  for (auto _ : state) {
    std::uint64_t n = 0;
    void* p = seg->acquire_write(64, &n);
    auto* slots = static_cast<int*>(p);
    for (std::uint64_t i = 0; i < n; ++i) slots[i] = v++;
    seg->publish_write(n);
    std::uint64_t got = 0;
    while (got < n) got += seg->pop_n_into(buf + got, n - got);
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
}
BENCHMARK(BM_HyperqueueSegment_Bulk64);

// ------------------------------------------------------------------- probes

/// Deterministic single-threaded probe: fill/drain rounds on one segment
/// must reload each remote index once per round, not once per element, and
/// deliver every value in order.
bool run_cached_index_probe() {
  const hq::detail::element_ops ops = hq::detail::make_element_ops<std::uint64_t>();
  hq::detail::data_path_counters counters;
  auto* seg = hq::detail::segment::create(256, &ops, &counters);
  const std::uint64_t rounds = 100, cap = 256;
  bool fifo_ok = true;
  std::uint64_t v = 0, expect = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t i = 0; i < cap; ++i) {
      if (!seg->try_push(&v)) fifo_ok = false;
      ++v;
    }
    for (std::uint64_t i = 0; i < cap; ++i) {
      std::uint64_t out = ~0ull;
      if (!seg->readable()) fifo_ok = false;
      seg->pop_into(&out);
      if (out != expect++) fifo_ok = false;
    }
  }
  const std::uint64_t head_reloads = counters.head_reloads.load();
  const std::uint64_t tail_reloads = counters.tail_reloads.load();
  const bool reloads_ok = head_reloads <= rounds + 2 && tail_reloads <= rounds + 2;
  if (!reloads_ok) {
    std::fprintf(stderr,
                 "FAIL: remote-index reloads not amortized (head %llu, tail "
                 "%llu over %llu rounds)\n",
                 static_cast<unsigned long long>(head_reloads),
                 static_cast<unsigned long long>(tail_reloads),
                 static_cast<unsigned long long>(rounds));
  }
  if (!fifo_ok) std::fprintf(stderr, "FAIL: single-threaded FIFO mismatch\n");
  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
  return fifo_ok && reloads_ok;
}

/// 2-thread FIFO torture of the padded segment (element path).
bool run_two_thread_probe(bool quick) {
  const std::uint64_t items = quick ? 200'000 : 2'000'000;
  const hq::detail::element_ops ops = hq::detail::make_element_ops<std::uint64_t>();
  auto* seg = hq::detail::segment::create(1024, &ops);
  std::thread producer([&] {
    hq::backoff bo;
    for (std::uint64_t i = 0; i < items;) {
      std::uint64_t val = i * 0x9e3779b97f4a7c15ull;
      if (seg->try_push(&val)) {
        ++i;
        bo.reset();
      } else {
        bo.pause();
      }
    }
  });
  std::uint64_t first_bad = items;
  hq::backoff bo;
  for (std::uint64_t i = 0; i < items;) {
    if (!seg->readable()) {
      bo.pause();
      continue;
    }
    bo.reset();
    std::uint64_t out = 0;
    seg->pop_into(&out);
    if (first_bad == items && out != i * 0x9e3779b97f4a7c15ull) first_bad = i;
    ++i;
  }
  producer.join();
  if (first_bad != items) {
    std::fprintf(stderr, "FAIL: 2-thread FIFO violation at item %llu\n",
                 static_cast<unsigned long long>(first_bad));
  }
  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
  return first_bad == items;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  const auto opt =
      hq::bench::parse_micro_args(argc, argv, "BENCH_spsc.json", args);
  benchmark::Initialize(&argc, args.data());
  hq::bench::collecting_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const bool cached_ok = run_cached_index_probe();
  const bool torture_ok = run_two_thread_probe(opt.quick);

  const bool all_ok = cached_ok && torture_ok && !reporter.rows.empty();
  const bool wrote = hq::bench::write_micro_json(
      opt, "micro_spsc", reporter.rows, all_ok, [&](FILE* f) {
        std::fprintf(f,
                     "  \"probe\": {\"cached_index_ok\": %s, "
                     "\"two_thread_fifo_ok\": %s},\n",
                     cached_ok ? "true" : "false", torture_ok ? "true" : "false");
      });
  return all_ok && wrote ? 0 : 1;
}
