// mbzip — a bzip2-like block compressor: BWT + MTF + zero-RLE + canonical
// Huffman per block. This is the compute kernel of the paper's bzip2
// pipeline (Section 6.3): block-independent compression (parallel middle
// stage) between a serial reader and a serial in-order writer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hq::util {

/// Compress one block (any size; typical 100-900 KiB).
std::vector<std::uint8_t> mbzip_compress_block(const std::uint8_t* data,
                                               std::size_t len);

/// Decompress one block produced by mbzip_compress_block.
std::vector<std::uint8_t> mbzip_decompress_block(const std::uint8_t* data,
                                                 std::size_t len);

/// Whole-buffer convenience (sequential over blocks); the parallel versions
/// live in apps/bzip2.
std::vector<std::uint8_t> mbzip_compress(const std::uint8_t* data, std::size_t len,
                                         std::size_t block_size);
std::vector<std::uint8_t> mbzip_decompress(const std::uint8_t* data, std::size_t len);

}  // namespace hq::util
