// Content-based image similarity search: the ferret pipeline over a
// synthetic image corpus, comparing the hyperqueue version with the serial
// baseline. Demonstrates scale-freedom: the same program runs unchanged at
// any worker count.
//
//   $ ./examples/image_search [workers] [images]
#include <cstdio>
#include <cstdlib>

#include "apps/ferret/ferret.hpp"

int main(int argc, char** argv) {
  hq::apps::ferret::config cfg;
  cfg.threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  cfg.num_images = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 128;

  auto serial = hq::apps::ferret::run_serial(cfg);
  auto parallel = hq::apps::ferret::run_hyperqueue(cfg);

  std::printf("ranked %zu query images against %zu database entries\n",
              cfg.num_images, cfg.db_entries);
  std::printf("serial     : %.3f s, checksum %016llx\n", serial.seconds,
              static_cast<unsigned long long>(serial.checksum));
  std::printf("hyperqueue : %.3f s (%u workers), checksum %016llx\n",
              parallel.seconds, cfg.threads,
              static_cast<unsigned long long>(parallel.checksum));
  const bool ok = serial.checksum == parallel.checksum;
  std::printf("determinism: results %s\n",
              ok ? "identical to serial elision" : "DIFFER (bug!)");
  return ok ? 0 : 1;
}
