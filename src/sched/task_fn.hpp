// Type-erased nullary closures with small-buffer optimization.
//
// basic_fn<N> is a move-only `void()` wrapper whose closure lives inline in
// the owning object up to N bytes (one heap allocation beyond that). Two
// instantiations serve the runtime:
//
//   task_fn — every spawned task's body (user function + bound arguments);
//             120 inline bytes cover typical pipelines' stage closures.
//   hook_fn — completion hooks (tracker deregistration, hyperqueue view
//             reduction, call/root signalling); every runtime hook captures
//             at most a pointer pair or a shared_ptr + pointer, so 24 inline
//             bytes make completion allocation-free.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hq {

template <std::size_t InlineBytes>
class basic_fn;

namespace detail {
/// Any basic_fn instantiation — the converting constructor must reject them
/// all, not just its own size, or a task_fn passed where a hook_fn is
/// expected would silently double-wrap through the heap path.
template <typename T>
struct is_basic_fn : std::false_type {};
template <std::size_t N>
struct is_basic_fn<basic_fn<N>> : std::true_type {};
}  // namespace detail

/// Move-only `void()` callable wrapper tuned for task frames.
template <std::size_t InlineBytes>
class basic_fn {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  basic_fn() = default;

  template <typename F,
            typename = std::enable_if_t<!detail::is_basic_fn<std::decay_t<F>>::value>>
  basic_fn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "task body must be callable as void()");
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  basic_fn(basic_fn&& other) noexcept { move_from(std::move(other)); }

  basic_fn& operator=(basic_fn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  basic_fn(const basic_fn&) = delete;
  basic_fn& operator=(const basic_fn&) = delete;

  ~basic_fn() { reset(); }

  /// Invoke the stored closure. Must not be empty.
  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct vtable {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
  };

  template <typename Fn>
  static constexpr vtable vtable_inline = {
      [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); },
      [](void* p) noexcept { std::launder(static_cast<Fn*>(p))->~Fn(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
  };

  template <typename Fn>
  static constexpr vtable vtable_heap = {
      [](void* p) { (**std::launder(static_cast<Fn**>(p)))(); },
      [](void* p) noexcept { delete *std::launder(static_cast<Fn**>(p)); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
  };

  void move_from(basic_fn&& other) noexcept {
    vt_ = other.vt_;
    if (vt_) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  const vtable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

using task_fn = basic_fn<120>;
using hook_fn = basic_fn<24>;

}  // namespace hq
