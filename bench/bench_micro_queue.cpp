// Hyperqueue microbenchmarks and design ablations:
//  * push/pop throughput vs segment length (Section 5.1 tuning),
//  * slice API vs element-wise push/pop (Section 5.2),
//  * producer -> consumer task handoff.
#include <benchmark/benchmark.h>

#include "hq.hpp"

namespace {

// Section 5.1: segment-length sweep. One pushpop task in ring steady state.
void BM_PushPop_SegmentLength(benchmark::State& state) {
  const auto seglen = static_cast<std::size_t>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    state.PauseTiming();
    long sum = 0;
    state.ResumeTiming();
    sched.run([&] {
      hq::hyperqueue<int> q(seglen);
      hq::spawn(
          [&sum](hq::pushpopdep<int> qq) {
            for (int i = 0; i < 20000; ++i) {
              qq.push(i);
              sum += qq.pop();
            }
          },
          (hq::pushpopdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PushPop_SegmentLength)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

// Section 5.2: slices amortize the per-element privilege lookup.
void BM_ElementWise(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 20000; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ElementWise);

void BM_Slices(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            int v = 0;
            while (v < 20000) {
              auto ws = qq.get_write_slice(256);
              for (std::size_t i = 0; i < ws.size(); ++i) ws.emplace(i, v++);
              ws.commit();
            }
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            for (;;) {
              auto rs = qq.get_read_slice(256);
              if (rs.empty()) break;
              for (int v : rs) sum += v;
              rs.release();
            }
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_Slices);

// Parallel producer tree: reduction (view merge) cost at varying leaf count.
void BM_ParallelProducers(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  hq::scheduler sched(2);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(256);
      for (int l = 0; l < leaves; ++l) {
        hq::spawn(
            [l](hq::pushdep<int> qq) {
              for (int i = 0; i < 1000; ++i) qq.push(l * 1000 + i);
            },
            (hq::pushdep<int>)q);
      }
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * leaves * 1000);
}
BENCHMARK(BM_ParallelProducers)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
