// The five dedup implementations. The output stream is byte-identical
// across all of them (first-occurrence-in-output-order carries the
// payload), so equality against the serial stream is the correctness test.
#include <algorithm>
#include <map>
#include <memory>
#include <thread>

#include "apps/dedup/dedup.hpp"
#include "hq.hpp"
#include "pipeline/pthread_pipeline.hpp"
#include "pipeline/tbb_pipeline.hpp"
#include "util/stats.hpp"

namespace hq::apps::dedup {

// ----------------------------------------------------------------- serial

result run_serial(const config& cfg, const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  result r;
  dedup_table table;
  auto coarse = k_fragment(cfg, input.data(), input.size());
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    auto chunks = k_refine(cfg, input.data(), coarse[i].first, coarse[i].second, i);
    for (auto& c : chunks) {
      k_dedup(&table, &c);
      if (c.owner) k_compress(&c);
      k_output(&r.output, &c);
      ++r.total_chunks;
    }
  }
  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

// --------------------------------------------------------------- pthreads

namespace {

/// Queue record for the pthreads version: either a fine chunk or the
/// per-coarse-chunk count that lets the reorder stage detect completeness
/// (PARSEC dedup uses the same two-level (L1, L2) sequence scheme).
struct pth_rec {
  bool is_count = false;
  std::uint64_t coarse_seq = 0;
  std::uint32_t count = 0;  // valid when is_count
  chunk_rec chunk;          // valid when !is_count
};

struct coarse_task {
  std::uint64_t seq;
  std::size_t off;
  std::size_t len;
};

}  // namespace

result run_pthreads(const config& cfg, const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  result r;
  dedup_table table;

  auto coarse = k_fragment(cfg, input.data(), input.size());
  const std::uint64_t total_coarse = coarse.size();

  bounded_queue<coarse_task> q_refine(32);
  bounded_queue<pth_rec> q_dedup(256);
  bounded_queue<chunk_rec> q_compress(256);
  bounded_queue<pth_rec> q_out(256);

  pth::stage_pool<coarse_task> refine(q_refine, cfg.threads, [&](coarse_task&& t) {
    auto chunks = k_refine(cfg, input.data(), t.off, t.len, t.seq);
    pth_rec count;
    count.is_count = true;
    count.coarse_seq = t.seq;
    count.count = static_cast<std::uint32_t>(chunks.size());
    for (auto& c : chunks) {
      pth_rec rec;
      rec.chunk = std::move(c);
      q_dedup.push(std::move(rec));
    }
    q_out.push(std::move(count));
  });

  pth::stage_pool<pth_rec> dedup_stage(q_dedup, cfg.threads, [&](pth_rec&& rec) {
    k_dedup(&table, &rec.chunk);
    if (rec.chunk.owner) {
      q_compress.push(std::move(rec.chunk));
    } else {
      q_out.push(std::move(rec));
    }
  });

  pth::stage_pool<chunk_rec> compress(q_compress, cfg.threads, [&](chunk_rec&& c) {
    k_compress(&c);
    pth_rec rec;
    rec.chunk = std::move(c);
    q_out.push(std::move(rec));
  });

  // Output/reorder: single thread, two-level (coarse, fine) ordering with
  // completeness detection via the count records.
  std::thread output([&] {
    std::map<std::pair<std::uint64_t, std::uint64_t>, chunk_rec> pending;
    std::map<std::uint64_t, std::uint32_t> counts;
    std::uint64_t next_c = 0, next_f = 0;
    while (next_c < total_coarse) {
      auto rec = q_out.pop();
      if (!rec) break;  // closed early (should not happen)
      if (rec->is_count) {
        counts[rec->coarse_seq] = rec->count;
      } else {
        pending.emplace(std::make_pair(rec->chunk.coarse_seq, rec->chunk.fine_seq),
                        std::move(rec->chunk));
      }
      for (;;) {
        auto cit = counts.find(next_c);
        if (cit != counts.end() && next_f == cit->second) {
          counts.erase(cit);
          ++next_c;
          next_f = 0;
          continue;
        }
        auto pit = pending.find({next_c, next_f});
        if (pit == pending.end()) break;
        k_output(&r.output, &pit->second);
        ++r.total_chunks;
        pending.erase(pit);
        ++next_f;
      }
    }
  });

  refine.start();
  dedup_stage.start();
  compress.start();

  // Fragment stage runs on the driver thread.
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    q_refine.push(coarse_task{i, coarse[i].first, coarse[i].second});
  }
  q_refine.close();
  refine.join();
  q_dedup.close();
  dedup_stage.join();
  q_compress.close();
  compress.join();
  output.join();
  q_out.close();

  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

// -------------------------------------------------------------------- tbb

result run_tbb(const config& cfg, const std::vector<std::uint8_t>& input) {
  // Nested-pipeline structure of Reed et al. (paper Figure 10a): the token
  // is a coarse chunk; all its fine chunks are gathered into a list before
  // the serial output stage may proceed — the wait-for-whole-list
  // limitation the hyperqueue removes.
  util::stopwatch sw;
  result r;
  dedup_table table;
  auto coarse = k_fragment(cfg, input.data(), input.size());
  std::size_t next = 0;

  struct token_data {
    std::uint64_t seq;
    std::size_t off, len;
    std::vector<chunk_rec> chunks;
  };

  tbbpipe::pipeline p;
  p.add_filter(tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
    if (next >= coarse.size()) return nullptr;
    auto* t = new token_data;
    t->seq = next;
    t->off = coarse[next].first;
    t->len = coarse[next].second;
    ++next;
    return t;
  });
  p.add_filter(tbbpipe::filter_mode::parallel, [&](void* v) -> void* {
    auto* t = static_cast<token_data*>(v);
    t->chunks = k_refine(cfg, input.data(), t->off, t->len, t->seq);
    return t;
  });
  p.add_filter(tbbpipe::filter_mode::parallel, [&](void* v) -> void* {
    auto* t = static_cast<token_data*>(v);
    for (auto& c : t->chunks) {
      k_dedup(&table, &c);
      if (c.owner) k_compress(&c);
    }
    return t;
  });
  p.add_filter(tbbpipe::filter_mode::serial_in_order, [&](void* v) -> void* {
    std::unique_ptr<token_data> t(static_cast<token_data*>(v));
    for (auto& c : t->chunks) {
      k_output(&r.output, &c);
      ++r.total_chunks;
    }
    return nullptr;
  });
  p.run(4 * cfg.threads, cfg.threads);

  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

// ---------------------------------------------------------------- objects

result run_objects(const config& cfg, const std::vector<std::uint8_t>& input) {
  // Task dataflow over per-coarse-chunk lists (the nested-pipeline shape of
  // Figure 10a): dataflow cannot express the variable-rate streaming, so
  // each coarse chunk's list is produced wholesale and output waits for the
  // entire list.
  util::stopwatch sw;
  result r;
  dedup_table table;
  scheduler sched(cfg.threads);
  sched.run([&] {
    auto coarse = k_fragment(cfg, input.data(), input.size());
    versioned<std::uint64_t> out_token(0);  // serializes output in spawn order
    for (std::size_t i = 0; i < coarse.size(); ++i) {
      versioned<std::vector<chunk_rec>> list;
      spawn(
          [&cfg, &input, i, off = coarse[i].first,
           len = coarse[i].second](outdep<std::vector<chunk_rec>> l) {
            *l = k_refine(cfg, input.data(), off, len, i);
          },
          (outdep<std::vector<chunk_rec>>)list);
      spawn(
          [&table](inoutdep<std::vector<chunk_rec>> l) {
            for (auto& c : *l) {
              k_dedup(&table, &c);
              if (c.owner) k_compress(&c);
            }
          },
          (inoutdep<std::vector<chunk_rec>>)list);
      spawn(
          [&r](inoutdep<std::vector<chunk_rec>> l, inoutdep<std::uint64_t>) {
            for (auto& c : *l) {
              k_output(&r.output, &c);
              ++r.total_chunks;
            }
          },
          (inoutdep<std::vector<chunk_rec>>)list,
          (inoutdep<std::uint64_t>)out_token);
    }
    sync();
  });
  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

// ------------------------------------------------------------- hyperqueue

namespace {

using coarse_list = std::vector<std::pair<std::size_t, std::size_t>>;

// ---- element-at-a-time stages (baseline for the slice bench).

void hq_refine_element(const config* cfg, const std::uint8_t* base,
                       const coarse_list* coarse, std::size_t lo,
                       std::size_t hi, pushdep<chunk_rec> out) {
  for (std::size_t i = lo; i < hi; ++i) {
    auto chunks =
        k_refine(*cfg, base, (*coarse)[i].first, (*coarse)[i].second, i);
    for (auto& c : chunks) out.push(std::move(c));
  }
}

void hq_dedup_compress_element(dedup_table* table, popdep<chunk_rec> in,
                               pushdep<chunk_rec> out) {
  // Unrestructured shape (like ferret's element dispatch): one
  // Deduplicate+Compress task per refine chunk, each attaching to the
  // shared write queue for its single record. Records still reach the
  // write queue in pop order because hyperqueue pushes are ordered by
  // spawn. The slice pipeline replaces this with one merged task whose
  // write-queue attachment is reused across the whole batch (the paper's
  // task coarsening) — per-refine-chunk attach churn is what it amortizes.
  while (!in.empty()) {
    chunk_rec c = in.pop();
    spawn(
        [table](chunk_rec work, pushdep<chunk_rec> o) {
          k_dedup(table, &work);
          if (work.owner) k_compress(&work);
          o.push(std::move(work));
        },
        std::move(c), out);
  }
}

void hq_output_element(result* r, popdep<chunk_rec> q) {
  while (!q.empty()) {
    chunk_rec c = q.pop();
    k_output(&r->output, &c);
    ++r->total_chunks;
  }
}

// ---- slice-based stages (Section 5.2, the default).

void hq_refine(const config* cfg, const std::uint8_t* base,
               const coarse_list* coarse, std::size_t lo, std::size_t hi,
               pushdep<chunk_rec> out) {
  for (std::size_t i = lo; i < hi; ++i) {
    auto chunks =
        k_refine(*cfg, base, (*coarse)[i].first, (*coarse)[i].second, i);
    push_slices(out, chunks.begin(), chunks.end(), cfg->slice_batch);
  }
}

void hq_dedup_compress(const config* cfg, dedup_table* table,
                       popdep<chunk_rec> in, pushdep<chunk_rec> out) {
  // Process each read slice in place (the consumer owns the elements until
  // release), then move the batch onto the shared write queue through write
  // slices — record order is preserved end to end.
  for (;;) {
    auto rs = in.get_read_slice(cfg->slice_batch);
    if (rs.empty()) break;
    for (auto& c : rs) {
      k_dedup(table, &c);
      if (c.owner) k_compress(&c);
    }
    push_slices(out, rs.begin(), rs.end(), rs.size());
    rs.release();
  }
}

void hq_output(const config* cfg, result* r, popdep<chunk_rec> q) {
  for (;;) {
    auto rs = q.get_read_slice(cfg->slice_batch);
    if (rs.empty()) break;
    for (auto& c : rs) {
      k_output(&r->output, &c);
      ++r->total_chunks;
    }
    rs.release();
  }
}

template <typename RefineFn, typename DedupFn>
void hq_fragment_generic(const config* cfg,
                         const std::vector<std::uint8_t>* input,
                         dedup_table* table, pushdep<chunk_rec> write_queue,
                         RefineFn refine, DedupFn dedup) {
  // Figure 10(c): nested pipelines (local queue + two tasks) pushing to the
  // shared write queue in program order. Each pipeline serves a batch of
  // cfg->coarse_batch consecutive coarse chunks, so one queue construction
  // and one refine/dedup attachment pair amortize over the whole batch's
  // record stream (per-coarse-chunk pipelines drowned the Section 5.2 slice
  // savings in setup churn). The write-queue order is unchanged: dedup
  // tasks are spawned in batch order and each streams its batch's records
  // in (coarse, fine) order. The local queues are owned by this task; they
  // are destroyed after the sync (the paper's sketch leaks them — see
  // DESIGN.md).
  auto coarse = k_fragment(*cfg, input->data(), input->size());
  const std::size_t batch = cfg->coarse_batch > 0 ? cfg->coarse_batch : 1;
  const std::size_t pipelines = (coarse.size() + batch - 1) / batch;
  std::vector<std::unique_ptr<hyperqueue<chunk_rec>>> locals;
  locals.reserve(pipelines);
  for (std::size_t b = 0; b < pipelines; ++b) {
    const std::size_t lo = b * batch;
    const std::size_t hi = std::min(coarse.size(), lo + batch);
    locals.push_back(std::make_unique<hyperqueue<chunk_rec>>(64));
    hyperqueue<chunk_rec>& q = *locals.back();
    refine(cfg, input, &coarse, lo, hi, q);
    dedup(cfg, table, q, write_queue);
  }
  sync();
  locals.clear();
}

void hq_fragment(const config* cfg, const std::vector<std::uint8_t>* input,
                 dedup_table* table, pushdep<chunk_rec> write_queue) {
  hq_fragment_generic(
      cfg, input, table, write_queue,
      [](const config* c, const std::vector<std::uint8_t>* in,
         const coarse_list* coarse, std::size_t lo, std::size_t hi,
         hyperqueue<chunk_rec>& q) {
        spawn(hq_refine, c, in->data(), coarse, lo, hi, (pushdep<chunk_rec>)q);
      },
      [](const config* c, dedup_table* t, hyperqueue<chunk_rec>& q,
         pushdep<chunk_rec> wq) {
        spawn(hq_dedup_compress, c, t, (popdep<chunk_rec>)q, wq);
      });
}

void hq_fragment_element(const config* cfg,
                         const std::vector<std::uint8_t>* input,
                         dedup_table* table, pushdep<chunk_rec> write_queue) {
  hq_fragment_generic(
      cfg, input, table, write_queue,
      [](const config* c, const std::vector<std::uint8_t>* in,
         const coarse_list* coarse, std::size_t lo, std::size_t hi,
         hyperqueue<chunk_rec>& q) {
        spawn(hq_refine_element, c, in->data(), coarse, lo, hi,
              (pushdep<chunk_rec>)q);
      },
      [](const config* c, dedup_table* t, hyperqueue<chunk_rec>& q,
         pushdep<chunk_rec> wq) {
        (void)c;
        spawn(hq_dedup_compress_element, t, (popdep<chunk_rec>)q, wq);
      });
}

void record_pool(result* r, const hyperqueue<chunk_rec>& q) {
  const auto st = q.pool_stats();
  r->seg_allocated = st.allocated;
  r->seg_recycled = st.recycled;
  r->seg_high_water = st.high_water;
}

}  // namespace

result run_hyperqueue(const config& cfg, const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  result r;
  dedup_table table;
  scheduler sched(cfg.threads);
  sched.run([&] {
    hyperqueue<chunk_rec> write_queue(256);
    spawn(hq_fragment, &cfg, &input, &table, (pushdep<chunk_rec>)write_queue);
    spawn(hq_output, &cfg, &r, (popdep<chunk_rec>)write_queue);
    sync();
    record_pool(&r, write_queue);
  });
  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

result run_hyperqueue_element(const config& cfg,
                              const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  result r;
  dedup_table table;
  scheduler sched(cfg.threads);
  sched.run([&] {
    hyperqueue<chunk_rec> write_queue(256);
    spawn(hq_fragment_element, &cfg, &input, &table,
          (pushdep<chunk_rec>)write_queue);
    spawn(hq_output_element, &r, (popdep<chunk_rec>)write_queue);
    sync();
    record_pool(&r, write_queue);
  });
  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

}  // namespace hq::apps::dedup
