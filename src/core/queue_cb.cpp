#include "core/queue_cb.hpp"

#include <bit>

#include "conc/backoff.hpp"
#include "sched/scheduler.hpp"

namespace hq::detail {

namespace {

/// One step of a blocking wait: run a ready task if possible, else back off.
/// Keeping the worker executing tasks while "blocked" is what makes the
/// paper's block-the-worker policy live-lock free even on one worker.
void wait_step(backoff& bo) {
  scheduler* s = scheduler::current();
  if (s != nullptr && s->help_one()) {
    bo.reset();
  } else {
    bo.pause();
  }
}

/// Attachments recycle through the calling scheduler's per-worker attach
/// pool (sched/obj_pool.hpp); both calls always run on a worker of the
/// scheduler that owns the enclosing task (spawn-argument resolution and
/// completion hooks execute there), so alloc and free hit the same pool.
qattach* alloc_qattach() {
  if (scheduler* s = scheduler::current()) {
    unsigned owner = kPoolExternal;
    void* mem = s->alloc_attach_block(&owner);
    auto* a = ::new (mem) qattach();
    a->pool_sched = s;
    a->pool_owner = owner;
    return a;
  }
  return new qattach();
}

void free_qattach(qattach* a) {
  scheduler* s = a->pool_sched;
  if (s == nullptr) {
    delete a;
    return;
  }
  const unsigned owner = a->pool_owner;
  a->~qattach();
  s->free_attach_block(a, owner);
}

}  // namespace

queue_cb::queue_cb(element_ops o, std::uint64_t segment_capacity)
    : ops(o),
      seg_capacity(std::bit_ceil(segment_capacity < 2 ? std::uint64_t{2}
                                                      : segment_capacity)) {}

queue_cb::~queue_cb() {
  assert(owner == nullptr && "queue control block released before detach_owner");
  // Drain the one-slot cache and the segment free list.
  if (segment* s = seg_cache_.exchange(nullptr, std::memory_order_relaxed)) {
    segment::destroy(s);
    seg_live.fetch_sub(1, std::memory_order_relaxed);
  }
  while (free_list != nullptr) {
    segment* s = free_list;
    free_list = s->next.load(std::memory_order_relaxed);
    s->reset();
    segment::destroy(s);
    seg_live.fetch_sub(1, std::memory_order_relaxed);
  }
  assert(seg_live.load(std::memory_order_relaxed) == 0 &&
         "segment leak: some segment was never linked into the queue chain");
}

void queue_cb::release() noexcept {
  if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
}

segment* queue_cb::alloc_segment() {
  const std::uint64_t in_use = seg_in_use.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = seg_high_water.load(std::memory_order_relaxed);
  while (in_use > hw &&
         !seg_high_water.compare_exchange_weak(hw, in_use,
                                               std::memory_order_relaxed)) {
  }
  // Lock-free front of the pool: the steady-state ring recycle (consumer
  // recycles the drained segment, producer allocates the next wrap) is
  // served entirely by this one-slot cache. The acquire pairs with the
  // release in recycle_segment so the reset() state is visible.
  if (segment* s = seg_cache_.exchange(nullptr, std::memory_order_acquire)) {
    seg_recycled.fetch_add(1, std::memory_order_relaxed);
    dp_.seg_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  {
    std::lock_guard<spinlock> lk(free_mu);
    if (free_list != nullptr) {
      segment* s = free_list;
      free_list = s->next.load(std::memory_order_relaxed);
      s->next.store(nullptr, std::memory_order_relaxed);
      seg_recycled.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
  }
  seg_live.fetch_add(1, std::memory_order_relaxed);
  seg_fresh.fetch_add(1, std::memory_order_relaxed);
  return segment::create(seg_capacity, &ops, &dp_);
}

void queue_cb::recycle_segment(segment* s) {
  s->reset();
  seg_in_use.fetch_sub(1, std::memory_order_relaxed);
  segment* expected = nullptr;
  if (seg_cache_.compare_exchange_strong(expected, s, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<spinlock> lk(free_mu);
  s->next.store(free_list, std::memory_order_relaxed);
  free_list = s;
}

qattach* queue_cb::my_attachment([[maybe_unused]] std::uint8_t need) {
  task_frame* fr = current_frame();
  assert(fr != nullptr && "hyperqueue operations are only valid inside a task");
  for (qattach* a : fr->attachments) {
    if (a->q == this) {
      assert((a->priv & need) == need && "task lacks the required queue privilege");
      return a;
    }
  }
  assert(!"task has no privileges on this hyperqueue");
  return nullptr;
}

void queue_cb::attach_owner(task_frame* owner_frame) {
  assert(owner_frame != nullptr &&
         "construct hyperqueues inside a task (e.g. the scheduler::run root)");
  // Allocate outside mu; only the view/attachment structure needs the lock.
  qattach* a = alloc_qattach();
  a->q = this;
  a->frame = owner_frame;
  a->priv = kPrivPush | kPrivPop;
  segment* s0 = alloc_segment();
  std::lock_guard<std::mutex> lk(mu);
  assert(owner == nullptr);
  // Invariant 1: a hyperqueue always holds at least one segment. The initial
  // split hands the head to the owner's queue view and the tail to its user
  // view (Section 4.1).
  auto [head_v, tail_v] = split(view::local(s0), next_nl_id++);
  a->queue = head_v;
  a->user = tail_v;
  owner = a;
  owner_frame->attachments.push_back(a);
}

void queue_cb::detach_owner() {
  qattach* a = owner;
  assert(a != nullptr);
  assert(current_frame() == a->frame &&
         "hyperqueue must be destroyed by the task that created it");
  // Wait for every task spawned on this queue (children complete bottom-up,
  // so direct children suffice), helping the scheduler meanwhile.
  backoff bo;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (a->live_children == 0) break;
    }
    wait_step(bo);
  }
  // Single-threaded teardown. After all tasks completed, the reduction
  // cascade has linked every segment into the chain reachable from the
  // queue view head (invariants 4/5); destroy leftover values and free.
  assert(a->queue.present && a->queue.head_local());
  segment* s = a->queue.head;
  while (s != nullptr) {
    segment* n = s->next.load(std::memory_order_relaxed);
    s->destroy_remaining();
    s->next.store(nullptr, std::memory_order_relaxed);
    segment::destroy(s);
    seg_live.fetch_sub(1, std::memory_order_relaxed);
    s = n;
  }
  a->frame->attachments.erase_value(a);
  {
    std::lock_guard<std::mutex> lk(mu);
    owner = nullptr;
  }
  free_qattach(a);
}

qattach* queue_cb::attach_spawn(task_frame* child, std::uint8_t priv) {
  assert(priv != 0);
  // Allocation, privilege lookup, refcounting and hook registration all
  // happen outside mu: the spawning task's own attachment list is stable
  // (only its thread appends), and the child is not yet visible to anyone.
  // Only the shared view/sibling structure below needs the lock.
  qattach* pa = my_attachment(priv);  // asserts the subset-privilege rule
  qattach* ca = alloc_qattach();
  ca->q = this;
  ca->frame = child;
  ca->parent = pa;
  ca->priv = priv;

  {
    std::lock_guard<std::mutex> lk(mu);

    // Live sibling chain: program order left-to-right, youngest at
    // last_child.
    ca->left = pa->last_child;
    if (ca->left != nullptr) ca->left->right_sib = ca;
    pa->last_child = ca;
    pa->live_children += 1;

    // View transfer at spawn (Section 4.2): push, pop and pushpop spawns all
    // take the parent's user view (for pop it hides the pending values from
    // subsequent push tasks).
    ca->user = pa->user.take();

    if ((priv & kPrivPop) != 0) {
      // The queue view follows the consumer in pop FIFO order. Take it from
      // the parent only when no older pop sibling is live: if one is, the
      // view either sits with that sibling or is parked here in transit to
      // it (a completed sibling hands it back to the parent, and the FIFO
      // successor claims it lazily — see ensure_queue_view). Grabbing it for
      // this younger child would strand the older sibling waiting for a view
      // held by a task that cannot run before it: deadlock.
      if (pa->live_pop_children.load(std::memory_order_relaxed) == 0) {
        ca->queue = pa->queue.take();
      }
      // Scheduling rule 3: pop-privileged tasks of one parent run FIFO.
      if (pa->last_pop_child != nullptr) {
        task_frame::depend(child, pa->last_pop_child->frame);
      }
      pa->last_pop_child = ca;
      pa->live_pop_children.fetch_add(1, std::memory_order_relaxed);
    }

    if ((priv & kPrivPush) != 0) {
      // Live-producer accounting for the definitive-empty test; the
      // increment walks to the owner like the paper's O(depth) early
      // reduction. The queue-level count is the lock-free upper bound.
      for (qattach* p = ca; p != nullptr; p = p->parent) p->subtree_pushers += 1;
      pa->live_push_children.fetch_add(1, std::memory_order_relaxed);
      live_pushers_.fetch_add(1, std::memory_order_relaxed);
      // The new child is older in program order than every subsequent pop of
      // the spawning task: its definitive-empty memo is stale. (Only the
      // spawner can be affected — any other attachment with the memo set has
      // no live older pusher, and this spawner is not older than it, or it
      // would have been counted.) attach_spawn runs on the spawning task's
      // own thread, so these consumer-local fields are safe to write here.
      pa->no_older_pushers = false;
      pa->walk_epoch = qattach::kNeverWalked;
    }
  }

  child->attachments.push_back(ca);
  add_ref();
  child->completion_hooks.push_back(hook_fn([this, ca] {
    on_task_complete(ca);
    release();
  }));
  return ca;
}

void queue_cb::on_task_complete(qattach* a) {
  std::unique_lock<std::mutex> lk(mu);

  // "Return from spawn" (Section 4.2): the user view can no longer grow.
  // Fold this task's views in program order — children ∘ user ∘ right (the
  // implicit sync already completed all children, so the children view is
  // final) — and cascade the result to the nearest live left sibling, or to
  // the parent's children view.
  assert(a->last_child == nullptr && a->live_children == 0 &&
         "children must complete before their parent (implicit sync)");
  reduce_into(a->user, a->right_view.take());
  reduce_into(a->children, a->user.take());
  if (a->left != nullptr) {
    reduce_into(a->left->right_view, a->children.take());
  } else {
    assert(a->parent != nullptr);
    reduce_into(a->parent->children, a->children.take());
  }

  // Pop privileges: return the (head-only) queue view to the parent.
  if (!a->queue.empty()) {
    assert(a->parent != nullptr);
    assert(a->parent->queue.empty() && "two live queue views (invariant 2)");
    a->parent->queue = a->queue.take();
  }

  if ((a->priv & kPrivPush) != 0) {
    for (qattach* p = a; p != nullptr; p = p->parent) {
      p->subtree_pushers -= 1;
      assert(p->subtree_pushers >= 0);
    }
    // Bump the completion epoch, then drop the live-pusher upper bound. Both
    // are release stores sequenced after the reductions above, so a consumer
    // that observes either with acquire also observes the new segment links
    // without taking mu (the lock-free definitive-empty gate in wait_data).
    pusher_completions_.fetch_add(1, std::memory_order_release);
    live_pushers_.fetch_sub(1, std::memory_order_release);
  }

  // Unlink from the live sibling chain.
  if (a->left != nullptr) a->left->right_sib = a->right_sib;
  if (a->right_sib != nullptr) a->right_sib->left = a->left;
  qattach* pa = a->parent;
  assert(pa != nullptr);
  if (pa->last_child == a) pa->last_child = a->left;
  if (pa->last_pop_child == a) pa->last_pop_child = nullptr;
  pa->live_children -= 1;
  if ((a->priv & kPrivPush) != 0)
    pa->live_push_children.fetch_sub(1, std::memory_order_relaxed);
  // Release: pairs with the acquire load on the parent's consumer fast path
  // (ensure_queue_view); the queue-view hand-back above must be visible to a
  // parent that observes the decremented count without taking mu.
  if ((a->priv & kPrivPop) != 0)
    pa->live_pop_children.fetch_sub(1, std::memory_order_release);

  assert(a->user.empty() && a->right_view.empty() && a->children.empty() &&
         a->queue.empty());
  a->frame = nullptr;
  lk.unlock();
  // Recycle outside the lock: the attachment is unlinked, nobody can reach
  // it anymore.
  free_qattach(a);
}

void queue_cb::merge_left_early(qattach* a, view tmp) {
  // The view immediately preceding a's user view in program order (see the
  // total order of Section 4.4): the youngest live child's right view, then
  // a's own children view, then recursively the nearest live left sibling /
  // ancestor children views, ending at the owner.
  if (a->last_child != nullptr) {
    reduce_into(a->last_child->right_view, std::move(tmp));
    return;
  }
  if (!a->children.empty()) {
    reduce_into(a->children, std::move(tmp));
    return;
  }
  qattach* cur = a;
  for (;;) {
    if (cur->left != nullptr) {
      reduce_into(cur->left->right_view, std::move(tmp));
      return;
    }
    qattach* p = cur->parent;
    if (p == nullptr) {
      // Owner level: deposit into the children view even when empty.
      reduce_into(cur->children, std::move(tmp));
      return;
    }
    if (!p->children.empty()) {
      reduce_into(p->children, std::move(tmp));
      return;
    }
    cur = p;
  }
}

long queue_cb::older_pushers(const qattach* a) const {
  long total = a->subtree_pushers;
  // a's own (synchronous) pushes do not count; its spawn-time increment is
  // removed. The owner attachment was never spawned, hence never counted.
  if ((a->priv & kPrivPush) != 0 && a->parent != nullptr) total -= 1;
  for (const qattach* cur = a; cur != nullptr; cur = cur->parent) {
    for (const qattach* sib = cur->left; sib != nullptr; sib = sib->left) {
      total += sib->subtree_pushers;
    }
  }
  assert(total >= 0);
  return total;
}

// ---------------------------------------------------------------- producer

void queue_cb::push(void* src) {
  qattach* a = my_attachment(kPrivPush);
  if (!a->user.empty()) {
    assert(a->user.tail_local() && "user views hold local tails while live");
    segment* s = a->user.tail;
    if (s->try_push(src)) return;
    // Segment full: chain a fresh one. We own s's tail (invariant 5), so the
    // link needs no lock.
    segment* ns = alloc_segment();
    bool ok = ns->try_push(src);
    assert(ok);
    (void)ok;
    s->next.store(ns, std::memory_order_release);
    a->user.tail = ns;
    return;
  }
  // Empty user view: create a segment and make its head discoverable at the
  // immediately preceding view now (early reduction, Section 4.1), so a
  // concurrent consumer can reach the data as soon as older tasks complete.
  segment* ns = alloc_segment();
  bool ok = ns->try_push(src);
  assert(ok);
  (void)ok;
  std::lock_guard<std::mutex> lk(mu);
  dp_.mu_view.fetch_add(1, std::memory_order_relaxed);
  auto [head_v, tail_v] = split(view::local(ns), next_nl_id++);
  merge_left_early(a, head_v);
  a->user = tail_v;
}

void* queue_cb::write_slice(std::uint64_t want, std::uint64_t* count) {
  qattach* a = my_attachment(kPrivPush);
  if (want < 1) want = 1;
  if (want > seg_capacity) want = seg_capacity;
  if (!a->user.empty()) {
    assert(a->user.tail_local() && "user views hold local tails while live");
    segment* s = a->user.tail;
    // Grant the contiguous run even when shorter than `want`. Slices are
    // allowed to come back short (Section 5.2), and abandoning the segment
    // here would permanently strand its wrapped free space: a producer /
    // consumer pair that stays in step must ring-recycle one segment, not
    // leak a fresh one per wrap.
    if (void* p = s->acquire_write(want, count)) return p;
    // Segment truly full: chain a fresh one.
    segment* ns = alloc_segment();
    s->next.store(ns, std::memory_order_release);
    a->user.tail = ns;
    return ns->acquire_write(want, count);
  }
  segment* ns = alloc_segment();
  {
    std::lock_guard<std::mutex> lk(mu);
    dp_.mu_view.fetch_add(1, std::memory_order_relaxed);
    auto [head_v, tail_v] = split(view::local(ns), next_nl_id++);
    merge_left_early(a, head_v);
    a->user = tail_v;
  }
  return ns->acquire_write(want, count);
}

void queue_cb::commit_write(std::uint64_t produced) {
  qattach* a = my_attachment(kPrivPush);
  assert(!a->user.empty() && a->user.tail_local());
  a->user.tail->publish_write(produced);
}

// ---------------------------------------------------------------- consumer

void queue_cb::ensure_queue_view(qattach* a) {
  assert((a->priv & kPrivPop) != 0);
  // Lock-free fast path: no live pop children (acquire — see qattach) and
  // the queue view already in hand. This is the Section 5.2 "as fast as
  // array accesses" precondition: a consumer streaming through ready data
  // never touches mu.
  if (a->live_pop_children.load(std::memory_order_acquire) == 0 &&
      a->queue.present) {
    return;
  }
  backoff bo;
  for (;;) {
    // Program order: our own pops resume only after our pop children are
    // done (they are earlier in the serial elision). While any is live the
    // view cannot be ours, so do not touch mu; the acquire pairs with the
    // completion-time release so the hand-back below is visible.
    if (a->live_pop_children.load(std::memory_order_acquire) == 0) {
      if (a->queue.present) return;
      std::lock_guard<std::mutex> lk(mu);
      dp_.mu_data.fetch_add(1, std::memory_order_relaxed);
      if (a->queue.present) return;
      // Claim the queue view from an ancestor: after the previous consumer
      // completed, the view travels back up the spawn tree.
      for (qattach* anc = a->parent; anc != nullptr; anc = anc->parent) {
        if (anc->queue.present) {
          a->queue = anc->queue.take();
          return;
        }
      }
    }
    wait_step(bo);
  }
}

segment* queue_cb::poll_chain(qattach* a) {
  assert(a->queue.present && a->queue.head_local());
  for (;;) {
    segment* s = a->queue.head;
    if (s->readable()) return s;
    segment* n = s->next.load(std::memory_order_acquire);
    if (n == nullptr) return nullptr;
    if (s->readable()) return s;  // values committed before the link
    // Drained interior segment: with next set, no producer holds its tail
    // (invariant 5), so the consumer may recycle it.
    a->queue.head = n;
    recycle_segment(s);
  }
}

segment* queue_cb::wait_data(qattach* a) {
  ensure_queue_view(a);
  backoff bo;
  for (;;) {
    if (segment* s = poll_chain(a)) {
      a->ready_seg = s;
      return s;
    }
    if (a->no_older_pushers) {
      // The gate below only fires after completion cascades are visible, so
      // the failed poll above was already conclusive.
      a->ready_seg = nullptr;
      return nullptr;
    }
    if (live_pushers_.load(std::memory_order_acquire) == 0) {
      // The queue-wide upper bound hit zero: no older pusher is live and
      // none can appear (any spawner of a push child is itself counted).
      // The acquire pairs with the post-cascade release decrement, so the
      // re-poll next iteration sees every link — no mu needed.
      a->no_older_pushers = true;
      continue;
    }
    const std::uint64_t epoch = pusher_completions_.load(std::memory_order_acquire);
    if (epoch != a->walk_epoch) {
      // Pushers are live, and one completed since we last looked: only now
      // can the exact answer have changed, so only now take mu and walk.
      // A consumer merely outrunning a live producer settles into lock-free
      // polling after a single walk.
      bool none;
      {
        std::lock_guard<std::mutex> lk(mu);
        dp_.mu_data.fetch_add(1, std::memory_order_relaxed);
        none = older_pushers(a) == 0;
      }
      if (none) {
        a->no_older_pushers = true;
        continue;
      }
      a->walk_epoch = epoch;
    }
    wait_step(bo);
  }
}

bool queue_cb::empty() {
  return consumer_ready(my_attachment(kPrivPop)) == nullptr;
}

void queue_cb::pop(void* dst) {
  qattach* a = my_attachment(kPrivPop);
  segment* s = consumer_ready(a);
  assert(s != nullptr && "pop() on a definitively empty hyperqueue");
  s->pop_into(dst);
}

std::uint64_t queue_cb::pop_n(void* dst, std::uint64_t max) {
  if (max == 0) return 0;
  qattach* a = my_attachment(kPrivPop);
  segment* s = consumer_ready(a);
  if (s == nullptr) return 0;
  const std::uint64_t n = s->pop_n_into(dst, max);
  assert(n > 0);
  return n;
}

void* queue_cb::read_slice(std::uint64_t want, std::uint64_t* count) {
  qattach* a = my_attachment(kPrivPop);
  if (want < 1) want = 1;
  segment* s = consumer_ready(a);
  if (s == nullptr) {
    *count = 0;
    return nullptr;
  }
  return s->acquire_read(want, count);
}

void queue_cb::commit_read(std::uint64_t consumed) {
  qattach* a = my_attachment(kPrivPop);
  assert(a->queue.present && a->queue.head_local());
  a->queue.head->retire_read(consumed);
}

// ----------------------------------------------------------- selective sync

void queue_cb::sync_children(std::uint8_t priv_filter) {
  qattach* a = my_attachment(0);
  backoff bo;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu);
      long pending = 0;
      if (priv_filter == 0) {
        pending = a->live_children;
      } else if ((priv_filter & kPrivPop) != 0) {
        pending = a->live_pop_children.load(std::memory_order_relaxed);
      } else {
        pending = a->live_push_children.load(std::memory_order_relaxed);
      }
      if (pending == 0) return;
    }
    wait_step(bo);
  }
}

}  // namespace hq::detail
