// Slice fast-path tests (paper Section 5.2): wrap-around write slices,
// partial commits, prefix releases, slices interleaved with element ops,
// cross-segment reads, segment-pool statistics, and a two-thread torture
// loop. These are the paths the apps' batched pipelines lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "hq.hpp"

namespace {

// ------------------------------------------------------------ wrap-around

TEST(Slices, WriteSliceWrapAroundReusesSegment) {
  // A producer/consumer pair that stays in step must ring-recycle ONE
  // segment: when the contiguous run to the wrap point is shorter than the
  // request, the slice comes back short instead of abandoning the segment's
  // wrapped free space.
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(8);  // exact power of two: wrap at index 8
    ASSERT_EQ(q.pool_stats().allocated, 1u);  // the initial segment
    int v = 0;
    // Park head/tail at 6: 2 contiguous slots remain before the wrap.
    for (; v < 6; ++v) q.push(v);
    for (int i = 0; i < 6; ++i) ASSERT_EQ(q.pop(), i);
    {
      auto ws = q.get_write_slice(8);
      ASSERT_EQ(ws.size(), 2u) << "grant must stop at the wrap point";
      ws.emplace(0, v);
      ws.emplace(1, v + 1);
      ws.commit();
      v += 2;
    }
    {
      // Tail wrapped to a multiple of the capacity: the whole (empty except
      // for the 2 pending values) ring minus the pending values is free, and
      // 6 of those slots are contiguous from index 0.
      auto ws = q.get_write_slice(8);
      ASSERT_EQ(ws.size(), 6u);
      for (std::size_t i = 0; i < 6; ++i) ws.emplace(i, v++);
      ws.commit();
    }
    for (int i = 6; i < 14; ++i) ASSERT_EQ(q.pop(), i);
    EXPECT_TRUE(q.empty());
    const auto st = q.pool_stats();
    EXPECT_EQ(st.allocated, 1u)
        << "an in-step slice pair must never allocate past the first segment";
    EXPECT_EQ(st.high_water, 1u);
  });
}

TEST(Slices, LongStreamThroughOneSegmentAllocatesNothing) {
  // Stream 10k values through an 8-slot queue with in-step slice producer
  // and consumer turns: steady state is literally zero allocation.
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(8);
    int pushed = 0, popped = 0;
    const int total = 10000;
    while (popped < total) {
      if (pushed < total) {
        auto ws = q.get_write_slice(
            std::min<std::size_t>(5, static_cast<std::size_t>(total - pushed)));
        const std::size_t n = ws.size();
        for (std::size_t i = 0; i < n; ++i) {
          ws.emplace(i, pushed++);
        }
        ws.commit();
      }
      auto rs = q.get_read_slice(7);
      for (const int& x : rs) ASSERT_EQ(x, popped++);
      rs.release();
    }
    const auto st = q.pool_stats();
    EXPECT_EQ(st.allocated, 1u);
    EXPECT_EQ(st.high_water, 1u);
  });
}

TEST(Slices, CacheHitRecyclesKeepPoolStatsExact) {
  // An in-step producer/consumer whose burst spans two segments recycles
  // through the one-slot lock-free seg cache: each round chains exactly one
  // extra segment and drains it again, so the cache slot is always empty
  // when the recycle arrives and every wrap's alloc is served from it. The
  // cache fast path must not bypass the pool bookkeeping: high_water still
  // reflects the true peak (2, not 1), fresh allocations stop once the ring
  // is primed, and every recycle is visible as a cache hit.
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(8);
    int v = 0;
    for (int round = 0; round < 200; ++round) {
      for (int i = 0; i < 16; ++i) q.push(v + i);
      for (int i = 0; i < 16; ++i) ASSERT_EQ(q.pop(), v + i);
      v += 16;
    }
    const auto ps = q.pool_stats();
    const auto ds = q.data_stats();
    EXPECT_GT(ps.recycled, 100u) << "the ring must actually wrap";
    EXPECT_EQ(ds.seg_cache_hits, ps.recycled)
        << "every in-step recycle flows through the lock-free cache slot";
    EXPECT_EQ(ps.allocated, 2u)
        << "one initial segment plus one priming alloc at the first wrap";
    EXPECT_EQ(ps.allocated, ps.high_water)
        << "cache-served allocs must still raise/track the high-water mark";
  });
}

// ---------------------------------------------------------- partial commit

struct counted {
  int v = 0;
  static std::atomic<int> live;
  counted() noexcept { live.fetch_add(1, std::memory_order_relaxed); }
  explicit counted(int x) noexcept : v(x) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  counted(counted&& o) noexcept : v(o.v) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  counted& operator=(counted&& o) noexcept {
    v = o.v;
    return *this;
  }
  ~counted() { live.fetch_sub(1, std::memory_order_relaxed); }
};
std::atomic<int> counted::live{0};

TEST(Slices, PartialCommitPublishesPrefixAndDestroysTail) {
  counted::live.store(0);
  hq::scheduler sched(2);
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<counted> q(32);
    hq::spawn(
        [](hq::pushdep<counted> p) {
          auto ws = p.get_write_slice(10);
          ASSERT_EQ(ws.size(), 10u);
          for (std::size_t i = 0; i < 10; ++i) {
            ws.emplace(i, static_cast<int>(i));
          }
          ASSERT_EQ(ws.filled(), 10u);
          const int before = counted::live.load();
          ws.commit(6);  // publish 0..5, destroy 6..9
          EXPECT_EQ(counted::live.load(), before - 4)
              << "partial commit must destroy the uncommitted tail";
          // The slice is spent; keep producing through a fresh one.
          auto ws2 = p.get_write_slice(3);
          const std::size_t n = ws2.size();
          for (std::size_t i = 0; i < n; ++i) {
            ws2.emplace(i, 100 + static_cast<int>(i));
          }
          ws2.commit();  // full commit unchanged
        },
        (hq::pushdep<counted>)q);
    hq::spawn(
        [&got](hq::popdep<counted> p) {
          while (!p.empty()) got.push_back(p.pop().v);
        },
        (hq::popdep<counted>)q);
    hq::sync();
  });
  std::vector<int> expect = {0, 1, 2, 3, 4, 5};
  for (int i = 0; i < 3; ++i) expect.push_back(100 + i);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(counted::live.load(), 0) << "every element must be destroyed";
}

TEST(Slices, CommitZeroPublishesNothing) {
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<counted> q(16);
    {
      auto ws = q.get_write_slice(4);
      ws.emplace(0, 7);
      ws.emplace(1, 8);
      ws.commit(0);  // abandon everything constructed
    }
    q.push(counted(42));
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.pop().v, 42);
    EXPECT_TRUE(q.empty());
  });
  EXPECT_EQ(counted::live.load(), 0);
}

// ---------------------------------------------------------- prefix release

TEST(Slices, PrefixReleaseKeepsSuffixValid) {
  hq::scheduler sched(2);
  sched.run([&] {
    hq::hyperqueue<int> q(64);
    hq::spawn(
        [](hq::pushdep<int> p) {
          for (int i = 0; i < 40; ++i) p.push(i);
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [](hq::popdep<int> p) {
          int expect = 0;
          while (expect < 40) {
            auto rs = p.get_read_slice(16);
            ASSERT_FALSE(rs.empty());
            // Consume in two gulps: a prefix, then the shrunken remainder.
            const std::size_t first = rs.size() / 2;
            for (std::size_t i = 0; i < first; ++i) ASSERT_EQ(rs[i], expect++);
            rs.release(first);
            for (const int& v : rs) ASSERT_EQ(v, expect++);
            rs.release();
          }
          EXPECT_TRUE(p.empty());
        },
        (hq::popdep<int>)q);
    hq::sync();
  });
}

TEST(Slices, ReleaseZeroIsANoOp) {
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    q.push(1);
    auto rs = q.get_read_slice(4);
    ASSERT_EQ(rs.size(), 1u);
    rs.release(0);
    ASSERT_EQ(rs.size(), 1u);
    EXPECT_EQ(rs[0], 1);
    rs.release();
    EXPECT_TRUE(q.empty());
  });
}

// --------------------------------------- slices interleaved with elements

TEST(Slices, SlicesInterleaveWithElementPushPop) {
  hq::scheduler sched(4);
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    hq::spawn(
        [](hq::pushdep<int> p) {
          int v = 0;
          while (v < 300) {
            if ((v / 7) % 2 == 0) {
              p.push(v++);
            } else {
              auto ws = p.get_write_slice(
                  std::min<std::size_t>(9, static_cast<std::size_t>(300 - v)));
              const std::size_t n = ws.size();
              for (std::size_t i = 0; i < n; ++i) ws.emplace(i, v++);
              ws.commit();
            }
          }
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&got](hq::popdep<int> p) {
          bool use_slice = false;
          for (;;) {
            if (use_slice) {
              auto rs = p.get_read_slice(5);
              if (rs.empty()) break;
              for (const int& v : rs) got.push_back(v);
              rs.release();
            } else {
              if (p.empty()) break;
              got.push_back(p.pop());
            }
            use_slice = !use_slice;
          }
        },
        (hq::popdep<int>)q);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 300u);
  for (int i = 0; i < 300; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

// -------------------------------------------------------- cross-segment

TEST(Slices, ReadSlicesWalkTheSegmentChain) {
  // Producer bulk-pushes far more than one tiny segment holds; consecutive
  // read slices must walk the chain (each slice stays within one segment)
  // and the drained interior segments must return to the pool.
  hq::scheduler sched(2);
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> q(8);
    hq::spawn(
        [](hq::pushdep<int> p) {
          std::vector<int> vals(200);
          for (int i = 0; i < 200; ++i) vals[static_cast<std::size_t>(i)] = i;
          hq::push_slices(p, vals.begin(), vals.end(), 32);
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&got](hq::popdep<int> p) {
          for (;;) {
            auto rs = p.get_read_slice(32);
            if (rs.empty()) break;
            EXPECT_LE(rs.size(), 8u) << "a slice never spans segments";
            for (const int& v : rs) got.push_back(v);
            rs.release();
          }
        },
        (hq::popdep<int>)q);
    hq::sync();
    const auto st = q.pool_stats();
    EXPECT_GT(st.recycled + st.allocated, 0u);
    EXPECT_EQ(st.allocated, st.high_water)
        << "fresh allocation only ever happens at a new high-water mark";
  });
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

// ------------------------------------------------- pop-FIFO view handoff

TEST(Slices, PopSpawnLeavesParkedViewForOlderSibling) {
  // Deterministic regression test for a queue-view handoff deadlock: after
  // a pop child completes, the queue view is parked at the parent until the
  // FIFO-next pop child claims it lazily. A NEWLY spawned (younger) pop
  // child must not grab the parked view — it cannot run before the older
  // sibling, which would then wait on it forever. The gate pins the older
  // sibling in the started-but-not-yet-claimed state while the owner
  // spawns the younger one.
  hq::scheduler sched(4);
  std::atomic<bool> c1_done{false};
  std::atomic<bool> gate{false};
  std::atomic<long> got{0};
  sched.run([&] {
    hq::hyperqueue<int> q(8);
    q.push(1);
    hq::spawn(
        [&](hq::popdep<int> p) {  // c1: takes the queue view at spawn
          while (!p.empty()) {
            (void)p.pop();
            got.fetch_add(1, std::memory_order_relaxed);
          }
          c1_done.store(true, std::memory_order_release);
        },
        (hq::popdep<int>)q);
    hq::spawn(
        [&](hq::popdep<int> p) {  // c2: runs after c1, held before claiming
          while (!gate.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          while (!p.empty()) {
            (void)p.pop();
            got.fetch_add(1, std::memory_order_relaxed);
          }
        },
        (hq::popdep<int>)q);
    // Wait until c1's completion hooks have parked the view at the owner
    // (c2 is gated, so it cannot have claimed it).
    while (!c1_done.load(std::memory_order_acquire)) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(2);
    hq::spawn(
        [&](hq::popdep<int> p) {  // c3: must NOT steal the parked view
          while (!p.empty()) {
            (void)p.pop();
            got.fetch_add(1, std::memory_order_relaxed);
          }
        },
        (hq::popdep<int>)q);
    gate.store(true, std::memory_order_release);
    hq::sync();
  });
  EXPECT_EQ(got.load(), 2);
}

constexpr int kSplitRounds = 2000;
constexpr int kSplitBatch = 8;


TEST(Slices, RapidPopChildRespawnDoesNotStrandQueueView) {
  // Regression test for a queue-view handoff deadlock: when a completed pop
  // child hands the queue view back to the parent while the FIFO-next pop
  // sibling has not yet claimed it, a NEWLY spawned (younger) pop child
  // must not grab the parked view at spawn — it cannot run before the older
  // sibling, which would then wait on it forever. The trigger is an owner
  // that keeps pushing and spawning short-lived consumers back to back at
  // multiple workers (the bzip2 split pipeline's writer structure).
  // Miniature of the bzip2 split pipeline (Sections 5.4 + 5.5): the owner
  // pushes a batch, spawns a middle stage that re-spawns per-value pushers
  // onto a second queue, spawns a writer draining that queue, and issues a
  // selective sync every few rounds. The writers are long-lived pop
  // children respawned back to back — exactly the pattern that arms the
  // stranding window.
  hq::scheduler sched(4);
  std::atomic<long> written{0};
  sched.run([&] {
    hq::hyperqueue<int> q_in(32);
    hq::hyperqueue<int> q_out(32);
    int window = 0;
    for (int r = 0; r < kSplitRounds; ++r) {
      for (int i = 0; i < kSplitBatch; ++i) q_in.push(r * kSplitBatch + i);
      hq::spawn(
          [](hq::popdep<int> in, hq::pushdep<int> out) {
            for (int i = 0; i < kSplitBatch; ++i) {
              int v = in.pop();
              // The busy loop stands in for the apps' per-batch kernel work:
              // it congests the deques so freshly runnable writers linger
              // unstarted, which is what holds the stranding window open.
              hq::spawn(
                  [v](hq::pushdep<int> o) {
                    volatile long acc = 0;
                    for (int k = 0; k < 5000; ++k) acc = acc + k * k;
                    o.push(v + static_cast<int>(acc * 0));
                  },
                  out);
            }
            hq::sync();
          },
          (hq::popdep<int>)q_in, (hq::pushdep<int>)q_out);
      hq::spawn(
          [&written](hq::popdep<int> p) {
            while (!p.empty()) {
              (void)p.pop();
              written.fetch_add(1, std::memory_order_relaxed);
            }
          },
          (hq::popdep<int>)q_out);
      // Owner-side work comparable to one stage subtree's latency: the
      // steal window only opens while the owner is mid-burst with earlier
      // stages completing and later ones not yet started. The right ratio
      // depends on the machine, so sweep the delay cyclically — some band
      // of rounds always lands in the window.
      volatile long own = 0;
      for (int k = 0; k < (r % 64) * 500; ++k) own = own + k;
      (void)own;
      if (++window >= 4) {
        q_out.sync_pop();
        window = 0;
      }
    }
    hq::sync();
  });
  EXPECT_EQ(written.load(), static_cast<long>(kSplitRounds) * kSplitBatch);
}

// ------------------------------------------------------------- torture

TEST(Slices, TwoThreadSliceTortureLoop) {
  // One producer task and one consumer task on 2 workers, streaming 500k
  // values through an intentionally tiny queue with pseudo-randomly sized
  // write slices, read slices, prefix releases and element ops mixed in.
  // FIFO order and the exact count must survive.
  constexpr int kTotal = 500000;
  hq::scheduler sched(2);
  std::atomic<bool> ok{true};
  std::atomic<int> consumed{0};
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    hq::spawn(
        [](hq::pushdep<int> p) {
          std::uint64_t rng = 0x9e3779b97f4a7c15ull;
          int v = 0;
          while (v < kTotal) {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            if ((rng & 15u) == 0) {
              p.push(v++);
              continue;
            }
            const std::size_t want = 1 + static_cast<std::size_t>(
                                             (rng >> 33) % 13);
            auto ws = p.get_write_slice(std::min<std::size_t>(
                want, static_cast<std::size_t>(kTotal - v)));
            const std::size_t n = ws.size();
            for (std::size_t i = 0; i < n; ++i) ws.emplace(i, v++);
            ws.commit();
          }
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&ok, &consumed](hq::popdep<int> p) {
          std::uint64_t rng = 0x853c49e6748fea9bull;
          int expect = 0;
          for (;;) {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            if ((rng & 15u) == 0) {
              if (p.empty()) break;
              if (p.pop() != expect++) {
                ok.store(false);
                break;
              }
              continue;
            }
            auto rs = p.get_read_slice(1 + static_cast<std::size_t>(
                                               (rng >> 33) % 17));
            if (rs.empty()) break;
            std::size_t take = rs.size();
            if ((rng & 0x30u) == 0 && take > 1) take /= 2;  // prefix release
            for (std::size_t i = 0; i < take; ++i) {
              if (rs[i] != expect++) {
                ok.store(false);
                return;
              }
            }
            rs.release(take);
          }
          consumed.store(expect);
        },
        (hq::popdep<int>)q);
    hq::sync();
  });
  EXPECT_TRUE(ok.load()) << "value order diverged from the serial elision";
  EXPECT_EQ(consumed.load(), kTotal);
}

}  // namespace
