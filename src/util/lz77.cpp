#include "util/lz77.hpp"

#include <cstring>
#include <stdexcept>

namespace hq::util {

namespace {

constexpr std::size_t kWindow = 1u << 16;   // 64 KiB back-reference window
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;

inline std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_varint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t* data, std::size_t len, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (*pos >= len) throw std::runtime_error("lz77: truncated varint");
    const std::uint8_t b = data[(*pos)++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw std::runtime_error("lz77: varint overflow");
  }
}

// Token stream grammar (after the orig_len header):
//   varint n  with n odd:  literal run of (n >> 1) + 1 bytes follows
//   varint n  with n even: match; length = (n >> 1) + kMinMatch,
//                          followed by varint distance (>= 1)

}  // namespace

std::vector<std::uint8_t> lz77_compress(const std::uint8_t* data, std::size_t len,
                                        unsigned effort) {
  const std::size_t kMaxChain = effort < 1 ? 1 : effort;
  std::vector<std::uint8_t> out;
  out.reserve(len / 2 + 16);
  put_varint(&out, len);

  std::vector<std::int64_t> head(1u << kHashBits, -1);
  std::vector<std::int64_t> prev(len > 0 ? len : 1, -1);

  std::size_t lit_start = 0;
  auto flush_literals = [&](std::size_t end) {
    std::size_t n = end - lit_start;
    while (n > 0) {
      const std::size_t take = n < 4096 ? n : 4096;
      put_varint(&out, ((take - 1) << 1) | 1);
      out.insert(out.end(), data + lit_start, data + lit_start + take);
      lit_start += take;
      n -= take;
    }
  };

  std::size_t i = 0;
  while (i + kMinMatch <= len) {
    const std::uint32_t h = hash4(data + i);
    std::int64_t cand = head[h];
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    for (std::size_t chain = 0; chain < kMaxChain && cand >= 0; ++chain) {
      const std::size_t dist = i - static_cast<std::size_t>(cand);
      if (dist > kWindow) break;
      const std::size_t limit = std::min(kMaxMatch, len - i);
      std::size_t m = 0;
      const std::uint8_t* a = data + static_cast<std::size_t>(cand);
      const std::uint8_t* b = data + i;
      while (m < limit && a[m] == b[m]) ++m;
      if (m > best_len) {
        best_len = m;
        best_dist = dist;
        if (m == limit) break;
      }
      cand = prev[static_cast<std::size_t>(cand)];
    }
    if (best_len >= kMinMatch) {
      flush_literals(i);
      put_varint(&out, (best_len - kMinMatch) << 1);
      put_varint(&out, best_dist);
      // Index every position inside the match (bounded work).
      const std::size_t end = i + best_len;
      while (i < end && i + kMinMatch <= len) {
        const std::uint32_t hh = hash4(data + i);
        prev[i] = head[hh];
        head[hh] = static_cast<std::int64_t>(i);
        ++i;
      }
      i = end;
      lit_start = end;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<std::int64_t>(i);
      ++i;
    }
  }
  flush_literals(len);
  return out;
}

std::vector<std::uint8_t> lz77_decompress(const std::uint8_t* data, std::size_t len) {
  std::size_t pos = 0;
  const std::uint64_t orig = get_varint(data, len, &pos);
  std::vector<std::uint8_t> out;
  out.reserve(orig);
  while (out.size() < orig) {
    const std::uint64_t tok = get_varint(data, len, &pos);
    if (tok & 1) {
      const std::size_t n = static_cast<std::size_t>(tok >> 1) + 1;
      if (pos + n > len) throw std::runtime_error("lz77: truncated literal run");
      out.insert(out.end(), data + pos, data + pos + n);
      pos += n;
    } else {
      const std::size_t m = static_cast<std::size_t>(tok >> 1) + kMinMatch;
      const std::size_t dist = static_cast<std::size_t>(get_varint(data, len, &pos));
      if (dist == 0 || dist > out.size()) {
        throw std::runtime_error("lz77: bad match distance");
      }
      // Byte-wise copy: overlapping matches (dist < m) replicate correctly.
      std::size_t src = out.size() - dist;
      for (std::size_t k = 0; k < m; ++k) out.push_back(out[src + k]);
    }
  }
  if (out.size() != orig) throw std::runtime_error("lz77: length mismatch");
  return out;
}

}  // namespace hq::util
