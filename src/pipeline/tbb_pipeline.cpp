#include "pipeline/tbb_pipeline.hpp"

#include <cassert>
#include <utility>

namespace hq::tbbpipe {

void pipeline::add_filter(filter_mode mode, std::function<void*(void*)> fn,
                          std::function<void(void*)> destroy) {
  filter f;
  f.mode = mode;
  f.fn = std::move(fn);
  f.destroy = std::move(destroy);
  filters_.push_back(std::move(f));
}

void pipeline::run(std::size_t max_tokens, unsigned num_threads) {
  assert(!filters_.empty());
  assert(max_tokens >= 1 && num_threads >= 1);
  max_tokens_ = max_tokens;
  next_token_seq_ = 0;
  in_flight_ = 0;
  input_done_ = false;
  err_ = nullptr;
  cancelled_.store(false, std::memory_order_relaxed);
  for (auto& f : filters_) {
    f.next_seq = 0;
    f.busy = false;
    f.parked.clear();
  }
  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    pool.emplace_back([this] { worker_loop(); });
  }
  for (auto& t : pool) t.join();
  // All workers drained: in_flight_ == 0, so every token was either retired
  // or reclaimed. Surface the first failure on the calling thread and leave
  // the pipeline reusable.
  std::exception_ptr err = std::exchange(err_, nullptr);
  cancelled_.store(false, std::memory_order_relaxed);
  if (err) std::rethrow_exception(err);
}

void pipeline::destroy_input_locked(std::size_t idx, void* data) {
  assert(idx < filters_.size());
  if (filters_[idx].destroy) filters_[idx].destroy(data);
}

void pipeline::fail_locked(std::exception_ptr e) {
  if (!err_) err_ = std::move(e);
  cancelled_.store(true, std::memory_order_release);
  input_done_ = true;  // the source admits no further tokens
  // Reclaim queued and parked tokens: nothing will run them (the workers
  // stop carrying on the cancel flag, and a failed serial filter never
  // releases its successors), so destroy them here to let in_flight_ reach
  // zero and the worker pool drain.
  for (auto& t : ready_) {
    destroy_input_locked(t.next_filter, t.data);
    --in_flight_;
  }
  ready_.clear();
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    for (auto& [seq, data] : filters_[i].parked) {
      destroy_input_locked(i, data);
      --in_flight_;
    }
    filters_[i].parked.clear();
  }
  cv_.notify_all();
}

bool pipeline::try_take(token* out) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (!ready_.empty()) {
      *out = ready_.front();
      ready_.pop_front();
      return true;
    }
    // Spawn a new token if the pipeline has capacity and the source filter
    // is free (the source is serial by definition).
    filter& src = filters_.front();
    if (!input_done_ && in_flight_ < max_tokens_ && !src.busy) {
      src.busy = true;
      const std::uint64_t seq = next_token_seq_++;
      ++in_flight_;
      lk.unlock();
      void* data = nullptr;
      try {
        data = src.fn(nullptr);
      } catch (...) {
        lk.lock();
        src.busy = false;
        src.next_seq = seq + 1;
        --in_flight_;
        fail_locked(std::current_exception());
        continue;
      }
      lk.lock();
      src.busy = false;
      src.next_seq = seq + 1;
      if (data == nullptr) {
        input_done_ = true;
        --in_flight_;
        cv_.notify_all();
        continue;  // someone else may still have parked work
      }
      if (cancelled_.load(std::memory_order_relaxed)) {
        // Produced across a cancellation: reclaim instead of dispatching.
        destroy_input_locked(1, data);
        --in_flight_;
        cv_.notify_all();
        continue;
      }
      *out = token{seq, data, 1};
      cv_.notify_one();  // capacity may allow another token
      return true;
    }
    if (input_done_ && in_flight_ == 0) return false;  // pipeline drained
    cv_.wait(lk);
  }
}

void pipeline::worker_loop() {
  token tok{};
  while (try_take(&tok)) {
    // Carry the token through consecutive filters on this thread until it
    // retires or parks at a busy serial filter (TBB's filter fusion).
    bool carrying = true;
    while (carrying) {
      if (tok.next_filter >= filters_.size()) {
        std::lock_guard<std::mutex> lk(mu_);
        --in_flight_;
        cv_.notify_all();
        break;
      }
      if (cancelled_.load(std::memory_order_relaxed)) {
        // Cooperative cancellation: stop carrying, reclaim the token.
        std::lock_guard<std::mutex> lk(mu_);
        destroy_input_locked(tok.next_filter, tok.data);
        --in_flight_;
        cv_.notify_all();
        break;
      }
      filter& f = filters_[tok.next_filter];
      if (f.mode == filter_mode::parallel) {
        try {
          tok.data = f.fn(tok.data);
        } catch (...) {
          std::lock_guard<std::mutex> lk(mu_);
          --in_flight_;
          fail_locked(std::current_exception());
          break;
        }
        ++tok.next_filter;
        continue;
      }
      // serial_in_order: admit strictly by sequence, one token at a time.
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (cancelled_.load(std::memory_order_relaxed)) {
          destroy_input_locked(tok.next_filter, tok.data);
          --in_flight_;
          cv_.notify_all();
          break;
        }
        if (f.busy || tok.seq != f.next_seq) {
          f.parked.emplace(tok.seq, tok.data);
          carrying = false;  // go find other work
          break;
        }
        f.busy = true;
      }
      try {
        tok.data = f.fn(tok.data);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        f.busy = false;
        --in_flight_;
        fail_locked(std::current_exception());
        break;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        f.busy = false;
        f.next_seq = tok.seq + 1;
        // Release the successor if it already arrived.
        auto it = f.parked.find(f.next_seq);
        if (it != f.parked.end()) {
          ready_.push_back(token{it->first, it->second, tok.next_filter});
          f.parked.erase(it);
          cv_.notify_one();
        }
      }
      ++tok.next_filter;
    }
  }
}

}  // namespace hq::tbbpipe
