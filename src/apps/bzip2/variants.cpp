// The bzip2 pipeline in all programming models. Output streams are
// byte-identical (mbzip whole-stream format), so equality against the
// serial stream verifies in-order writes.
//
// The pthreads/tbb/hyperqueue variants share one declarative description
// (describe_pipeline); only the serial reference, the task-dataflow
// "objects" comparison and the Section 5.4/5.5 loop-split idiom — which
// exercises owner-push and selective sync, shapes the front-end does not
// model — remain hand-rolled.
#include <algorithm>
#include <memory>

#include "apps/bzip2/bzip2.hpp"
#include "hq.hpp"
#include "pipeline/runner.hpp"
#include "util/mbzip.hpp"
#include "util/stats.hpp"

namespace hq::apps::bzip2 {

namespace {

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct block {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> data;  // raw, then compressed
};

std::vector<block> slice_blocks(const config& cfg,
                                const std::vector<std::uint8_t>& input) {
  std::vector<block> blocks;
  std::uint64_t seq = 0;
  for (std::size_t off = 0; off < input.size(); off += cfg.block_bytes) {
    const std::size_t len = std::min(cfg.block_bytes, input.size() - off);
    block b;
    b.seq = seq++;
    b.data.assign(input.begin() + static_cast<std::ptrdiff_t>(off),
                  input.begin() + static_cast<std::ptrdiff_t>(off + len));
    blocks.push_back(std::move(b));
  }
  return blocks;
}

void write_header(result* r, std::size_t nblocks) {
  put_u32(&r->output, static_cast<std::uint32_t>(nblocks));
}

void write_block(result* r, const std::vector<std::uint8_t>& comp) {
  put_u32(&r->output, static_cast<std::uint32_t>(comp.size()));
  r->output.insert(r->output.end(), comp.begin(), comp.end());
  ++r->blocks;
}

}  // namespace

// ----------------------------------------------------------------- serial

result run_serial(const config& cfg, const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  result r;
  auto blocks = slice_blocks(cfg, input);
  write_header(&r, blocks.size());
  for (auto& b : blocks) {
    auto comp = util::mbzip_compress_block(b.data.data(), b.data.size());
    write_block(&r, comp);
  }
  r.seconds = sw.seconds();
  return r;
}

// ----------------------------------------------------- declarative pipeline

void describe_pipeline(const config& cfg, const std::vector<std::uint8_t>& input,
                       result* r, pipe::graph& g) {
  // The header write is ordered before the sink's first append on every
  // backend: the sink only touches r->output after receiving a block that
  // was emitted after the header write, and the inter-stage channel push
  // synchronizes-with its pop.
  auto read = g.source<block>("read", [&cfg, &input, r](pipe::emit<block> out) {
    auto blocks = slice_blocks(cfg, input);
    write_header(r, blocks.size());
    for (auto& b : blocks) out(std::move(b));
  });
  auto compress = g.stage<block, block>(
      "compress", pipe::stage_kind::parallel,
      [](block&& b, pipe::emit<block> out) {
        b.data = util::mbzip_compress_block(b.data.data(), b.data.size());
        out(std::move(b));
      });
  auto write = g.sink<block>("write", pipe::stage_kind::serial_in_order,
                             [r](block&& b) { write_block(r, b.data); });

  pipe::edge_opts opts;
  opts.capacity = 32;  // the PARSEC-style bound the pthreads variant used
  opts.slice_batch = cfg.slice_batch;
  g.connect(read, compress, opts);
  g.connect(compress, write, opts);
}

namespace {

result run_declarative(const config& cfg, const std::vector<std::uint8_t>& input,
                       pipe::backend b) {
  result r;
  pipe::graph g;
  describe_pipeline(cfg, input, &r, g);
  pipe::exec_options opt;
  opt.workers = cfg.threads;
  opt.seed = cfg.seed;
  const pipe::exec_result ex = pipe::execute(g, b, opt);
  r.seconds = ex.seconds;
  r.seg_allocated = ex.pool.allocated;
  r.seg_recycled = ex.pool.recycled;
  r.seg_high_water = ex.pool.high_water;
  r.peak_segments = std::max(r.peak_segments, ex.peak_segments);
  return r;
}

}  // namespace

result run_pthreads(const config& cfg, const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::pthreads);
}

result run_tbb(const config& cfg, const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::tbb);
}

result run_hyperqueue(const config& cfg, const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::hyperqueue);
}

result run_hyperqueue_element(const config& cfg,
                              const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::hyperqueue_element);
}

// ---------------------------------------------------------------- objects

result run_objects(const config& cfg, const std::vector<std::uint8_t>& input) {
  // Task dataflow structure of prior work [7] / Figure 1: per-block
  // versioned object, renamed by the (outdep) compressor, output serialized
  // on an inoutdep "file descriptor" token.
  util::stopwatch sw;
  result r;
  scheduler sched(cfg.threads);
  sched.run([&] {
    auto blocks = slice_blocks(cfg, input);
    write_header(&r, blocks.size());
    versioned<int> fd(0);
    for (auto& b : blocks) {
      versioned<std::vector<std::uint8_t>> buf;
      spawn(
          [raw = std::move(b.data)](outdep<std::vector<std::uint8_t>> out) {
            *out = util::mbzip_compress_block(raw.data(), raw.size());
          },
          (outdep<std::vector<std::uint8_t>>)buf);
      spawn(
          [&r](indep<std::vector<std::uint8_t>> comp, inoutdep<int>) {
            write_block(&r, *comp);
          },
          (indep<std::vector<std::uint8_t>>)buf, (inoutdep<int>)fd);
    }
    sync();
  });
  r.seconds = sw.seconds();
  return r;
}

// ------------------------------------------------- hyperqueue (loop split)

namespace {

/// Record both queues' segment-pool counters into the result (called while
/// the queues are still alive, before teardown frees the pool).
void record_pool(result* r, const hyperqueue<block>& a,
                 const hyperqueue<block>& b) {
  const auto st = a.pool_stats() + b.pool_stats();
  r->seg_allocated = st.allocated;
  r->seg_recycled = st.recycled;
  r->seg_high_water = st.high_water;
  r->peak_segments = std::max<std::size_t>(
      r->peak_segments, std::max(a.segments(), b.segments()));
}

/// Compress one batch of blocks and stream them out through write slices.
void hq_compress_batch(std::vector<block> work, std::size_t batch,
                       pushdep<block> out) {
  for (auto& b : work) {
    b.data = util::mbzip_compress_block(b.data.data(), b.data.size());
  }
  push_slices(out, work.begin(), work.end(), batch);
}

void hq_writer(std::size_t batch, result* r, popdep<block> q) {
  for (;;) {
    auto rs = q.get_read_slice(batch);
    if (rs.empty()) break;
    for (const block& b : rs) write_block(r, b.data);
    rs.release();
  }
}

}  // namespace

result run_hyperqueue_split(const config& cfg,
                            const std::vector<std::uint8_t>& input) {
  // Section 5.4 loop split & interchange: the driver pushes blocks in
  // batches and spawns the consuming stages per batch, bounding queue
  // growth under serial execution. Under the help-first scheduler the
  // driver additionally paces itself with a selective sync (Section 5.5)
  // every `split_window` batches, so the number of batches in flight — and
  // with it the segment pool — stays bounded at any worker count.
  util::stopwatch sw;
  result r;
  const std::size_t nblocks = (input.size() + cfg.block_bytes - 1) / cfg.block_bytes;
  write_header(&r, nblocks);
  scheduler sched(cfg.threads);
  sched.run([&] {
    hyperqueue<block> q_in(2 * cfg.slice_batch);
    hyperqueue<block> q_out(2 * cfg.slice_batch);
    auto blocks = slice_blocks(cfg, input);
    std::size_t produced = 0;
    std::size_t window = 0;
    while (produced < blocks.size()) {
      const std::size_t batch = std::min(cfg.split_batch, blocks.size() - produced);
      // The owner produces one batch (it holds push privileges), then spawns
      // the consuming stages for that batch — Figure 5's structure. Each
      // writer task observes exactly the compress tasks spawned before it.
      push_slices(q_in, blocks.begin() + static_cast<std::ptrdiff_t>(produced),
                  blocks.begin() + static_cast<std::ptrdiff_t>(produced + batch),
                  cfg.slice_batch);
      produced += batch;
      hq::spawn(
          [batch, slice = cfg.slice_batch](popdep<block> in, pushdep<block> out) {
            std::size_t done = 0;
            while (done < batch) {
              // Exactly `batch` values are owed to this task, so the slice
              // is never empty here.
              auto rs = in.get_read_slice(std::min(slice, batch - done));
              std::vector<block> work;
              work.reserve(rs.size());
              for (auto& b : rs) work.push_back(std::move(b));
              done += rs.size();
              rs.release();
              spawn(hq_compress_batch, std::move(work), slice, out);
            }
            sync();
          },
          (popdep<block>)q_in, (pushdep<block>)q_out);
      hq::spawn(hq_writer, cfg.slice_batch, &r, (popdep<block>)q_out);
      if (++window >= cfg.split_window) {
        q_out.sync_pop();  // paper: "sync (popdep<T>)queue;"
        window = 0;
        r.peak_segments = std::max(
            r.peak_segments, std::max(q_in.segments(), q_out.segments()));
      }
    }
    sync();
    record_pool(&r, q_in, q_out);
  });
  r.seconds = sw.seconds();
  return r;
}

}  // namespace hq::apps::bzip2
