// Determinism stress: the paper's central claim is that a hyperqueue
// program produces the output of its serial elision on every execution,
// independent of the worker count and of how the scheduler interleaves
// producers and the consumer. Run the Figure-2 recursive-producer pipeline
// many times at 1/2/4/8 workers and require the serialized output bytes to
// be identical across every run and every worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hq.hpp"

namespace {

constexpr int kIterations = 50;
constexpr int kTotal = 1000;
const unsigned kWorkerCounts[] = {1, 2, 4, 8};

void recursive_producer(hq::pushdep<int> q, int start, int end) {
  if (end - start <= 10) {
    for (int n = start; n < end; ++n) q.push(n);
  } else {
    hq::spawn(recursive_producer, q, start, (start + end) / 2);
    hq::spawn(recursive_producer, q, (start + end) / 2, end);
    hq::sync();
  }
}

/// Consumer serializing each popped value to bytes; mixing in a running
/// accumulator makes the stream order-sensitive, so any reordering, loss or
/// duplication changes every subsequent byte.
void serializing_consumer(hq::popdep<int> q, std::vector<std::uint8_t>* out) {
  std::uint32_t acc = 0x9e3779b9u;
  while (!q.empty()) {
    const std::uint32_t v = static_cast<std::uint32_t>(q.pop());
    acc = acc * 1664525u + v;
    out->push_back(static_cast<std::uint8_t>(v));
    out->push_back(static_cast<std::uint8_t>(v >> 8));
    out->push_back(static_cast<std::uint8_t>(v >> 16));
    out->push_back(static_cast<std::uint8_t>(acc >> 24));
  }
  out->push_back(static_cast<std::uint8_t>(acc));
  out->push_back(static_cast<std::uint8_t>(acc >> 8));
  out->push_back(static_cast<std::uint8_t>(acc >> 16));
  out->push_back(static_cast<std::uint8_t>(acc >> 24));
}

std::vector<std::uint8_t> run_pipeline(unsigned workers, std::size_t segment_len) {
  hq::scheduler sched(workers);
  std::vector<std::uint8_t> bytes;
  sched.run([&] {
    hq::hyperqueue<int> queue(segment_len);
    hq::spawn(recursive_producer, (hq::pushdep<int>)queue, 0, kTotal);
    hq::spawn(serializing_consumer, (hq::popdep<int>)queue, &bytes);
    hq::sync();
  });
  return bytes;
}

/// The serial elision: what a sequential execution of the program computes.
std::vector<std::uint8_t> serial_elision() {
  std::vector<std::uint8_t> bytes;
  std::uint32_t acc = 0x9e3779b9u;
  for (int n = 0; n < kTotal; ++n) {
    const std::uint32_t v = static_cast<std::uint32_t>(n);
    acc = acc * 1664525u + v;
    bytes.push_back(static_cast<std::uint8_t>(v));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes.push_back(static_cast<std::uint8_t>(acc >> 24));
  }
  bytes.push_back(static_cast<std::uint8_t>(acc));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 16));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 24));
  return bytes;
}

TEST(StressDeterminism, Figure2ByteIdenticalAcrossRunsAndWorkers) {
  const std::vector<std::uint8_t> expected = serial_elision();
  for (unsigned workers : kWorkerCounts) {
    for (int iter = 0; iter < kIterations; ++iter) {
      const std::vector<std::uint8_t> got =
          run_pipeline(workers, hq::hyperqueue<int>::kDefaultSegmentLength);
      ASSERT_EQ(got, expected)
          << "output diverged from the serial elision at workers=" << workers
          << " iteration=" << iter;
    }
  }
}

TEST(StressDeterminism, Figure2ByteIdenticalWithTinySegments) {
  // Segment length 8 forces constant segment chaining and recycling, the
  // paths where nondeterminism would most plausibly leak in.
  const std::vector<std::uint8_t> expected = serial_elision();
  for (unsigned workers : kWorkerCounts) {
    for (int iter = 0; iter < kIterations; ++iter) {
      const std::vector<std::uint8_t> got = run_pipeline(workers, 8);
      ASSERT_EQ(got, expected)
          << "output diverged from the serial elision at workers=" << workers
          << " iteration=" << iter << " (segment length 8)";
    }
  }
}

}  // namespace
