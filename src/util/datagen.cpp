#include "util/datagen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace hq::util {

std::vector<std::uint8_t> gen_text(std::size_t bytes, std::uint64_t seed) {
  xoshiro256 rng(seed);
  // Vocabulary of pseudo-words; Zipf-like rank selection makes the stream
  // compressible (repeated common words) without being trivially so.
  std::vector<std::string> vocab;
  vocab.reserve(512);
  for (int w = 0; w < 512; ++w) {
    const std::size_t len = 2 + rng.below(9);
    std::string word;
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.below(26)));
    }
    vocab.push_back(std::move(word));
  }
  std::vector<std::uint8_t> out;
  out.reserve(bytes + 16);
  std::size_t col = 0;
  while (out.size() < bytes) {
    // Zipf-ish: rank ~ u^3 biases towards low ranks.
    const double u = rng.uniform();
    const auto rank = static_cast<std::size_t>(u * u * u * 511.0);
    const std::string& w = vocab[rank];
    out.insert(out.end(), w.begin(), w.end());
    col += w.size() + 1;
    if (rng.below(12) == 0) out.push_back('.');
    if (col > 70) {
      out.push_back('\n');
      col = 0;
    } else {
      out.push_back(' ');
    }
  }
  out.resize(bytes);
  return out;
}

std::vector<std::uint8_t> gen_archive(std::size_t bytes, double dup_fraction,
                                      std::uint64_t seed) {
  xoshiro256 rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(bytes + 4096);
  std::vector<std::pair<std::size_t, std::size_t>> prior_blocks;  // offset,len
  while (out.size() < bytes) {
    const bool dup = !prior_blocks.empty() && rng.uniform() < dup_fraction;
    if (dup) {
      const auto& [off, len] = prior_blocks[rng.below(prior_blocks.size())];
      // Re-emit an earlier block byte-identically.
      const std::size_t start = out.size();
      out.resize(start + len);
      std::copy(out.begin() + static_cast<std::ptrdiff_t>(off),
                out.begin() + static_cast<std::ptrdiff_t>(off + len),
                out.begin() + static_cast<std::ptrdiff_t>(start));
    } else {
      const std::size_t len = 2048 + rng.below(6144);
      const std::size_t start = out.size();
      // Semi-compressible payload: runs + text-ish bytes.
      std::size_t i = 0;
      while (i < len) {
        if (rng.below(4) == 0) {
          const std::size_t run = 4 + rng.below(60);
          const auto b = static_cast<std::uint8_t>(rng.below(256));
          for (std::size_t k = 0; k < run && i < len; ++k, ++i) out.push_back(b);
        } else {
          out.push_back(static_cast<std::uint8_t>('A' + rng.below(60)));
          ++i;
        }
      }
      prior_blocks.emplace_back(start, len);
    }
  }
  out.resize(bytes);
  return out;
}

std::vector<float> gen_image(std::size_t width, std::size_t height,
                             std::uint64_t seed) {
  xoshiro256 rng(seed);
  std::vector<float> img(width * height);
  // Smooth background gradient plus noise.
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      img[y * width + x] =
          0.25f * static_cast<float>(x) / static_cast<float>(width) +
          0.25f * static_cast<float>(y) / static_cast<float>(height) +
          0.1f * static_cast<float>(rng.uniform());
    }
  }
  // A few Gaussian blobs ("objects" for similarity search).
  const int blobs = 2 + static_cast<int>(rng.below(4));
  for (int b = 0; b < blobs; ++b) {
    const double cx = rng.uniform() * static_cast<double>(width);
    const double cy = rng.uniform() * static_cast<double>(height);
    const double sigma = 2.0 + rng.uniform() * static_cast<double>(width) / 8.0;
    const double amp = 0.3 + rng.uniform() * 0.6;
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        img[y * width + x] += static_cast<float>(
            amp * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma)));
      }
    }
  }
  for (auto& v : img) v = std::min(1.0f, std::max(0.0f, v));
  return img;
}

namespace {

void gen_dir(dir_tree::dir_node* node, std::size_t* remaining, int depth,
             xoshiro256* rng, std::size_t* next_id) {
  const std::size_t files_here =
      std::min<std::size_t>(*remaining, 1 + rng->below(12));
  for (std::size_t i = 0; i < files_here; ++i) {
    node->files.push_back("img_" + std::to_string((*next_id)++) + ".ppm");
  }
  *remaining -= files_here;
  if (depth < 5) {
    const std::size_t subdirs = *remaining == 0 ? 0 : rng->below(4);
    for (std::size_t d = 0; d < subdirs && *remaining > 0; ++d) {
      dir_tree::dir_node child;
      child.name = "dir_" + std::to_string(depth) + "_" + std::to_string(d);
      gen_dir(&child, remaining, depth + 1, rng, next_id);
      node->subdirs.push_back(std::move(child));
    }
  }
  // Whatever remains at the deepest recursion goes into this directory.
  if (depth == 0 && *remaining > 0) {
    for (; *remaining > 0; --*remaining) {
      node->files.push_back("img_" + std::to_string((*next_id)++) + ".ppm");
    }
  }
}

}  // namespace

dir_tree gen_dir_tree(std::size_t total_files, std::uint64_t seed) {
  xoshiro256 rng(seed);
  dir_tree tree;
  tree.root.name = "corpus";
  std::size_t remaining = total_files;
  std::size_t next_id = 0;
  gen_dir(&tree.root, &remaining, 0, &rng, &next_id);
  tree.total_files = total_files;
  return tree;
}

}  // namespace hq::util
