#include "sched/dataflow.hpp"

namespace hq::detail {

// Register a completion hook that removes `fr` from this tracker before the
// frame is recycled, so the reader/writer lists never dangle. The hook holds
// a shared_ptr to the tracker: trackers outlive all registered frames even
// if the versioned<T> variable goes out of scope first. The capture (one
// shared_ptr + one pointer) fits hook_fn's inline buffer: no allocation.
void obj_tracker::watch(task_frame* fr) {
  fr->completion_hooks.push_back(
      hook_fn([self = shared_from_this(), fr] { self->remove_task(fr); }));
}

void obj_tracker::remove_task(task_frame* fr) {
  std::lock_guard<spinlock> lk(mu_);
  if (writer_ == fr) writer_ = nullptr;
  readers_.erase_value(fr);
}

std::shared_ptr<void> obj_tracker::acquire_read(task_frame* fr) {
  std::lock_guard<spinlock> lk(mu_);
  if (writer_ != nullptr) task_frame::depend(fr, writer_);
  readers_.push_back(fr);
  watch(fr);
  return payload_;
}

std::shared_ptr<void> obj_tracker::acquire_readwrite(task_frame* fr) {
  std::lock_guard<spinlock> lk(mu_);
  if (writer_ != nullptr) task_frame::depend(fr, writer_);
  for (task_frame* r : readers_) task_frame::depend(fr, r);
  readers_.clear();
  writer_ = fr;
  watch(fr);
  return payload_;
}

std::shared_ptr<void> obj_tracker::acquire_write(task_frame* fr,
                                                 std::shared_ptr<void> fresh) {
  std::lock_guard<spinlock> lk(mu_);
  // Renaming: older readers/writer keep their version alive through their
  // own payload references; dependences on them are unnecessary.
  payload_ = std::move(fresh);
  readers_.clear();
  writer_ = fr;
  watch(fr);
  return payload_;
}

}  // namespace hq::detail
