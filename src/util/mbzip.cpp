#include "util/mbzip.hpp"

#include <cstring>
#include <stdexcept>

#include "util/bwt.hpp"
#include "util/huffman.hpp"

namespace hq::util {

namespace {

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> mbzip_compress_block(const std::uint8_t* data,
                                               std::size_t len) {
  // Block layout: [orig_len u32][primary u32][zrle_len u32][huffman payload]
  bwt_result bwt = bwt_forward(data, len);
  std::vector<std::uint8_t> mtf = mtf_encode(bwt.last_column.data(),
                                             bwt.last_column.size());
  std::vector<std::uint8_t> rle = zrle_encode(mtf.data(), mtf.size());
  std::vector<std::uint8_t> huff = huffman_encode(rle.data(), rle.size());

  std::vector<std::uint8_t> out;
  out.reserve(huff.size() + 12);
  put_u32(&out, static_cast<std::uint32_t>(len));
  put_u32(&out, bwt.primary_index);
  put_u32(&out, static_cast<std::uint32_t>(rle.size()));
  out.insert(out.end(), huff.begin(), huff.end());
  return out;
}

std::vector<std::uint8_t> mbzip_decompress_block(const std::uint8_t* data,
                                                 std::size_t len) {
  if (len < 12) throw std::runtime_error("mbzip: truncated block header");
  const std::uint32_t orig_len = get_u32(data);
  const std::uint32_t primary = get_u32(data + 4);
  const std::uint32_t rle_len = get_u32(data + 8);
  std::vector<std::uint8_t> rle = huffman_decode(data + 12, len - 12, rle_len);
  std::vector<std::uint8_t> mtf = zrle_decode(rle.data(), rle.size());
  if (mtf.size() != orig_len) throw std::runtime_error("mbzip: MTF length mismatch");
  std::vector<std::uint8_t> last = mtf_decode(mtf.data(), mtf.size());
  return bwt_inverse(last.data(), last.size(), primary);
}

std::vector<std::uint8_t> mbzip_compress(const std::uint8_t* data, std::size_t len,
                                         std::size_t block_size) {
  if (block_size == 0) block_size = 1;
  std::vector<std::uint8_t> out;
  // Stream layout: [block_count u32] then per block [comp_len u32][block].
  const std::size_t blocks = len == 0 ? 0 : (len + block_size - 1) / block_size;
  put_u32(&out, static_cast<std::uint32_t>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t off = b * block_size;
    const std::size_t n = std::min(block_size, len - off);
    std::vector<std::uint8_t> comp = mbzip_compress_block(data + off, n);
    put_u32(&out, static_cast<std::uint32_t>(comp.size()));
    out.insert(out.end(), comp.begin(), comp.end());
  }
  return out;
}

std::vector<std::uint8_t> mbzip_decompress(const std::uint8_t* data, std::size_t len) {
  if (len < 4) throw std::runtime_error("mbzip: truncated stream");
  const std::uint32_t blocks = get_u32(data);
  std::size_t pos = 4;
  std::vector<std::uint8_t> out;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    if (pos + 4 > len) throw std::runtime_error("mbzip: truncated block length");
    const std::uint32_t clen = get_u32(data + pos);
    pos += 4;
    if (pos + clen > len) throw std::runtime_error("mbzip: truncated block");
    std::vector<std::uint8_t> block = mbzip_decompress_block(data + pos, clen);
    pos += clen;
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

}  // namespace hq::util
