// Raw-syscall NUMA memory binding — no libnuma dependency.
//
// The topology-aware arenas (sched/obj_pool.hpp slabs, core/segment
// storage) want their pages resident on the NUMA node of the worker that
// owns them. libnuma is not a dependency this library can assume, so the
// binding is a thin wrapper over mmap + the mbind(2) syscall invoked
// directly by number; when the syscall is unavailable (non-Linux, seccomp,
// synthetic node ids beyond the real machine) the allocation silently
// degrades to first-touch placement — the memory is still valid, it is
// just not guaranteed to live on the requested node. Callers therefore
// treat the node as a *preference*; correctness never depends on it.
#pragma once

#include <cstddef>

namespace hq::numa {

/// True when mbind(2) can be issued on this platform (compile-time Linux
/// check; the call itself may still fail at runtime and is then ignored).
[[nodiscard]] bool binding_available() noexcept;

/// Allocate `bytes` of zeroed memory aligned to `align` (a power of two),
/// preferentially bound to NUMA `node` (< 0: no preference). Never returns
/// null for sane sizes; falls back to an unbound mapping, then to the
/// global heap. Release with free(ptr, bytes, align).
[[nodiscard]] void* alloc(std::size_t bytes, std::size_t align, int node);

/// Release memory obtained from alloc() with identical bytes/align.
void free(void* p, std::size_t bytes, std::size_t align) noexcept;

/// NUMA node the calling thread is currently executing on (getcpu(2));
/// -1 when the platform cannot tell.
[[nodiscard]] int current_node() noexcept;

}  // namespace hq::numa
