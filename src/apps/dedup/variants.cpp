// The five dedup implementations. The output stream is byte-identical
// across all of them (first-occurrence-in-output-order carries the
// payload), so equality against the serial stream is the correctness test.
//
// The pthreads/tbb/hyperqueue variants share one declarative description
// (describe_pipeline) whose expand stage carries the paper's variable-rate
// coarse->fine split; the serial reference and the task-dataflow "objects"
// comparison remain hand-rolled.
#include <algorithm>
#include <memory>

#include "apps/dedup/dedup.hpp"
#include "hq.hpp"
#include "pipeline/runner.hpp"
#include "util/stats.hpp"

namespace hq::apps::dedup {

// ----------------------------------------------------------------- serial

result run_serial(const config& cfg, const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  result r;
  dedup_table table;
  auto coarse = k_fragment(cfg, input.data(), input.size());
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    auto chunks = k_refine(cfg, input.data(), coarse[i].first, coarse[i].second, i);
    for (auto& c : chunks) {
      k_dedup(&table, &c);
      if (c.owner) k_compress(&c);
      k_output(&r.output, &c);
      ++r.total_chunks;
    }
  }
  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

// ----------------------------------------------------- declarative pipeline

namespace {

/// One Fragment emission: a coarse chunk awaiting refinement.
struct coarse_task {
  std::uint64_t seq = 0;
  std::size_t off = 0;
  std::size_t len = 0;
};

}  // namespace

void describe_pipeline(const config& cfg, const std::vector<std::uint8_t>& input,
                       dedup_table* table, result* r, pipe::graph& g) {
  // Figure 9 as a declared chain: Fragment -> FragmentRefine (the
  // variable-rate expand) -> Deduplicate+Compress -> Output. A duplicate's
  // k_output may spin on its entry's `ready`; that wait always targets a
  // stage activation that is actively compressing (never one blocked on
  // channel capacity), because k_compress runs before the owner record is
  // forwarded — so every backend makes progress at any worker count.
  auto fragment =
      g.source<coarse_task>("fragment", [&cfg, &input](pipe::emit<coarse_task> out) {
        auto coarse = k_fragment(cfg, input.data(), input.size());
        for (std::size_t i = 0; i < coarse.size(); ++i)
          out(coarse_task{i, coarse[i].first, coarse[i].second});
      });
  auto refine = g.expand<coarse_task, chunk_rec>(
      "refine", pipe::stage_kind::parallel,
      [&cfg, &input](coarse_task&& t, pipe::emit<chunk_rec> out) {
        auto chunks = k_refine(cfg, input.data(), t.off, t.len, t.seq);
        for (auto& c : chunks) out(std::move(c));
      });
  auto dedup_compress = g.stage<chunk_rec, chunk_rec>(
      "dedup_compress", pipe::stage_kind::parallel,
      [table](chunk_rec&& c, pipe::emit<chunk_rec> out) {
        k_dedup(table, &c);
        if (c.owner) k_compress(&c);
        out(std::move(c));
      });
  auto output = g.sink<chunk_rec>("output", pipe::stage_kind::serial_in_order,
                                  [r](chunk_rec&& c) {
                                    k_output(&r->output, &c);
                                    ++r->total_chunks;
                                  });

  // Coarse tasks move in coarse_batch groups (the nested-pipeline batch of
  // the hand-rolled variant); record edges keep the PARSEC queue bounds and
  // the local-queue/write-queue segment sizes.
  pipe::edge_opts frag_edge;
  frag_edge.capacity = 32;
  frag_edge.slice_batch = cfg.coarse_batch > 0 ? cfg.coarse_batch : 1;
  g.connect(fragment, refine, frag_edge);

  pipe::edge_opts refine_edge;
  refine_edge.capacity = 256;
  refine_edge.slice_batch = cfg.slice_batch;
  refine_edge.segment_length = 64;
  refine_edge.traffic = 8.0;  // many fine records per coarse chunk
  g.connect(refine, dedup_compress, refine_edge);

  pipe::edge_opts out_edge;
  out_edge.capacity = 256;
  out_edge.slice_batch = cfg.slice_batch;
  out_edge.segment_length = 256;
  out_edge.traffic = 8.0;
  g.connect(dedup_compress, output, out_edge);
}

namespace {

result run_declarative(const config& cfg, const std::vector<std::uint8_t>& input,
                       pipe::backend b) {
  result r;
  dedup_table table;
  pipe::graph g;
  describe_pipeline(cfg, input, &table, &r, g);
  pipe::exec_options opt;
  opt.workers = cfg.threads;
  opt.seed = cfg.seed;
  const pipe::exec_result ex = pipe::execute(g, b, opt);
  r.seconds = ex.seconds;
  r.seg_allocated = ex.pool.allocated;
  r.seg_recycled = ex.pool.recycled;
  r.seg_high_water = ex.pool.high_water;
  r.unique_chunks = table.unique_chunks();
  return r;
}

}  // namespace

result run_pthreads(const config& cfg, const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::pthreads);
}

result run_tbb(const config& cfg, const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::tbb);
}

result run_hyperqueue(const config& cfg, const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::hyperqueue);
}

result run_hyperqueue_element(const config& cfg,
                              const std::vector<std::uint8_t>& input) {
  return run_declarative(cfg, input, pipe::backend::hyperqueue_element);
}

// ---------------------------------------------------------------- objects

result run_objects(const config& cfg, const std::vector<std::uint8_t>& input) {
  // Task dataflow over per-coarse-chunk lists (the nested-pipeline shape of
  // Figure 10a): dataflow cannot express the variable-rate streaming, so
  // each coarse chunk's list is produced wholesale and output waits for the
  // entire list.
  util::stopwatch sw;
  result r;
  dedup_table table;
  scheduler sched(cfg.threads);
  sched.run([&] {
    auto coarse = k_fragment(cfg, input.data(), input.size());
    versioned<std::uint64_t> out_token(0);  // serializes output in spawn order
    for (std::size_t i = 0; i < coarse.size(); ++i) {
      versioned<std::vector<chunk_rec>> list;
      spawn(
          [&cfg, &input, i, off = coarse[i].first,
           len = coarse[i].second](outdep<std::vector<chunk_rec>> l) {
            *l = k_refine(cfg, input.data(), off, len, i);
          },
          (outdep<std::vector<chunk_rec>>)list);
      spawn(
          [&table](inoutdep<std::vector<chunk_rec>> l) {
            for (auto& c : *l) {
              k_dedup(&table, &c);
              if (c.owner) k_compress(&c);
            }
          },
          (inoutdep<std::vector<chunk_rec>>)list);
      spawn(
          [&r](inoutdep<std::vector<chunk_rec>> l, inoutdep<std::uint64_t>) {
            for (auto& c : *l) {
              k_output(&r.output, &c);
              ++r.total_chunks;
            }
          },
          (inoutdep<std::vector<chunk_rec>>)list,
          (inoutdep<std::uint64_t>)out_token);
    }
    sync();
  });
  r.unique_chunks = table.unique_chunks();
  r.seconds = sw.seconds();
  return r;
}

}  // namespace hq::apps::dedup
