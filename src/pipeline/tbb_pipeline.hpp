// TBB-style token pipeline baseline (the "TBB" model of the evaluation).
//
// Reimplements the scheduling of Intel TBB's parallel_pipeline: a bounded
// number of tokens flows through a chain of filters; parallel filters run
// any number of tokens concurrently, serial_in_order filters admit tokens
// strictly in creation order, one at a time; a worker carries its token
// through consecutive filters (filter fusion) to preserve locality.
// The token bound is the knob that must be tuned to the machine — the
// scale-freedom critique of the paper (Section 7.1).
//
// The engine is type-erased (void* items); make_filter() adds a typed shim.
//
// Failure semantics: a filter that throws cancels the run. The engine
// records the first exception, stops admitting source tokens, reclaims
// every queued/parked token through the filters' destroy hooks (so
// in_flight_ can reach zero and the workers drain out), and run() rethrows
// on the calling thread. Filters must consume their input even when they
// throw — the typed shim (make_filter) guarantees this via unique_ptr.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hq::tbbpipe {

enum class filter_mode { serial_in_order, parallel };

/// A token pipeline. Add filters first-to-last, then run().
/// The first filter is the source: it is invoked with nullptr and returns
/// a new item, or nullptr for end-of-input. The last filter's return value
/// is ignored (conventionally nullptr).
class pipeline {
 public:
  pipeline() = default;
  pipeline(const pipeline&) = delete;
  pipeline& operator=(const pipeline&) = delete;

  /// @param destroy destroys one of this filter's *input* items; used to
  ///   reclaim tokens queued or parked at the filter when a failure tears
  ///   the run down (may be empty for filters whose input is never a live
  ///   heap token, e.g. the source).
  void add_filter(filter_mode mode, std::function<void*(void*)> fn,
                  std::function<void(void*)> destroy = {});

  /// Execute until the source is exhausted and all tokens retired. If any
  /// filter threw, rethrows the first such exception after the worker pool
  /// has drained and every in-flight token has been reclaimed.
  /// @param max_tokens maximum tokens in flight (TBB's pipeline capacity)
  /// @param num_threads worker thread count
  void run(std::size_t max_tokens, unsigned num_threads);

 private:
  struct filter {
    filter_mode mode;
    std::function<void*(void*)> fn;
    std::function<void(void*)> destroy;  // destroys one *input* item
    // serial_in_order state:
    std::uint64_t next_seq = 0;
    bool busy = false;
    std::map<std::uint64_t, void*> parked;  // seq -> item waiting to enter
  };

  struct token {
    std::uint64_t seq;
    void* data;
    std::size_t next_filter;
  };

  void worker_loop();
  bool try_take(token* out);
  /// Record the first failure, stop the source, and reclaim every queued
  /// and parked token so in_flight_ can reach zero. Caller holds mu_.
  void fail_locked(std::exception_ptr e);
  /// Destroy one token waiting to *enter* filters_[idx]. Caller holds mu_.
  void destroy_input_locked(std::size_t idx, void* data);

  std::vector<filter> filters_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<token> ready_;
  std::uint64_t next_token_seq_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t max_tokens_ = 1;
  bool input_done_ = false;
  std::exception_ptr err_;               // first failure (guarded by mu_)
  std::atomic<bool> cancelled_{false};   // lock-free poll for carrying workers
};

/// Typed filter shim: wraps In* -> Out* functions over the void* engine.
/// Ownership convention: items are heap-allocated; each filter consumes its
/// input and returns its output.
template <typename In, typename Out, typename F>
std::function<void*(void*)> make_filter(F fn) {
  return [fn = std::move(fn)](void* p) -> void* {
    std::unique_ptr<In> in(static_cast<In*>(p));
    std::unique_ptr<Out> out = fn(std::move(in));
    return out.release();
  };
}

}  // namespace hq::tbbpipe
