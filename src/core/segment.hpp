// Queue segments: fixed-size single-producer single-consumer circular
// buffers, chained into linked lists (paper Section 3.2).
//
// A segment is the unit of storage of a hyperqueue. Monotonic head/tail
// indices (masked into the power-of-two buffer) let one producer and one
// consumer share a segment race-free with only acquire/release ordering —
// invariants 4–6 of the paper guarantee at most one of each per segment.
// A producer/consumer pair that stays within one segment recycles it
// indefinitely: zero allocation in steady state.
//
// Memory layout (Section 5.1 "as fast as array accesses"): the consumer's
// `head` and the producer's `tail` live on separate cache lines, and each
// endpoint keeps a line-local cache of the *other* endpoint's index
// (Lamport '83 with the FastForward/rigtorp cached-index refinement, see
// conc/spsc_ring.hpp). The cached copy is a stale lower bound on the true
// index, so "cache says space/data available" is always safe; the remote
// line is re-read only when the segment *looks* full (producer) or empty
// (consumer). Steady-state push/pop therefore touches the caller's own
// line plus the data slots — zero remote-cache-line loads.
//
// The endpoint *roles* may migrate between tasks (and threads) over the
// queue's lifetime; every hand-off point (spawn view transfer, completion
// cascade, queue-view claim) carries a happens-before edge (queue_cb::mu or
// a release/acquire counter), so the plain index-cache fields never race.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "conc/cache.hpp"

namespace hq::detail {

/// How to move and destroy elements of the queue's value type; lets the
/// entire view/segment machinery be non-templated. The trivial_* flags and
/// batched hooks (filled in by make_element_ops<T>) let the hot path replace
/// per-element indirect calls with inline memcpy / no-ops; hand-rolled
/// instances that leave them defaulted keep the per-element behavior.
struct element_ops {
  std::size_t size = 0;
  std::size_t align = 0;
  /// Transfer is memcpy (T is trivially copyable AND trivially destructible:
  /// relocation = byte copy, no source destroy).
  bool trivial_copy = false;
  /// Destruction is a no-op (T is trivially destructible).
  bool trivial_destroy = false;
  /// Move-construct *dst from *src. Does NOT destroy src.
  void (*move_construct)(void* dst, void* src) noexcept = nullptr;
  void (*destroy)(void* p) noexcept = nullptr;
  /// Batched forms over `n` contiguous elements (optional; null falls back
  /// to per-element loops). move_construct_n does NOT destroy the sources.
  void (*move_construct_n)(void* dst, void* src, std::size_t n) noexcept = nullptr;
  void (*destroy_n)(void* p, std::size_t n) noexcept = nullptr;

  /// memcpy with the common small element sizes peeled so the compiler emits
  /// a single load/store pair instead of a libc dispatch.
  static void copy_sized(void* dst, const void* src, std::size_t n) noexcept {
    switch (n) {
      case 4: std::memcpy(dst, src, 4); break;
      case 8: std::memcpy(dst, src, 8); break;
      case 16: std::memcpy(dst, src, 16); break;
      default: std::memcpy(dst, src, n); break;
    }
  }
  void copy_bytes(void* dst, const void* src) const noexcept {
    copy_sized(dst, src, size);
  }

  /// Relocate one element: move *src into *dst and end src's lifetime
  /// (the pop direction — the source slot is retired).
  void relocate_one(void* dst, void* src) const noexcept {
    if (trivial_copy) {
      copy_bytes(dst, src);
    } else {
      move_construct(dst, src);
      if (!trivial_destroy) destroy(src);
    }
  }

  /// Relocate `n` contiguous elements (dst and src must not overlap).
  void relocate_range(void* dst, void* src, std::size_t n) const noexcept {
    if (trivial_copy) {
      std::memcpy(dst, src, n * size);
      return;
    }
    if (move_construct_n != nullptr) {
      move_construct_n(dst, src, n);
    } else {
      auto* d = static_cast<std::byte*>(dst);
      auto* s = static_cast<std::byte*>(src);
      for (std::size_t i = 0; i < n; ++i) move_construct(d + i * size, s + i * size);
    }
    destroy_range(src, n);
  }

  /// End the lifetime of `n` contiguous elements.
  void destroy_range(void* p, std::size_t n) const noexcept {
    if (trivial_destroy) return;
    if (destroy_n != nullptr) {
      destroy_n(p, n);
      return;
    }
    auto* b = static_cast<std::byte*>(p);
    for (std::size_t i = 0; i < n; ++i) destroy(b + i * size);
  }
};

/// Slow-event counters for the element data path (see queue_cb). The fast
/// path increments nothing; each field counts one kind of slow event, so
/// tests can assert the fast path stayed lock-free and line-local.
struct data_path_counters {
  std::atomic<std::uint64_t> head_reloads{0};  ///< producer re-read remote head
  std::atomic<std::uint64_t> tail_reloads{0};  ///< consumer re-read remote tail
  std::atomic<std::uint64_t> mu_data{0};       ///< consumer took queue_cb::mu
  std::atomic<std::uint64_t> mu_view{0};       ///< push side took mu (always 0
                                               ///< since the sharded rewrite;
                                               ///< kept so probes can pin it)
  std::atomic<std::uint64_t> seg_cache_hits{0};///< alloc served lock-free
  std::atomic<std::uint64_t> mu_attach{0};     ///< attach_spawn took mu (pop
                                               ///< FIFO registration only —
                                               ///< push spawns never do)
  std::atomic<std::uint64_t> mu_complete{0};   ///< completion took mu (pop
                                               ///< hand-back only — push
                                               ///< completions never do)
};

class segment {
 public:
  /// Allocate a segment with `capacity` element slots (must be a power of
  /// two) in a single allocation. `counters`, when non-null, receives the
  /// remote-index-reload counts (slow path only). `node` >= 0 places the
  /// allocation on that NUMA node (core/numa.hpp: page-granular, preference
  /// binding, first-touch fallback); node < 0 keeps the plain heap path.
  static segment* create(std::uint64_t capacity, const element_ops* ops,
                         data_path_counters* counters = nullptr,
                         int node = -1);

  /// Free the segment's memory. Remaining elements must have been destroyed.
  static void destroy(segment* s);

  /// Bytes one segment of `capacity` slots occupies (header + alignment
  /// padding + slot array) — the unit of queue memory-budget accounting
  /// (queue_cb). Matches what create() actually allocates on the heap path;
  /// node-homed arenas round up to pages on top of this.
  static std::size_t footprint_bytes(std::uint64_t capacity,
                                     const element_ops* ops) noexcept;

  segment(const segment&) = delete;
  segment& operator=(const segment&) = delete;

  [[nodiscard]] std::uint64_t capacity() const noexcept { return mask + 1; }

  /// Producer: relocate the element at `src` into the segment. Returns false
  /// when full (caller allocates and links a fresh segment).
  bool try_push(void* src) noexcept {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    if (t - head_cache > mask && !reload_head(t)) [[unlikely]] return false;
    // esize_/trivial_ are header-cached copies of the ops fields: one load
    // off the slot-address dependency chain per element.
    void* dst = slot(t);
    if (trivial_) [[likely]] {
      element_ops::copy_sized(dst, src, esize_);
    } else {
      ops->move_construct(dst, src);
    }
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Producer: reserve a contiguous run of up to `want` free slots at the
  /// tail (Section 5.2 write slice). Returns the first slot and sets
  /// *granted (0 with nullptr when full). Elements must be constructed in
  /// order, then published with publish_write.
  void* acquire_write(std::uint64_t want, std::uint64_t* granted) noexcept {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    // The run up to the wrap point is only ever zero when no slot is free at
    // all, so the remote head is consulted only on apparent-full.
    if (t - head_cache > mask && !reload_head(t)) {
      *granted = 0;
      return nullptr;
    }
    const std::uint64_t free_total = capacity() - (t - head_cache);
    const std::uint64_t contig = capacity() - (t & mask);
    const std::uint64_t run = contig < free_total ? contig : free_total;
    *granted = want < run ? want : run;
    return slot(t);
  }

  /// Producer: publish `produced` elements constructed in the last
  /// acquire_write window.
  void publish_write(std::uint64_t produced) noexcept {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    // head_cache is a lower bound on head and granted the window, so this
    // bound is valid without re-reading the remote index.
    assert(t + produced - head_cache <= capacity());
    tail.store(t + produced, std::memory_order_release);
  }

  /// Consumer: is an element available right now? Refreshes the cached tail
  /// only when the segment looks empty.
  [[nodiscard]] bool readable() noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    return h != tail_cache || reload_tail(h);
  }

  /// Consumer: pop the head element into `dst` if one is ready. Returns
  /// false when the segment is empty (after refreshing the cached tail).
  /// Fuses readable() + pop_into() into a single head load.
  bool try_pop_into(void* dst) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h == tail_cache && !reload_tail(h)) [[unlikely]] return false;
    void* s = slot(h);
    if (trivial_) [[likely]] {
      element_ops::copy_sized(dst, s, esize_);
    } else {
      ops->relocate_one(dst, s);
    }
    head.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: move the head element into `dst` and retire the slot.
  /// Precondition: readable().
  void pop_into(void* dst) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    // After readable() the cached tail already proves the precondition; the
    // acquire reload is assert-only fallback for direct (test/bench) use.
    assert(h < tail_cache || h < tail.load(std::memory_order_acquire));
    void* s = slot(h);
    if (trivial_) [[likely]] {
      element_ops::copy_sized(dst, s, esize_);
    } else {
      ops->relocate_one(dst, s);
    }
    head.store(h + 1, std::memory_order_release);
  }

  /// Consumer: relocate up to `max` elements into the contiguous array at
  /// `dst` (uninitialized storage). Returns the number transferred (0 when
  /// the segment is empty).
  std::uint64_t pop_n_into(void* dst, std::uint64_t max) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h == tail_cache && !reload_tail(h)) return 0;
    std::uint64_t n = tail_cache - h;
    if (max < n) n = max;
    auto* out = static_cast<std::byte*>(dst);
    std::uint64_t done = 0;
    while (done < n) {  // at most two contiguous runs (ring wrap)
      const std::uint64_t contig = capacity() - ((h + done) & mask);
      const std::uint64_t run = contig < n - done ? contig : n - done;
      ops->relocate_range(out + done * esize_, slot(h + done), run);
      done += run;
    }
    head.store(h + n, std::memory_order_release);
    return n;
  }

  /// Consumer: contiguous run of up to `want` ready elements at the head
  /// (Section 5.2 read slice). Returns the first slot and sets *granted
  /// (0 with nullptr when empty).
  void* acquire_read(std::uint64_t want, std::uint64_t* granted) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h == tail_cache && !reload_tail(h)) {
      *granted = 0;
      return nullptr;
    }
    const std::uint64_t avail = tail_cache - h;
    const std::uint64_t contig = capacity() - (h & mask);
    const std::uint64_t run = contig < avail ? contig : avail;
    *granted = want < run ? want : run;
    return slot(h);
  }

  /// Consumer: destroy and retire the first `consumed` ready elements.
  void retire_read(std::uint64_t consumed) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    assert(consumed <= tail.load(std::memory_order_acquire) - h);
    if (!ops->trivial_destroy) {
      std::uint64_t done = 0;
      while (done < consumed) {  // wrap-aware: at most two runs
        const std::uint64_t contig = capacity() - ((h + done) & mask);
        const std::uint64_t run = contig < consumed - done ? contig : consumed - done;
        ops->destroy_range(slot(h + done), run);
        done += run;
      }
    }
    head.store(h + consumed, std::memory_order_release);
  }

  /// Destroy all elements still stored (queue teardown; single-threaded).
  void destroy_remaining() noexcept {
    std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    while (h < t) {
      const std::uint64_t contig = capacity() - (h & mask);
      const std::uint64_t run = contig < t - h ? contig : t - h;
      ops->destroy_range(slot(h), run);
      h += run;
    }
    head.store(t, std::memory_order_relaxed);
  }

  /// Reset to pristine state for reuse from the segment free list.
  void reset() noexcept {
    assert(head.load(std::memory_order_relaxed) == tail.load(std::memory_order_relaxed));
    next.store(nullptr, std::memory_order_relaxed);
    head.store(0, std::memory_order_relaxed);
    tail.store(0, std::memory_order_relaxed);
    tail_cache = 0;
    head_cache = 0;
  }

  void* slot(std::uint64_t index) noexcept {
    return storage_ + (index & mask) * esize_;
  }

  // Line 0 (shared, cold): the chain link is written once per segment
  // lifetime; the rest is immutable. esize_/trivial_ mirror ops->size /
  // ops->trivial_copy so the per-element path loads them without the extra
  // ops-> indirection.
  std::atomic<segment*> next{nullptr};
  const std::uint64_t mask;
  const element_ops* const ops;

  // Line 1 (consumer-owned): head plus the consumer's cache of tail. The
  // producer reads `head` only on its apparent-full slow path.
  alignas(kCacheLine) std::atomic<std::uint64_t> head{0};
  std::uint64_t tail_cache = 0;

  // Line 2 (producer-owned): tail plus the producer's cache of head. The
  // consumer reads `tail` only on its apparent-empty slow path.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail{0};
  std::uint64_t head_cache = 0;

 private:
  segment(std::uint64_t capacity, const element_ops* o, std::byte* storage,
          data_path_counters* counters, std::size_t map_bytes)
      : mask(capacity - 1),
        ops(o),
        esize_(o->size),
        trivial_(o->trivial_copy),
        storage_(storage),
        counters_(counters),
        map_bytes_(map_bytes) {}
  ~segment() = default;

  /// Monitoring-grade counter bump: a plain load+store pair instead of a
  /// locked RMW. Each counter is written by one endpoint role at a time
  /// (both accesses are atomic, so concurrent writers from different
  /// segments lose updates but never race); a depth-1 consumer reloads on
  /// every poll, and a lock prefix there would cost more than the reload.
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  /// Producer slow path: re-read the remote head. True when space exists.
  bool reload_head(std::uint64_t t) noexcept {
    head_cache = head.load(std::memory_order_acquire);
    if (counters_ != nullptr) bump(counters_->head_reloads);
    return t - head_cache <= mask;
  }

  /// Consumer slow path: re-read the remote tail. True when data exists.
  bool reload_tail(std::uint64_t h) noexcept {
    tail_cache = tail.load(std::memory_order_acquire);
    if (counters_ != nullptr) bump(counters_->tail_reloads);
    return h != tail_cache;
  }

  const std::uint64_t esize_;
  const bool trivial_;
  std::byte* const storage_;
  data_path_counters* const counters_;
  /// Mapping size when numa-allocated (destroy must munmap exactly what
  /// create mapped); 0 marks the plain heap path.
  const std::size_t map_bytes_;
};

}  // namespace hq::detail
