// Blocking bounded MPMC queue (mutex + condition variables).
//
// This is the inter-stage queue of the POSIX-threads pipeline baseline; the
// PARSEC pthreads versions of ferret/dedup use exactly this structure, so the
// baseline faithfully reproduces their synchronization cost profile.
// A closed() state implements end-of-stream propagation between stages.
//
// Cancellation: both blocking waits have `closed_` in their predicate, so
// close() *is* the cancellation poll — a failing stage closes every queue of
// the pipeline, which unblocks all producers (push returns false) and
// consumers (pop drains then returns nullopt) without any spin polling.
// drain() then recovers the not-yet-consumed items so the teardown path can
// destroy their payloads leak-free.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace hq {

/// Bounded FIFO with blocking push/pop and end-of-stream close semantics.
template <typename T>
class bounded_queue {
 public:
  explicit bounded_queue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full. Returns false iff the queue was closed (the value is
  /// dropped in that case).
  bool push(T value) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt when the queue is closed *and*
  /// drained — the end-of-stream signal for consumer threads.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop used by polling consumers.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Marks end-of-stream: producers fail fast, consumers drain then stop.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Close and take every buffered item (failure teardown): the caller owns
  /// the returned items and destroys any heap payloads they carry.
  [[nodiscard]] std::deque<T> drain() {
    std::deque<T> out;
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
      out.swap(items_);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return out;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hq
