// Fixed-width table printer for the benchmark harnesses: every bench binary
// regenerating a paper table/figure prints through this, so outputs are
// uniform and grep-able in bench_output.txt.
#pragma once

#include <string>
#include <vector>

namespace hq::util {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Append a row (stringify numbers with `cell`).
  void add_row(std::vector<std::string> cells);

  static std::string cell(double v, int precision = 3);
  static std::string cell(std::uint64_t v);
  static std::string cell(long v);
  static std::string cell(int v);

  /// Render with aligned columns, a header rule, and an optional title.
  [[nodiscard]] std::string str(const std::string& title = "") const;
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hq::util
