#include "core/queue_cb.hpp"

#include <bit>
#include <chrono>
#include <cstdlib>

#include "conc/backoff.hpp"
#include "core/fault.hpp"
#include "sched/scheduler.hpp"

namespace hq::detail {

namespace {

/// One step of a blocking wait: run a ready task if possible, else back off.
/// Keeping the worker executing tasks while "blocked" is what makes the
/// paper's block-the-worker policy live-lock free even on one worker.
void wait_step(backoff& bo) {
  scheduler* s = scheduler::current();
  if (s != nullptr && s->help_one()) {
    bo.reset();
  } else {
    bo.pause();
  }
}

/// Cancellation poll for *data* waits (wait_data / ensure_pos /
/// sync_children): once a failure cancels the run, a producer this consumer
/// blocks on may never push or close again — throwing cancel_unwind unwinds
/// the stage body instead of deadlocking. detach_owner's teardown wait must
/// NOT throw (it runs during unwind, from hyperqueue destructors) and keeps
/// the plain wait_step loop; its children always complete under cancellation
/// because frame bodies are skipped.
void throw_if_run_cancelled() {
  scheduler* s = scheduler::current();
  if (s != nullptr && s->cancelled()) [[unlikely]]
    throw cancel_unwind{};
}

/// Attachments recycle through the calling scheduler's per-worker attach
/// pool (sched/obj_pool.hpp); both calls always run on a worker of the
/// scheduler that owns the enclosing task (spawn-argument resolution and
/// completion hooks execute there), so alloc and free hit the same pool.
qattach* alloc_qattach() {
  if (scheduler* s = scheduler::current()) {
    unsigned owner = kPoolExternal;
    void* mem = s->alloc_attach_block(&owner);
    auto* a = ::new (mem) qattach();
    a->pool_sched = s;
    a->pool_owner = owner;
    return a;
  }
  return new qattach();
}

void free_qattach(qattach* a) {
  scheduler* s = a->pool_sched;
  if (s == nullptr) {
    delete a;
    return;
  }
  const unsigned owner = a->pool_owner;
  a->~qattach();
  s->free_attach_block(a, owner);
}

/// HQ_QUEUE_BUDGET: default per-queue memory budget in bytes, with an
/// optional binary K/M/G suffix ("256K", "4M"). Unset, empty or "0" means
/// unlimited. Parsed once; every queue constructed without an explicit
/// budget picks this up.
std::uint64_t env_default_budget() {
  static const std::uint64_t cached = [] {
    const char* e = std::getenv("HQ_QUEUE_BUDGET");
    if (e == nullptr || *e == '\0') return std::uint64_t{0};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(e, &end, 10);
    std::uint64_t mult = 1;
    if (end != nullptr) {
      switch (*end) {
        case 'k': case 'K': mult = std::uint64_t{1} << 10; break;
        case 'm': case 'M': mult = std::uint64_t{1} << 20; break;
        case 'g': case 'G': mult = std::uint64_t{1} << 30; break;
        default: break;
      }
    }
    return static_cast<std::uint64_t>(v) * mult;
  }();
  return cached;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

queue_cb::queue_cb(element_ops o, std::uint64_t segment_capacity,
                   std::uint64_t budget_bytes)
    : ops(o),
      seg_capacity(std::bit_ceil(segment_capacity < 2 ? std::uint64_t{2}
                                                      : segment_capacity)),
      seg_bytes_(segment::footprint_bytes(seg_capacity, &ops)) {
  if (budget_bytes == 0) budget_bytes = env_default_budget();
  if (budget_bytes != 0) set_memory_budget(budget_bytes);
}

void queue_cb::set_memory_budget(std::uint64_t bytes) noexcept {
  budget_bytes_.store(bytes, std::memory_order_relaxed);
  std::uint64_t segs = 0;
  if (bytes != 0) {
    segs = bytes / seg_bytes_;
    // Enforce at the structural minimum: below kShardMinSegs the exemption
    // in budget_wait would make the cap vacuous anyway, and advertising a
    // tighter number than the runtime can honor helps nobody.
    if (segs < kShardMinSegs) segs = kShardMinSegs;
  }
  budget_segs_.store(segs, std::memory_order_relaxed);
}

queue_cb::~queue_cb() {
  assert(owner == nullptr && "queue control block released before detach_owner");
  // Drain the one-slot cache and the segment free list.
  if (segment* s = seg_cache_.exchange(nullptr, std::memory_order_relaxed)) {
    segment::destroy(s);
    seg_live.fetch_sub(1, std::memory_order_relaxed);
  }
  while (free_list != nullptr) {
    segment* s = free_list;
    free_list = s->next.load(std::memory_order_relaxed);
    s->reset();
    segment::destroy(s);
    seg_live.fetch_sub(1, std::memory_order_relaxed);
  }
  assert(seg_live.load(std::memory_order_relaxed) == 0 &&
         "segment leak: some segment was never reachable from the scan list");
}

void queue_cb::release() noexcept {
  if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
}

segment* queue_cb::alloc_segment() {
  const std::uint64_t in_use = seg_in_use.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = seg_high_water.load(std::memory_order_relaxed);
  while (in_use > hw &&
         !seg_high_water.compare_exchange_weak(hw, in_use,
                                               std::memory_order_relaxed)) {
  }
  // Lock-free front of the pool: the steady-state ring recycle (consumer
  // recycles the drained segment, producer allocates the next wrap) is
  // served entirely by this one-slot cache. The acquire pairs with the
  // release in recycle_segment so the reset() state is visible.
  if (segment* s = seg_cache_.exchange(nullptr, std::memory_order_acquire)) {
    seg_recycled.fetch_add(1, std::memory_order_relaxed);
    dp_.seg_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  {
    std::lock_guard<spinlock> lk(free_mu);
    if (free_list != nullptr) {
      segment* s = free_list;
      free_list = s->next.load(std::memory_order_relaxed);
      s->next.store(nullptr, std::memory_order_relaxed);
      seg_recycled.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
  }
  // Fresh segment: home it on the queue's pinned node when set, else on the
  // allocating worker's node (-1 on unplaced workers keeps the heap path —
  // the pre-topology behavior, byte for byte).
  int node = home_node_.load(std::memory_order_relaxed);
  if (node < 0) node = scheduler::current_worker_node();
  segment* s;
  try {
    s = segment::create(seg_capacity, &ops, &dp_, node);
  } catch (...) {
    // Roll back the in-use count so a failed (real or injected) allocation
    // leaves the counters consistent for teardown and the next run.
    seg_in_use.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  seg_live.fetch_add(1, std::memory_order_relaxed);
  seg_fresh.fetch_add(1, std::memory_order_relaxed);
  return s;
}

void queue_cb::recycle_segment(segment* s) {
  s->reset();
  seg_in_use.fetch_sub(1, std::memory_order_relaxed);
  segment* expected = nullptr;
  if (seg_cache_.compare_exchange_strong(expected, s, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<spinlock> lk(free_mu);
  s->next.store(free_list, std::memory_order_relaxed);
  free_list = s;
}

pshard* queue_cb::alloc_shard() {
  const std::uint64_t live =
      shards_live_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = shards_peak_.load(std::memory_order_relaxed);
  while (peak < live && !shards_peak_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  // Shards share the scheduler's attach pool (its block size covers both
  // record types), so steady-state spawn churn recycles shard records with
  // the same zero-malloc guarantee as attachments.
  if (scheduler* s = scheduler::current()) {
    unsigned owner = kPoolExternal;
    void* mem = s->alloc_attach_block(&owner);
    auto* sh = ::new (mem) pshard();
    sh->pool_sched = s;
    sh->pool_owner = owner;
    return sh;
  }
  return new pshard();
}

void queue_cb::free_shard(pshard* sh) {
  shards_live_.fetch_sub(1, std::memory_order_relaxed);
  scheduler* s = sh->pool_sched;
  if (s == nullptr) {
    delete sh;
    return;
  }
  const unsigned owner = sh->pool_owner;
  sh->~pshard();
  s->free_attach_block(sh, owner);
}

void queue_cb::splice_after(pshard* sp, pshard* first, pshard* last) {
  // Only the task owning `sp` (its current open shard) calls this, so the
  // insertion point has exactly one writer: pre-link the new records, then
  // publish them and close the shard with one release store. A consumer
  // reads sp->next only after observing sp->closed with acquire, which also
  // makes every segment pushed into sp before the close visible.
  last->next.store(sp->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sp->next.store(first, std::memory_order_relaxed);
  sp->closed.store(true, std::memory_order_release);
}

qattach* queue_cb::my_attachment([[maybe_unused]] std::uint8_t need) {
  task_frame* fr = current_frame();
  assert(fr != nullptr && "hyperqueue operations are only valid inside a task");
  for (qattach* a : fr->attachments) {
    if (a->q == this) {
      assert((a->priv & need) == need && "task lacks the required queue privilege");
      return a;
    }
  }
  assert(!"task has no privileges on this hyperqueue");
  return nullptr;
}

void queue_cb::attach_owner(task_frame* owner_frame) {
  assert(owner_frame != nullptr &&
         "construct hyperqueues inside a task (e.g. the scheduler::run root)");
  // Single-task context: nothing else can reach the queue yet, no lock.
  qattach* a = alloc_qattach();
  a->q = this;
  a->frame = owner_frame;
  a->priv = kPrivPush | kPrivPop;
  // Invariant 1: a hyperqueue always holds at least one segment. The owner's
  // shard starts with it, and the scan position starts there too.
  pshard* sh = alloc_shard();
  segment* s0;
  try {
    s0 = alloc_segment();
  } catch (...) {
    // Allocation failure constructing the queue (real or injected,
    // alloc@segment.alloc): neither record is registered anywhere yet, so
    // return them to the attach pool before the throw reaches the ctor.
    free_shard(sh);
    free_qattach(a);
    throw;
  }
  sh->head.store(s0, std::memory_order_relaxed);
  sh->tail = s0;
  sh->live_segs.store(1, std::memory_order_relaxed);
  a->my_shard = sh;
  a->has_pos = true;
  a->pos_shard = sh;
  a->pos_seg = s0;
  assert(owner == nullptr);
  owner = a;
  owner_frame->attachments.push_back(a);
}

void queue_cb::detach_owner() {
  qattach* a = owner;
  assert(a != nullptr);
  assert(current_frame() == a->frame &&
         "hyperqueue must be destroyed by the task that created it");
  // Wait for every task spawned on this queue (children complete bottom-up,
  // so direct children suffice), helping the scheduler meanwhile. The
  // acquire pairs with the completion-time release decrement, making every
  // child's shard closes and scan-position hand-backs visible.
  backoff bo;
  while (a->live_children.load(std::memory_order_acquire) != 0) wait_step(bo);
  // Single-threaded teardown. Every completed consumer handed the scan
  // position back up the spawn tree, so it has returned to the owner;
  // everything before it was already retired by the scan.
  assert(a->has_pos && "scan position must return to the owner");
  assert(a->live_pop_children.load(std::memory_order_relaxed) == 0);
  pshard* sh = a->pos_shard;
  segment* s = a->pos_seg;
  while (sh != nullptr) {
    if (s == nullptr) s = sh->head.load(std::memory_order_relaxed);
    while (s != nullptr) {
      segment* n = s->next.load(std::memory_order_relaxed);
      s->destroy_remaining();
      s->next.store(nullptr, std::memory_order_relaxed);
      segment::destroy(s);
      seg_live.fetch_sub(1, std::memory_order_relaxed);
      s = n;
    }
    pshard* nx = sh->next.load(std::memory_order_relaxed);
    free_shard(sh);
    sh = nx;
  }
  a->frame->attachments.erase_value(a);
  owner = nullptr;
  free_qattach(a);
}

qattach* queue_cb::attach_spawn(task_frame* child, std::uint8_t priv) {
  assert(priv != 0);
  // Allocation, privilege lookup, refcounting, shard splicing and hook
  // registration all happen lock-free on the spawning task's thread: the
  // splice only touches the spawner's own current shard, and the child is
  // not yet visible to anyone. Only the pop-FIFO registration below needs
  // the lock.
  qattach* pa = my_attachment(priv);  // asserts the subset-privilege rule
  qattach* ca = alloc_qattach();
  ca->q = this;
  ca->frame = child;
  ca->parent = pa;
  ca->priv = priv;

  pa->live_children.fetch_add(1, std::memory_order_relaxed);

  if ((priv & kPrivPush) != 0) {
    // Push-capable child: close the parent's current shard and splice in the
    // child's shard followed by the parent's continuation — the lock-free
    // equivalent of the paper's user-view transfer (Section 4.2). The merge
    // order is fixed here, at the spawn point, which is what keeps the
    // consumer's scan deterministic regardless of execution interleaving.
    pshard* sp = pa->my_shard;
    assert(sp != nullptr && "push spawns require a push-capable parent");
    pshard* sc = alloc_shard();
    pshard* sp2 = alloc_shard();
    sc->next.store(sp2, std::memory_order_relaxed);
    splice_after(sp, sc, sp2);
    pa->my_shard = sp2;
    ca->my_shard = sc;
    pa->live_push_children.fetch_add(1, std::memory_order_relaxed);
  } else if (pa->my_shard != nullptr) {
    // Pop-only child of a push-capable parent: the parent's pushes so far
    // are visible to the child, later ones are not (they follow the child
    // in program order). Freeze that boundary by closing the parent's shard;
    // only the continuation is spliced in.
    pshard* sp = pa->my_shard;
    pshard* sp2 = alloc_shard();
    splice_after(sp, sp2, sp2);
    pa->my_shard = sp2;
    ca->end_shard = sp;
  } else {
    // Pop-only child of a pop-only parent: same visible range, no splice.
    ca->end_shard = pa->end_shard;
    assert(ca->end_shard != nullptr);
  }

  if ((priv & kPrivPop) != 0) {
    std::lock_guard<std::mutex> lk(mu);
    dp_.mu_attach.fetch_add(1, std::memory_order_relaxed);
    // The scan position follows the consumer in pop FIFO order. Take it from
    // the parent only when no older pop sibling is live: if one is, the
    // position either sits with that sibling or is parked here in transit to
    // it (a completed sibling hands it back to the parent, and the FIFO
    // successor claims it lazily — see ensure_pos). Grabbing it for this
    // younger child would strand the older sibling waiting for a position
    // held by a task that cannot run before it: deadlock.
    if (pa->live_pop_children.load(std::memory_order_relaxed) == 0 &&
        pa->has_pos) {
      ca->has_pos = true;
      ca->pos_shard = pa->pos_shard;
      ca->pos_seg = pa->pos_seg;
      pa->has_pos = false;
    }
    // Scheduling rule 3: pop-privileged tasks of one parent run FIFO. The
    // predecessor's frame is still valid here — its completion hook clears
    // last_pop_child under this same mu before the frame is freed.
    if (pa->last_pop_child != nullptr) {
      task_frame::depend(child, pa->last_pop_child->frame);
    }
    pa->last_pop_child = ca;
    pa->live_pop_children.fetch_add(1, std::memory_order_relaxed);
  }

  child->attachments.push_back(ca);
  add_ref();
  child->completion_hooks.push_back(hook_fn([this, ca] {
    on_task_complete(ca);
    release();
  }));
  return ca;
}

void queue_cb::on_task_complete(qattach* a) {
  qattach* pa = a->parent;
  assert(pa != nullptr);
  assert(a->live_children.load(std::memory_order_relaxed) == 0 &&
         "children must complete before their parent (implicit sync)");

  if ((a->priv & kPrivPush) != 0) {
    // "Return from spawn" (Section 4.2): this producer's span can no longer
    // grow. One release store replaces the mutex-guarded reduction cascade —
    // a finishing producer never blocks a live one. The scan-order successor
    // was linked at spawn time, so the consumer advances right past.
    a->my_shard->closed.store(true, std::memory_order_release);
    pa->live_push_children.fetch_sub(1, std::memory_order_release);
  }

  if ((a->priv & kPrivPop) != 0) {
    std::lock_guard<std::mutex> lk(mu);
    dp_.mu_complete.fetch_add(1, std::memory_order_relaxed);
    // Hand the scan position back to the parent; the FIFO-next consumer
    // claims it lazily (ensure_pos).
    if (a->has_pos) {
      assert(!pa->has_pos && "two scan positions (invariant 2)");
      pa->has_pos = true;
      pa->pos_shard = a->pos_shard;
      pa->pos_seg = a->pos_seg;
      a->has_pos = false;
    }
    if (pa->last_pop_child == a) pa->last_pop_child = nullptr;
    // Release: pairs with the acquire load on the parent's consumer fast
    // path; the hand-back above must be visible to a parent that observes
    // the decremented count without taking mu.
    pa->live_pop_children.fetch_sub(1, std::memory_order_release);
  }

  // Release: pairs with the acquire loads in sync_children/detach_owner.
  pa->live_children.fetch_sub(1, std::memory_order_release);
  a->frame = nullptr;
  free_qattach(a);
}

// ---------------------------------------------------------------- producer

void queue_cb::budget_wait(qattach* a, pshard* sh) {
  std::uint64_t limit = budget_segs_.load(std::memory_order_relaxed);
  if (limit == 0) [[likely]] return;
  // Structural exemption, and the whole deadlock-freedom argument: a naive
  // global wait can strand a producer forever behind segments the consumer
  // cannot reach (e.g. a completed fast sibling's full shard that sits
  // *later* in scan order than the slow shard the consumer is parked on).
  // But the consumer always sits on some shard X in scan order and can
  // drain X down to its open tail segment, recycling the rest — so as long
  // as a producer holding fewer than kShardMinSegs live segments may always
  // link another one, X's producer in particular can always make progress,
  // the consumer eventually passes X, and every wait ahead of it unblocks
  // by induction over the scan order. Peak footprint stays within budget +
  // (kShardMinSegs per concurrently-exempt producer shard) — the structural
  // slack any correct cap must concede.
  if (sh->live_segs.load(std::memory_order_relaxed) < kShardMinSegs) return;
  // Tasks holding pop privilege drain this queue themselves: their own pops
  // are what would free segments, so parking them on the budget would be a
  // self-deadlock. The budget governs pure producers.
  if ((a->priv & kPrivPop) != 0) return;
  if (seg_in_use.load(std::memory_order_relaxed) < limit) return;

  // Over budget: cooperative throttle. Pause-only, deliberately NOT
  // help-first: helping from a producer-side wait can nest a consumer task
  // on this very stack, and a consumer blocks indefinitely on the open
  // shard of the producer suspended beneath it — a guaranteed deadlock on
  // one worker. Pausing instead keeps the stack clean; the consumer drains
  // from another worker and its recycles reopen the budget. When no worker
  // can run the consumer at all (e.g. a single worker occupied by this very
  // wait), the wait detects the lack of recycle progress and escapes: it
  // allocates over budget rather than deadlocking, counted in
  // budget_overruns. Hard cap whenever the consumer is runnable — the
  // overload case that matters — degrading to a slow soft cap only on
  // schedules where a hard cap is impossible without task suspension.
  // Cancellable (a failed run unwinds the wait) and watchdog-visible
  // (throttle_begin marks the worker, throttle_tick keeps the progress
  // counter moving so backpressure is never misread as a stall).
  scheduler* sc = scheduler::current();
  if (sc != nullptr) sc->throttle_begin(this);
  throttle_waits_.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  backoff bo;
  std::uint64_t last_recycled = seg_recycled.load(std::memory_order_relaxed);
  std::uint32_t stalled_iters = 0;
  try {
    for (;;) {
      limit = budget_segs_.load(std::memory_order_relaxed);
      if (limit == 0 || seg_in_use.load(std::memory_order_relaxed) < limit ||
          sh->live_segs.load(std::memory_order_relaxed) < kShardMinSegs) {
        break;
      }
      throw_if_run_cancelled();
      const std::uint64_t rec = seg_recycled.load(std::memory_order_relaxed);
      if (rec != last_recycled) {
        last_recycled = rec;
        stalled_iters = 0;
        bo.reset();
      } else if (bo.is_yielding() && ++stalled_iters > kBudgetPatience) {
        budget_overruns_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (sc != nullptr) sc->throttle_tick();
      bo.pause();
    }
  } catch (...) {
    const std::uint64_t ns = elapsed_ns(t0);
    throttle_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (sc != nullptr) sc->throttle_end(ns);
    throw;
  }
  const std::uint64_t ns = elapsed_ns(t0);
  throttle_ns_.fetch_add(ns, std::memory_order_relaxed);
  if (sc != nullptr) sc->throttle_end(ns);
}

void queue_cb::push(void* src) {
  fault::delaypoint("queue.push");
  qattach* a = my_attachment(kPrivPush);
  pshard* sh = a->my_shard;
  if (segment* s = sh->tail) {
    if (s->try_push(src)) return;
    // Segment full: chain a fresh one (throttling first if the queue is at
    // its memory budget). We own the shard's tail, so the link needs no
    // lock.
    budget_wait(a, sh);
    segment* ns = alloc_segment();
    sh->live_segs.fetch_add(1, std::memory_order_relaxed);
    bool ok = ns->try_push(src);
    assert(ok);
    (void)ok;
    s->next.store(ns, std::memory_order_release);
    sh->tail = ns;
    return;
  }
  // First push into this shard: create the chain and publish its head. The
  // release store makes the element visible to the consumer the moment it
  // reaches this shard in scan order — no mutex, unlike the old early-
  // reduction path. (No budget_wait: a shard's first segment is always
  // structurally exempt.)
  segment* ns = alloc_segment();
  sh->live_segs.fetch_add(1, std::memory_order_relaxed);
  bool ok = ns->try_push(src);
  assert(ok);
  (void)ok;
  sh->tail = ns;
  sh->head.store(ns, std::memory_order_release);
}

void* queue_cb::write_slice(std::uint64_t want, std::uint64_t* count) {
  fault::delaypoint("queue.push");
  qattach* a = my_attachment(kPrivPush);
  if (want < 1) want = 1;
  if (want > seg_capacity) want = seg_capacity;
  pshard* sh = a->my_shard;
  if (segment* s = sh->tail) {
    // Grant the contiguous run even when shorter than `want`. Slices are
    // allowed to come back short (Section 5.2), and abandoning the segment
    // here would permanently strand its wrapped free space: a producer /
    // consumer pair that stays in step must ring-recycle one segment, not
    // leak a fresh one per wrap.
    if (void* p = s->acquire_write(want, count)) return p;
    // Segment truly full: chain a fresh one (throttling at the budget).
    budget_wait(a, sh);
    segment* ns = alloc_segment();
    sh->live_segs.fetch_add(1, std::memory_order_relaxed);
    s->next.store(ns, std::memory_order_release);
    sh->tail = ns;
    return ns->acquire_write(want, count);
  }
  segment* ns = alloc_segment();
  sh->live_segs.fetch_add(1, std::memory_order_relaxed);
  sh->tail = ns;
  sh->head.store(ns, std::memory_order_release);
  return ns->acquire_write(want, count);
}

void queue_cb::commit_write(std::uint64_t produced) {
  qattach* a = my_attachment(kPrivPush);
  assert(a->my_shard != nullptr && a->my_shard->tail != nullptr);
  a->my_shard->tail->publish_write(produced);
}

// ---------------------------------------------------------------- consumer

void queue_cb::ensure_pos(qattach* a) {
  assert((a->priv & kPrivPop) != 0);
  // Lock-free fast path: no live pop children (acquire — see qattach) and
  // the scan position already in hand. This is the Section 5.2 "as fast as
  // array accesses" precondition: a consumer streaming through ready data
  // never touches mu.
  if (a->live_pop_children.load(std::memory_order_acquire) == 0 && a->has_pos) {
    return;
  }
  backoff bo;
  for (;;) {
    // Program order: our own pops resume only after our pop children are
    // done (they are earlier in the serial elision). While any is live the
    // position cannot be ours, so do not touch mu; the acquire pairs with
    // the completion-time release so the hand-back below is visible.
    if (a->live_pop_children.load(std::memory_order_acquire) == 0) {
      if (a->has_pos) return;
      std::lock_guard<std::mutex> lk(mu);
      dp_.mu_data.fetch_add(1, std::memory_order_relaxed);
      if (a->has_pos) return;
      // Claim the scan position from an ancestor: after the previous
      // consumer completed, it travels back up the spawn tree.
      for (qattach* anc = a->parent; anc != nullptr; anc = anc->parent) {
        if (anc->has_pos) {
          a->has_pos = true;
          a->pos_shard = anc->pos_shard;
          a->pos_seg = anc->pos_seg;
          anc->has_pos = false;
          return;
        }
      }
    }
    throw_if_run_cancelled();
    wait_step(bo);
  }
}

segment* queue_cb::wait_data(qattach* a) {
  fault::delaypoint("queue.pop");
  ensure_pos(a);
  backoff bo;
  for (;;) {
    pshard* sh = a->pos_shard;
    segment* s = a->pos_seg;
    // Drain the shard's chain: return the first readable segment, recycle
    // drained interiors (with next set, no producer holds their tail).
    for (;;) {
      if (s == nullptr) {
        s = sh->head.load(std::memory_order_acquire);
        if (s != nullptr) a->pos_seg = s;
      }
      if (s != nullptr) {
        if (s->readable()) {
          a->ready_seg = s;
          return s;
        }
        if (segment* n = s->next.load(std::memory_order_acquire)) {
          if (s->readable()) {  // values committed before the link
            a->ready_seg = s;
            return s;
          }
          a->pos_seg = n;
          recycle_segment(s);
          // Unblocks the shard's producer at the budget: dropping below
          // kShardMinSegs re-arms its structural exemption.
          sh->live_segs.fetch_sub(1, std::memory_order_relaxed);
          s = n;
          continue;
        }
      }
      break;  // chain end (or headless shard) with nothing readable
    }
    if (sh == scan_end(a)) {
      // End of this task's visible range. For a push-capable task this is
      // its own open shard — only it can append. For a pop-only task the
      // end shard was closed at its spawn. Either way the failed poll above
      // was conclusive: no older-in-program-order producer can still push.
      a->ready_seg = nullptr;
      return nullptr;
    }
    if (sh->closed.load(std::memory_order_acquire)) {
      // The producer is done with this shard. Re-check once: pushes and
      // links made before the close are visible now (acquire).
      if (s == nullptr) {
        s = sh->head.load(std::memory_order_relaxed);
        if (s != nullptr) {
          a->pos_seg = s;
          continue;
        }
      } else if (s->readable() ||
                 s->next.load(std::memory_order_relaxed) != nullptr) {
        continue;
      }
      // Shard exhausted for good: retire its last segment and the shard
      // record, and advance to the scan-order successor (linked before the
      // close — the list tail is always the owner's open shard).
      pshard* nx = sh->next.load(std::memory_order_relaxed);
      assert(nx != nullptr && "closed non-terminal shard without successor");
      if (s != nullptr) recycle_segment(s);
      a->pos_shard = nx;
      a->pos_seg = nullptr;
      free_shard(sh);
      continue;
    }
    // Open shard of a live producer older in program order: block (helping)
    // until it pushes or closes — or the run cancels (the producer may then
    // never push again: its remaining frames skip their bodies).
    throw_if_run_cancelled();
    wait_step(bo);
  }
}

bool queue_cb::empty() {
  return consumer_ready(my_attachment(kPrivPop)) == nullptr;
}

void queue_cb::pop(void* dst) {
  qattach* a = my_attachment(kPrivPop);
  segment* s = consumer_ready(a);
  assert(s != nullptr && "pop() on a definitively empty hyperqueue");
  s->pop_into(dst);
}

std::uint64_t queue_cb::pop_n(void* dst, std::uint64_t max) {
  if (max == 0) return 0;
  qattach* a = my_attachment(kPrivPop);
  segment* s = consumer_ready(a);
  if (s == nullptr) return 0;
  const std::uint64_t n = s->pop_n_into(dst, max);
  assert(n > 0);
  return n;
}

void* queue_cb::read_slice(std::uint64_t want, std::uint64_t* count) {
  qattach* a = my_attachment(kPrivPop);
  if (want < 1) want = 1;
  segment* s = consumer_ready(a);
  if (s == nullptr) {
    *count = 0;
    return nullptr;
  }
  return s->acquire_read(want, count);
}

void queue_cb::commit_read(std::uint64_t consumed) {
  qattach* a = my_attachment(kPrivPop);
  assert(a->has_pos && a->pos_seg != nullptr);
  a->pos_seg->retire_read(consumed);
}

// ----------------------------------------------------------- selective sync

void queue_cb::sync_children(std::uint8_t priv_filter) {
  qattach* a = my_attachment(0);
  // Lock-free: the counters are decremented with release at completion, so
  // an acquire load observing zero also observes the children's effects.
  backoff bo;
  for (;;) {
    long pending;
    if (priv_filter == 0) {
      pending = a->live_children.load(std::memory_order_acquire);
    } else if ((priv_filter & kPrivPop) != 0) {
      pending = a->live_pop_children.load(std::memory_order_acquire);
    } else {
      pending = a->live_push_children.load(std::memory_order_acquire);
    }
    if (pending == 0) return;
    throw_if_run_cancelled();
    wait_step(bo);
  }
}

}  // namespace hq::detail
