#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace hq::util {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string table::cell(std::uint64_t v) { return std::to_string(v); }
std::string table::cell(long v) { return std::to_string(v); }
std::string table::cell(int v) { return std::to_string(v); }

std::string table::str(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      const std::string& s = c < cells.size() ? cells[c] : headers_[c];
      os << s;
      for (std::size_t pad = s.size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void table::print(const std::string& title) const {
  std::fputs(str(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace hq::util
