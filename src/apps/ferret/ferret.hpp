// ferret — content-based similarity search (PARSEC), rebuilt on synthetic
// images (see DESIGN.md substitutions).
//
// Pipeline (paper Figure 7):  input -> segment -> extract -> vector ->
// rank -> output, where input (recursive directory traversal + image load)
// and output are serial stages and the middle four are parallel.
//
// All five implementations (serial / pthreads / tbb / task-dataflow
// "objects" / hyperqueue) share the same kernels and must produce the same
// output checksum as the serial version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/datagen.hpp"

namespace hq::pipe {
class graph;
}

namespace hq::apps::ferret {

struct config {
  std::size_t num_images = 256;    // paper 'native': 3500
  std::size_t image_wh = 32;       // square images, image_wh^2 pixels
  std::size_t db_entries = 10240;  // feature database size (ranking cost knob)
  std::size_t dims = 96;           // feature vector dimensionality
  std::size_t topk = 16;          // neighbours reported per query
  unsigned threads = 1;           // worker threads / cores to use
  std::uint64_t seed = 42;
  std::size_t slice_batch = 16;   // items moved per queue slice (Section 5.2)
};

/// One image travelling through the pipeline.
struct item {
  std::uint64_t seq = 0;
  std::string path;
  std::uint64_t seed = 0;
  std::vector<float> pixels;
  std::vector<std::uint8_t> labels;   // segmentation output
  std::vector<float> features;        // extraction output
  std::vector<float> qvector;         // vectorization output
  std::vector<std::pair<float, std::uint32_t>> topk;  // ranking output
};

/// The feature database ranked against (built once per run).
struct feature_db {
  std::size_t entries = 0;
  std::size_t dims = 0;
  std::vector<float> data;  // entries x dims
};

feature_db build_db(const config& cfg);

// ---- stage kernels -------------------------------------------------------
// load: synthesize the image for `path` (the stand-in for disk I/O).
void k_load(const config& cfg, item* it);
// segment: small k-means over intensity, producing a label map.
void k_segment(const config& cfg, item* it);
// extract: per-segment moment features.
void k_extract(const config& cfg, item* it);
// vector: soft-assignment histogram into `dims` bins (the EMD prep).
void k_vector(const config& cfg, item* it);
// rank: exhaustive top-k scan of the database (dominant stage).
void k_rank(const config& cfg, const feature_db& db, item* it);
// output folding: must be applied in seq order (serial stage).
void k_output(std::uint64_t* checksum, const item& it);

/// Depth-first file list of the synthetic directory tree, in traversal
/// (serial-elision) order. The pthreads/hyperqueue input stages walk the
/// tree recursively themselves; this is the oracle order.
std::vector<std::string> traversal_order(const config& cfg);

struct result {
  std::uint64_t checksum = 0;
  double seconds = 0;
  // Segment-pool counters summed over the pipeline's queues (hyperqueue
  // variants only).
  std::size_t seg_allocated = 0;
  std::size_t seg_recycled = 0;
  std::size_t seg_high_water = 0;
};

result run_serial(const config& cfg);
/// Declarative 3-stage description (pipeline/builder.hpp): serial input ->
/// fused parallel middle (segment+extract+vector+rank) -> in-order output.
/// The pthreads/tbb/hyperqueue variants below all execute this one graph;
/// `cfg`, `db` and `checksum` must outlive the built graph.
void describe_pipeline(const config& cfg, const feature_db& db,
                       std::uint64_t* checksum, pipe::graph& g);
result run_pthreads(const config& cfg);
result run_tbb(const config& cfg);
result run_objects(const config& cfg);     // task dataflow, input not overlapped
/// Slice-based hyperqueue pipeline (the default; Section 5.2 batching).
result run_hyperqueue(const config& cfg);
/// Element-at-a-time hyperqueue pipeline (baseline for the slice bench).
result run_hyperqueue_element(const config& cfg);

/// Serial per-stage seconds {input, segment, extract, vector, rank, output}
/// for the Table 1 characterization.
std::vector<double> stage_times(const config& cfg);

}  // namespace hq::apps::ferret
