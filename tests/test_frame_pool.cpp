// Tests for the per-worker frame/attachment recycling pools
// (sched/obj_pool.hpp): steady-state pipelines must stop allocating task
// frames and qattaches after warm-up, recycling must survive cross-worker
// frees (frames are freed by whichever worker runs finish()), and the
// hq::call fast path must not depend on heap-allocated completion state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "hq.hpp"

namespace {

/// One steady-state round set: repeated bounded spawn bursts with a sync in
/// between, the regime the pool is sized for (in-flight frames << cap).
void spawn_rounds(hq::scheduler& sched, int rounds, int width) {
  sched.run([&] {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < width; ++i) hq::spawn([] {});
      hq::sync();
    }
  });
}

TEST(FramePool, SingleWorkerPlateausExactly) {
  // One worker makes recycling deterministic: after the warm-up rounds
  // every frame demand is served by the magazine — zero fresh allocations.
  // Both snapshots are taken inside one run() so no frame free is in
  // flight at observation time.
  hq::scheduler sched(1);
  hq::detail::obj_pool::stats_t warm, after;
  sched.run([&] {
    for (int r = 0; r < 20; ++r) {
      for (int i = 0; i < 64; ++i) hq::spawn([] {});
      hq::sync();
    }
    warm = sched.frame_pool_stats();
    for (int r = 0; r < 20; ++r) {
      for (int i = 0; i < 64; ++i) hq::spawn([] {});
      hq::sync();
    }
    after = sched.frame_pool_stats();
  });
  EXPECT_GT(warm.allocated, 0u);
  EXPECT_EQ(after.allocated, warm.allocated);
  EXPECT_GT(after.recycled, warm.recycled);
  EXPECT_EQ(after.high_water, warm.high_water);
}

TEST(FramePool, MultiWorkerSteadyState) {
  // With stealing, frames are freed on other workers and flow back through
  // the bounded return stacks. Timing jitter may let a later run transiently
  // exceed the warm-up peak, but the allocation count must plateau rather
  // than grow with work done: allow one burst of slack while recycling must
  // scale with the number of spawns.
  hq::scheduler sched(4);
  for (int i = 0; i < 4; ++i) spawn_rounds(sched, 30, 64);  // warm-up
  const auto warm = sched.frame_pool_stats();
  for (int i = 0; i < 10; ++i) spawn_rounds(sched, 30, 64);
  const auto after = sched.frame_pool_stats();
  // Fresh allocations may still trickle in while magazines rebalance across
  // workers (one burst per worker of slack), but must stay far below the
  // 10 × 30 × 64 = 19200 spawns executed — the pool, not malloc, carries
  // the volume.
  EXPECT_LE(after.allocated, warm.allocated + 4u * 64u);
  EXPECT_GE(after.recycled + after.allocated - warm.allocated,
            warm.recycled + 10u * 30u * 64u);
}

TEST(FramePool, QattachRecyclesInPipelines) {
  // Every hyperqueue spawn argument allocates one qattach, freed at task
  // completion by the completing worker. A repeated producer/consumer
  // pipeline must reach attach-pool steady state the same way frames do.
  hq::scheduler sched(1);
  auto pipeline = [] {
    hq::hyperqueue<int> q(64);
    for (int stage = 0; stage < 8; ++stage) {
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 32; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
    }
    long sum = 0;
    hq::spawn(
        [&sum](hq::popdep<int> qq) {
          while (!qq.empty()) sum += qq.pop();
        },
        (hq::popdep<int>)q);
    hq::sync();
    EXPECT_EQ(sum, 8L * 32 * 31 / 2);
  };
  hq::detail::obj_pool::stats_t warm, after;
  sched.run([&] {
    for (int i = 0; i < 3; ++i) pipeline();
    warm = sched.attach_pool_stats();
    for (int i = 0; i < 5; ++i) pipeline();
    after = sched.attach_pool_stats();
  });
  EXPECT_GT(warm.allocated, 0u);
  EXPECT_EQ(after.allocated, warm.allocated);
  EXPECT_GT(after.recycled, warm.recycled);
}

TEST(FramePool, CrossWorkerRecyclingTorture) {
  // Producer/consumer pipeline at 4 workers: frames and qattaches are
  // allocated on the spawning worker and freed wherever finish() runs.
  // Exercises the magazine return stacks under contention (sanitizer
  // coverage for the recycling hand-off) and checks the books balance.
  hq::scheduler sched(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    sched.run([&] {
      hq::hyperqueue<int> q(128);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 2000; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            long s = 0;
            while (!qq.empty()) s += qq.pop();
            sum.fetch_add(s);
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    ASSERT_EQ(sum.load(), 2000L * 1999 / 2);
  }
  const auto fp = sched.frame_pool_stats();
  EXPECT_GT(fp.recycled, 0u);
  EXPECT_LE(fp.live, fp.allocated);
  EXPECT_GE(fp.high_water, 1u);
}

TEST(FramePool, StatsAccountingConsistent) {
  hq::scheduler sched(2);
  spawn_rounds(sched, 10, 32);
  const auto fp = sched.frame_pool_stats();
  const auto ap = sched.attach_pool_stats();
  // Frames: allocations ever = fresh + recycled; everything spawned in a
  // completed run() has been freed except nothing (all tasks completed), so
  // at most the root-frame teardown is in flight.
  EXPECT_LE(fp.live, 1u);
  EXPECT_LE(fp.high_water, fp.allocated);
  EXPECT_LE(ap.live, 1u);
}

TEST(FramePool, CallUsesCallerStackFlag) {
  // hq::call waits on a stack-local completion flag (no shared_ptr per
  // call). Nested and repeated calls must complete and order correctly.
  hq::scheduler sched(2);
  sched.run([&] {
    long acc = 0;
    for (int i = 0; i < 100; ++i) {
      hq::call([&acc, i] { acc += i; });
    }
    EXPECT_EQ(acc, 99L * 100 / 2);
    int stage = 0;
    hq::call([&] {
      EXPECT_EQ(stage, 0);
      hq::call([&] { stage = 1; });
      EXPECT_EQ(stage, 1);
      stage = 2;
    });
    EXPECT_EQ(stage, 2);
  });
}

TEST(FramePool, SingleNodePlacementHasNoRemoteAllocs) {
  // Under compact placement on a single-node topology every worker's home
  // node is 0, every slab is carved node-0, and the cross-worker overflow
  // migration path — the only producer of remote blocks — cannot cross
  // nodes. The locality counters must therefore attribute every magazine-
  // served allocation as node-local; this also pins the accounting
  // identity node_local + remote == magazine-served allocations.
  const hq::topology topo = hq::topology::synthetic("1x4");
  hq::scheduler sched(4, {hq::placement_policy::compact, &topo, {}});
  for (int i = 0; i < 5; ++i) spawn_rounds(sched, 20, 64);
  for (const auto& pool :
       {sched.frame_pool_stats(), sched.attach_pool_stats()}) {
    EXPECT_EQ(pool.remote_allocs, 0u);
    EXPECT_LE(pool.node_local_allocs + pool.remote_allocs,
              pool.allocated + pool.recycled);
  }
  const auto fp = sched.frame_pool_stats();
  EXPECT_GT(fp.node_local_allocs, 0u);
  for (const auto& w : sched.per_worker_stats()) EXPECT_EQ(w.node, 0);
}

TEST(FramePool, TwoNodeTopologyCountsLocality) {
  // Synthetic 2-node model, workers split across the two logical nodes.
  // Locality is attributed from the logical node ids, so the counters are
  // meaningful even when the real machine can't honor the pins: every
  // alloc must be attributed, and remote allocs may only come from the
  // bounded-return migration path (a small fraction of the volume, but
  // timing-dependent — only the accounting identity is asserted).
  const hq::topology topo = hq::topology::synthetic("2x2");
  hq::scheduler sched(4, {hq::placement_policy::compact, &topo, {}});
  for (int i = 0; i < 5; ++i) spawn_rounds(sched, 20, 64);
  const auto fp = sched.frame_pool_stats();
  EXPECT_GT(fp.node_local_allocs, 0u);
  EXPECT_LE(fp.node_local_allocs + fp.remote_allocs,
            fp.allocated + fp.recycled);
}

TEST(FramePool, PoolCapEnvKnobStillRecycles) {
  // A tiny return-stack cap must not break correctness — blocks migrate to
  // the freeing worker instead of piling up at the owner.
  ::setenv("HQ_FRAME_POOL_CAP", "4", 1);
  {
    hq::scheduler sched(4);
    spawn_rounds(sched, 10, 128);
    const auto fp = sched.frame_pool_stats();
    EXPECT_GT(fp.allocated + fp.recycled, 0u);
  }
  ::unsetenv("HQ_FRAME_POOL_CAP");
}

}  // namespace
