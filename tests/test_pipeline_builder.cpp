// Stage-graph builder and runner tests: declaration-time misuse diagnostics,
// knob propagation into the execution plan and the auto-built queue graph,
// serial-elision-order recovery on every backend (including the multi-level
// reorder behind expand stages with irregular and zero fan-out), and
// runtime-fed queue placement (exec_result.queue_nodes must equal what
// plan_queue_placement derives from the graph's own attachment topology).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "pipeline/runner.hpp"
#include "sched/partition.hpp"

namespace {

using hq::pipe::backend;
using hq::pipe::edge_opts;
using hq::pipe::emit;
using hq::pipe::graph;
using hq::pipe::graph_error;
using hq::pipe::stage_kind;

// Mix a token's identity into a jittered delay so parallel activations
// finish out of order and the reorder machinery actually has work to do.
void jitter(std::uint64_t v) {
  std::this_thread::sleep_for(std::chrono::microseconds((v * 7) % 40));
}

// --------------------------------------------------------- misuse diagnostics

TEST(PipelineBuilder, ConnectRejectsTypeMismatch) {
  graph g;
  auto src = g.source<int>("src", [](emit<int> out) { out(1); });
  auto snk = g.sink<long>("snk", stage_kind::serial_in_order, [](long&&) {});
  EXPECT_THROW(g.connect(src, snk), graph_error);
}

TEST(PipelineBuilder, ConnectRejectsDoubleUse) {
  graph g;
  auto src = g.source<int>("src", [](emit<int> out) { out(1); });
  auto mid = g.stage<int, int>("mid", stage_kind::serial,
                               [](int&& v, emit<int> out) { out(std::move(v)); });
  auto snk = g.sink<int>("snk", stage_kind::serial_in_order, [](int&&) {});
  g.connect(src, mid);
  g.connect(mid, snk);
  EXPECT_THROW(g.connect(src, snk), graph_error);  // src output taken
  EXPECT_THROW(g.connect(mid, snk), graph_error);  // snk input taken
}

TEST(PipelineBuilder, ConnectRejectsEndpointMisuse) {
  graph g;
  auto src = g.source<int>("src", [](emit<int> out) { out(1); });
  auto snk = g.sink<int>("snk", stage_kind::serial_in_order, [](int&&) {});
  EXPECT_THROW(g.connect(snk, src), graph_error);  // from a sink, into a source
  EXPECT_THROW(g.connect(src, static_cast<hq::pipe::stage_id>(7)), graph_error);
}

TEST(PipelineBuilder, CompileRejectsIncompleteGraphs) {
  {
    graph g;
    EXPECT_THROW((void)g.compile(), graph_error);  // empty
  }
  {
    graph g;
    g.source<int>("src", [](emit<int> out) { out(1); });
    g.sink<int>("snk", stage_kind::serial_in_order, [](int&&) {});
    EXPECT_THROW((void)g.compile(), graph_error);  // declared but never wired
  }
  {
    graph g;  // a stage dangling off the chain
    auto src = g.source<int>("src", [](emit<int> out) { out(1); });
    auto snk = g.sink<int>("snk", stage_kind::serial_in_order, [](int&&) {});
    g.stage<int, int>("orphan", stage_kind::parallel,
                      [](int&& v, emit<int> out) { out(std::move(v)); });
    g.connect(src, snk);
    EXPECT_THROW((void)g.compile(), graph_error);
  }
  {
    graph g;  // two sinks
    auto src = g.source<int>("src", [](emit<int> out) { out(1); });
    g.sink<int>("a", stage_kind::serial_in_order, [](int&&) {});
    auto b = g.sink<int>("b", stage_kind::serial_in_order, [](int&&) {});
    g.connect(src, b);
    EXPECT_THROW((void)g.compile(), graph_error);
  }
}

TEST(PipelineBuilder, CompileRejectsParallelSink) {
  graph g;
  auto src = g.source<int>("src", [](emit<int> out) { out(1); });
  auto snk = g.sink<int>("snk", stage_kind::parallel, [](int&&) {});
  g.connect(src, snk);
  EXPECT_THROW((void)g.compile(), graph_error);
}

// ------------------------------------------------- knob and plan propagation

TEST(PipelineBuilder, KnobsTravelOnEdges) {
  graph g;
  auto src = g.source<int>("src", [](emit<int> out) { out(1); });
  auto mid = g.expand<int, int>("mid", stage_kind::parallel,
                                [](int&& v, emit<int> out) { out(std::move(v)); });
  auto snk = g.sink<int>("snk", stage_kind::serial_in_order, [](int&&) {});
  edge_opts a;
  a.capacity = 5;
  a.slice_batch = 3;
  a.segment_length = 32;
  a.bulk = false;
  a.traffic = 2.5;
  edge_opts b;
  b.capacity = 9;
  b.traffic = 7.0;
  g.connect(src, mid, a);
  g.connect(mid, snk, b);

  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge_at(0).opts.capacity, 5u);
  EXPECT_EQ(g.edge_at(0).opts.slice_batch, 3u);
  EXPECT_EQ(g.edge_at(0).opts.segment_length, 32u);
  EXPECT_FALSE(g.edge_at(0).opts.bulk);
  EXPECT_EQ(g.edge_at(1).opts.capacity, 9u);

  const auto plan = g.compile();
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_EQ(plan.order[0], src);
  EXPECT_EQ(plan.order[1], mid);
  EXPECT_EQ(plan.order[2], snk);
  ASSERT_EQ(plan.edge_depth.size(), 2u);
  EXPECT_EQ(plan.edge_depth[0], 1u);  // source seq only
  EXPECT_EQ(plan.edge_depth[1], 2u);  // + expand sub-seq

  // The attachment graph the placement partitioner consumes is derived from
  // the same declaration: chain positions as stage ids, declared traffic.
  const hq::queue_graph qg = g.build_queue_graph();
  EXPECT_EQ(qg.num_stages, 3u);
  ASSERT_EQ(qg.queues.size(), 2u);
  ASSERT_EQ(qg.queues[0].producers.size(), 1u);
  EXPECT_EQ(qg.queues[0].producers[0], 0u);
  EXPECT_EQ(qg.queues[0].consumer, 1u);
  EXPECT_DOUBLE_EQ(qg.queues[0].traffic, 2.5);
  EXPECT_EQ(qg.queues[1].consumer, 2u);
  EXPECT_DOUBLE_EQ(qg.queues[1].traffic, 7.0);
}

// ------------------------------------------------ in-order delivery recovery

// 1:1 parallel stage with jittered completion: the serial_in_order sink must
// still observe source order on every backend.
void check_linear_order(backend b, unsigned workers) {
  constexpr std::uint64_t kN = 200;
  std::vector<std::uint64_t> got;
  graph g;
  auto src = g.source<std::uint64_t>("src", [](emit<std::uint64_t> out) {
    for (std::uint64_t i = 0; i < kN; ++i) out(std::uint64_t{i});
  });
  auto mid = g.stage<std::uint64_t, std::uint64_t>(
      "square", stage_kind::parallel,
      [](std::uint64_t&& v, emit<std::uint64_t> out) {
        jitter(v);
        out(v * v);
      });
  auto snk = g.sink<std::uint64_t>(
      "collect", stage_kind::serial_in_order,
      [&got](std::uint64_t&& v) { got.push_back(v); });
  edge_opts opts;
  opts.capacity = 8;
  opts.slice_batch = 4;
  g.connect(src, mid, opts);
  g.connect(mid, snk, opts);

  (void)hq::pipe::execute(g, b, {.workers = workers});
  ASSERT_EQ(got.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(got[i], i * i) << "at " << i;
}

// Expand stage with irregular fan-out (including zero): output order must be
// the nested serial-elision order (i ascending, j ascending within i).
void check_expand_order(backend b, unsigned workers) {
  constexpr std::uint64_t kN = 64;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
  for (std::uint64_t i = 0; i < kN; ++i)
    for (std::uint64_t j = 0; j < i % 5; ++j) want.emplace_back(i, j);

  graph g;
  auto src = g.source<std::uint64_t>("src", [](emit<std::uint64_t> out) {
    for (std::uint64_t i = 0; i < kN; ++i) out(std::uint64_t{i});
  });
  auto exp = g.expand<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>(
      "fan", stage_kind::parallel,
      [](std::uint64_t&& v, emit<std::pair<std::uint64_t, std::uint64_t>> out) {
        jitter(v);
        for (std::uint64_t j = 0; j < v % 5; ++j) out({v, j});  // 0..4 per input
      });
  auto snk = g.sink<std::pair<std::uint64_t, std::uint64_t>>(
      "collect", stage_kind::serial_in_order,
      [&got](std::pair<std::uint64_t, std::uint64_t>&& v) {
        got.push_back(v);
      });
  edge_opts opts;
  opts.capacity = 8;
  opts.slice_batch = 4;
  g.connect(src, exp, opts);
  g.connect(exp, snk, opts);

  (void)hq::pipe::execute(g, b, {.workers = workers});
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

class PipelineOrder : public ::testing::TestWithParam<backend> {};

TEST_P(PipelineOrder, LinearInOrderAcrossWorkers) {
  for (unsigned w : {1u, 4u}) check_linear_order(GetParam(), w);
}

TEST_P(PipelineOrder, ExpandInOrderAcrossWorkers) {
  for (unsigned w : {1u, 4u}) check_expand_order(GetParam(), w);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PipelineOrder,
    ::testing::Values(backend::serial, backend::hyperqueue,
                      backend::hyperqueue_element, backend::pthreads,
                      backend::tbb),
    [](const auto& info) { return hq::pipe::to_string(info.param); });

// An unordered serial sink still sees every token exactly once.
TEST(PipelineRunner, SerialSinkSeesAllTokens) {
  constexpr std::uint64_t kN = 128;
  for (backend b : hq::pipe::parallel_backends()) {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
    graph g;
    auto src = g.source<std::uint64_t>("src", [](emit<std::uint64_t> out) {
      for (std::uint64_t i = 0; i < kN; ++i) out(std::uint64_t{i});
    });
    auto mid = g.stage<std::uint64_t, std::uint64_t>(
        "id", stage_kind::parallel,
        [](std::uint64_t&& v, emit<std::uint64_t> out) { out(std::move(v)); });
    auto snk = g.sink<std::uint64_t>("sum", stage_kind::serial,
                                     [&](std::uint64_t&& v) {
                                       sum += v;
                                       ++count;
                                     });
    g.connect(src, mid);
    g.connect(mid, snk);
    (void)hq::pipe::execute(g, b, {.workers = 4});
    EXPECT_EQ(count.load(), kN) << hq::pipe::to_string(b);
    EXPECT_EQ(sum.load(), kN * (kN - 1) / 2) << hq::pipe::to_string(b);
  }
}

// ------------------------------------------------------ runtime-fed placement

// With a placement policy on a multi-node (synthetic) topology, the runner
// must feed plan_queue_placement from the graph's own attachment topology
// and home each edge queue where the plan says — no caller wiring.
TEST(PipelinePlacement, QueueHomesFollowPartitionPlan) {
  const hq::topology topo = hq::topology::synthetic("2x4");
  ASSERT_EQ(topo.num_nodes(), 2u);
  hq::scheduler::placement_config pc;
  pc.policy = hq::placement_policy::compact;
  pc.topo = &topo;

  constexpr std::uint64_t kSeed = 11;
  graph g;
  auto src = g.source<std::uint64_t>("src", [](emit<std::uint64_t> out) {
    for (std::uint64_t i = 0; i < 64; ++i) out(std::uint64_t{i});
  });
  auto mid = g.stage<std::uint64_t, std::uint64_t>(
      "id", stage_kind::parallel,
      [](std::uint64_t&& v, emit<std::uint64_t> out) { out(std::move(v)); });
  auto snk = g.sink<std::uint64_t>("snk", stage_kind::serial_in_order,
                                   [](std::uint64_t&&) {});
  edge_opts heavy;
  heavy.traffic = 4.0;
  g.connect(src, mid);
  g.connect(mid, snk, heavy);

  hq::pipe::exec_options opt;
  opt.workers = 4;
  opt.seed = kSeed;
  opt.placement = &pc;
  const auto ex = hq::pipe::execute(g, backend::hyperqueue, opt);

  const hq::queue_plan plan =
      hq::plan_queue_placement(g.build_queue_graph(), topo.num_nodes(), kSeed);
  ASSERT_EQ(plan.queue_node.size(), 2u);
  ASSERT_EQ(ex.queue_nodes.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(ex.queue_nodes[i], plan.queue_node[i]) << "queue " << i;
    EXPECT_GE(ex.queue_nodes[i], 0);
    EXPECT_LT(ex.queue_nodes[i], 2);
  }
}

// Without a placement policy, queues stay on the default heap (-1): the
// partitioner must not run and must not perturb single-node behavior.
TEST(PipelinePlacement, NoPolicyMeansDefaultHeap) {
  hq::scheduler::placement_config pc;  // policy none
  graph g;
  auto src = g.source<int>("src", [](emit<int> out) {
    for (int i = 0; i < 16; ++i) out(int{i});
  });
  auto snk = g.sink<int>("snk", stage_kind::serial_in_order, [](int&&) {});
  g.connect(src, snk);

  hq::pipe::exec_options opt;
  opt.workers = 2;
  opt.placement = &pc;
  const auto ex = hq::pipe::execute(g, backend::hyperqueue, opt);
  ASSERT_EQ(ex.queue_nodes.size(), 1u);
  EXPECT_EQ(ex.queue_nodes[0], -1);
}

}  // namespace
