#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory records and fail on perf regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--records name1,name2,...]

Both files are the records emitted by the bench harnesses (bench_json.hpp /
bench_slice_apps): a top-level object with a "results" array of
{"name", "ns_per_op", ...} entries. For every benchmark present in the
baseline (or the --records subset), the relative ns_per_op change is
computed; any regression above --threshold (default 15%) fails the run with
exit code 1, as does a benchmark that vanished from the current record or a
current record with "all_ok": false.

Quick-mode numbers are noisy; the CI gate runs this advisory
(continue-on-error) against the committed bench/baselines/ snapshot so the
trajectory is visible without blocking merges on runner jitter.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {r["name"]: r for r in doc.get("results", [])}
    # BENCH_slice.json shape: {"apps": [{"app", "runs": [{"workers",
    # "element_s", "slice_s", ...}]}]} — flatten each timing into a record.
    for app in doc.get("apps", []):
        for run in app.get("runs", []):
            for key in ("element_s", "slice_s"):
                if key in run:
                    name = f"{app['app']}/w{run['workers']}/{key[:-2]}"
                    rows[name] = {"name": name, "ns_per_op": run[key] * 1e9}
    return doc, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed relative ns_per_op regression (default 0.15)")
    ap.add_argument("--records", default="",
                    help="comma-separated benchmark names to gate on "
                         "(default: every baseline record)")
    args = ap.parse_args()

    base_doc, base = load_results(args.baseline)
    cur_doc, cur = load_results(args.current)

    names = [n for n in args.records.split(",") if n] or sorted(base)
    failures = []
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'base ns/op':>12}  {'cur ns/op':>12}  {'delta':>8}")
    for name in names:
        if name not in base:
            failures.append(f"{name}: not in baseline {args.baseline}")
            continue
        if name not in cur:
            failures.append(f"{name}: missing from current record")
            print(f"{name:<{width}}  {base[name]['ns_per_op']:>12.1f}  {'MISSING':>12}")
            continue
        b = base[name]["ns_per_op"]
        c = cur[name]["ns_per_op"]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            failures.append(f"{name}: {delta:+.1%} ns_per_op regression "
                            f"({b:.1f} -> {c:.1f})")
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1%}{flag}")

    extra = sorted(set(cur) - set(base))
    if extra:
        print(f"note: {len(extra)} benchmark(s) not in baseline: {', '.join(extra)}")

    if cur_doc.get("all_ok") is False:
        failures.append("current record reports all_ok=false "
                        "(correctness probe failed)")

    if failures:
        print(f"\nFAIL ({args.current} vs {args.baseline}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"OK: no regression over {args.threshold:.0%} "
          f"({len(names)} records checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
