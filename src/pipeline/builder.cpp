#include "pipeline/builder.hpp"

namespace hq::pipe {

const char* to_string(stage_kind k) noexcept {
  switch (k) {
    case stage_kind::serial_in_order:
      return "serial_in_order";
    case stage_kind::serial:
      return "serial";
    case stage_kind::parallel:
      return "parallel";
  }
  return "?";
}

void graph::connect(stage_id from, stage_id to, edge_opts opts) {
  if (from >= stages_.size() || to >= stages_.size())
    throw graph_error("pipe::connect: stage id out of range");
  auto& src = stages_[from];
  auto& dst = stages_[to];
  if (src.is_sink)
    throw graph_error("pipe::connect: cannot connect from sink stage '" +
                      src.name + "'");
  if (dst.is_source)
    throw graph_error("pipe::connect: cannot connect into source stage '" +
                      dst.name + "'");
  if (src.out_type != dst.in_type)
    throw graph_error("pipe::connect: type mismatch on edge '" + src.name +
                      "' -> '" + dst.name + "': produces " +
                      src.out_type_name + ", consumes " + dst.in_type_name);
  if (src.out_edge != -1)
    throw graph_error("pipe::connect: output of stage '" + src.name +
                      "' already connected");
  if (dst.in_edge != -1)
    throw graph_error("pipe::connect: input of stage '" + dst.name +
                      "' already connected");

  detail::edge_rec e;
  e.from = from;
  e.to = to;
  e.opts = opts;
  e.type = src.out_type;
  src.out_edge = static_cast<int>(edges_.size());
  dst.in_edge = static_cast<int>(edges_.size());
  edges_.push_back(std::move(e));
}

graph::plan graph::compile() const {
  if (stages_.empty()) throw graph_error("pipe::compile: empty graph");

  std::size_t src = stages_.size();
  std::size_t snk = stages_.size();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].is_source) {
      if (src != stages_.size())
        throw graph_error("pipe::compile: more than one source stage");
      src = i;
    }
    if (stages_[i].is_sink) {
      if (snk != stages_.size())
        throw graph_error("pipe::compile: more than one sink stage");
      snk = i;
    }
  }
  if (src == stages_.size())
    throw graph_error("pipe::compile: no source stage declared");
  if (snk == stages_.size())
    throw graph_error("pipe::compile: no sink stage declared");
  if (stages_[snk].kind == stage_kind::parallel)
    throw graph_error(
        "pipe::compile: sink stage '" + stages_[snk].name +
        "' is parallel; sinks must be serial or serial_in_order");

  plan p;
  // Walk the chain from the source; every stage must be reachable.
  std::size_t cur = src;
  unsigned depth = 0;  // reorder-path depth of tokens *entering* cur
  for (;;) {
    p.order.push_back(cur);
    const auto& s = stages_[cur];
    if (s.is_sink) break;
    if (s.out_edge < 0)
      throw graph_error("pipe::compile: stage '" + s.name +
                        "' has no outgoing edge");
    // Depth of the tokens this stage emits: an in-order stage restarts
    // sequence numbering (its output is a fresh totally-ordered stream);
    // other kinds tag outputs relative to their input's position. An
    // expand stage appends one sub-sequence level either way.
    unsigned out_depth =
        (s.kind == stage_kind::serial_in_order || s.is_source) ? 1 : depth;
    if (s.multi_out) ++out_depth;
    if (out_depth > kMaxDepth)
      throw graph_error("pipe::compile: fan-out nesting exceeds kMaxDepth at '" +
                        s.name + "'");
    p.edges.push_back(static_cast<std::size_t>(s.out_edge));
    p.edge_depth.push_back(out_depth);
    depth = out_depth;
    cur = edges_[static_cast<std::size_t>(s.out_edge)].to;
  }

  if (p.order.size() != stages_.size()) {
    // Some declared stage was never reached from the source.
    std::vector<bool> seen(stages_.size(), false);
    for (auto i : p.order) seen[i] = true;
    for (std::size_t i = 0; i < stages_.size(); ++i)
      if (!seen[i])
        throw graph_error("pipe::compile: stage '" + stages_[i].name +
                          "' is not attached to the source->sink chain");
  }
  return p;
}

hq::queue_graph graph::build_queue_graph() const {
  plan p = compile();
  hq::queue_graph g;
  g.num_stages = static_cast<unsigned>(p.order.size());
  g.queues.reserve(p.edges.size());
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    hq::queue_graph::queue_desc q;
    q.producers = {static_cast<unsigned>(i)};
    q.consumer = static_cast<unsigned>(i + 1);
    q.traffic = edges_[p.edges[i]].opts.traffic;
    g.queues.push_back(std::move(q));
  }
  return g;
}

}  // namespace hq::pipe
