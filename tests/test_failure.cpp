// Failure-aware execution: exception propagation, cooperative cancellation,
// deterministic fault injection (core/fault.hpp) and the stall watchdog
// (sched/watchdog.hpp).
//
// The failure conformance matrix mirrors the digest matrix in
// test_runner_conformance.cpp: for every app x parallel backend x worker
// count, a mid-stream stage exception must surface as the same exception on
// the calling thread (reported through exec_result::outcome), the process
// must stay alive with all worker threads joined and all in-flight tokens
// reclaimed (the ASan/LSan CI job runs this file), and the immediately
// following clean run on the same plan must be digest-identical to the
// serial elision. Test names carry the backend label so the sanitizer CI
// can select rows with --gtest_filter='*Hyperqueue*'.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/fault.hpp"
#include "pipeline/runner.hpp"
#include "sched/spawn.hpp"
#include "sched/watchdog.hpp"

namespace {

using hq::pipe::app_params;
using hq::pipe::backend;
using hq::pipe::run_outcome;

std::string backend_label(backend b) {
  switch (b) {
    case backend::hyperqueue: return "Hyperqueue";
    case backend::hyperqueue_element: return "HyperqueueElement";
    case backend::pthreads: return "Pthreads";
    case backend::tbb: return "Tbb";
    case backend::serial: break;
  }
  return "Serial";
}

std::string app_label(const std::string& name) {
  std::string s = name;
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i - 1] == '_') s[i] = static_cast<char>(std::toupper(s[i]));
  s.erase(std::remove(s.begin(), s.end(), '_'), s.end());
  return s;
}

/// The parallel middle stage of each built-in app — the injection target.
std::string mid_stage(const std::string& app) {
  if (app == "bzip2") return "compress";
  if (app == "dedup") return "dedup_compress";
  if (app == "ferret") return "middle";
  ADD_FAILURE() << "unknown app " << app;
  return "?";
}

/// Memoize the serial-elision reference digest for (app, seed, quick)
/// BEFORE a fault plan is installed — otherwise the reference run itself
/// would hit the injected site.
void prewarm_reference(const std::string& app, const app_params& p) {
  const auto ref = hq::pipe::run_app(app, backend::serial, p);
  ASSERT_EQ(ref.exec.outcome, run_outcome::ok);
  ASSERT_TRUE(ref.ok);
}

/// Install a plan that throws at the Nth activation of `site`. `nth` rules
/// fire exactly once (count == nth), so the run after the failed one
/// proceeds clean without clearing the plan — exactly the "retry after a
/// fault" shape the matrix asserts digest-identity on.
void install_throw(const std::string& site, std::uint64_t nth,
                   std::uint64_t seed = 42) {
  hq::fault::plan pl;
  pl.seed = seed;
  hq::fault::rule r;
  r.site = site;
  r.act = hq::fault::action::throw_exc;
  r.nth = nth;
  pl.rules.push_back(std::move(r));
  hq::fault::install(std::move(pl));
}

/// Clear the plan even when an assertion bails out of a test early.
struct plan_guard {
  ~plan_guard() { hq::fault::clear(); }
};

using matrix_param = std::tuple<std::string, backend, unsigned>;

class FailureMatrix : public ::testing::TestWithParam<matrix_param> {};

TEST_P(FailureMatrix, StageThrowSurfacesThenCleanRunMatches) {
  const auto& [app, b, workers] = GetParam();
  app_params p;
  p.workers = workers;
  prewarm_reference(app, p);

  const std::string site = "stage." + mid_stage(app);
  plan_guard guard;
  install_throw(site, /*nth=*/3);

  const auto failed = hq::pipe::run_app(app, b, p);
  EXPECT_EQ(failed.exec.outcome, run_outcome::failed)
      << app << " on " << hq::pipe::to_string(b) << " at " << workers;
  EXPECT_NE(failed.exec.error.find(site), std::string::npos)
      << "error '" << failed.exec.error << "' does not name the site";
  EXPECT_FALSE(failed.ok);
  EXPECT_TRUE(failed.digest.empty());

  // The nth firing is consumed; the very next run on the same (installed)
  // plan must complete and match the serial elision byte for byte.
  const auto clean = hq::pipe::run_app(app, b, p);
  EXPECT_EQ(clean.exec.outcome, run_outcome::ok) << clean.exec.error;
  EXPECT_EQ(clean.digest, clean.reference);
  EXPECT_TRUE(clean.ok);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, FailureMatrix,
    ::testing::Combine(
        ::testing::Values(std::string("bzip2"), std::string("dedup"),
                          std::string("ferret")),
        ::testing::Values(backend::hyperqueue, backend::hyperqueue_element,
                          backend::pthreads, backend::tbb),
        ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return app_label(std::get<0>(info.param)) +
             backend_label(std::get<1>(info.param)) + "W" +
             std::to_string(std::get<2>(info.param));
    });

// ---- exception identity & scheduler reuse ---------------------------------

struct boom : std::runtime_error {
  boom() : std::runtime_error("boom") {}
};

TEST(FailurePropagation, SchedulerRethrowsTaskExceptionOnCaller) {
  hq::scheduler sched(4);
  EXPECT_THROW(
      sched.run([] {
        hq::spawn([] {});
        hq::spawn([] { throw boom(); });
        hq::sync();
      }),
      boom);
  // The scheduler (and its pools) stay usable after a failed run.
  int ran = 0;
  sched.run([&] {
    hq::spawn([&] { ran = 1; });
    hq::sync();
  });
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(sched.cancelled());
}

TEST(FailurePropagation, FirstFailureWinsAndFramesDrain) {
  hq::scheduler sched(4);
  for (int round = 0; round < 5; ++round) {
    try {
      sched.run([] {
        for (int i = 0; i < 64; ++i)
          hq::spawn([] { throw boom(); });
        hq::sync();
      });
      FAIL() << "run() must rethrow";
    } catch (const boom&) {
      // Exactly the spawned tasks' exception type, no wrapping.
    }
    // Every frame completed (bodies skipped once cancelling) and was
    // recycled: nothing live between runs.
    EXPECT_EQ(sched.frame_pool_stats().live, 0u);
  }
}

TEST(FailurePropagation, InjectedFaultTypeSurvivesExecuteOnEveryBackend) {
  // execute() (unlike run_app) rethrows, so the exception *type* and its
  // site/count payload are observable: the same injected_fault must arrive
  // on the calling thread from every parallel backend.
  for (backend b : hq::pipe::parallel_backends()) {
    plan_guard guard;
    install_throw("stage.fmid", /*nth=*/2);
    hq::pipe::graph g;
    auto src = g.source<int>("fsrc", [](hq::pipe::emit<int> out) {
      for (int i = 0; i < 16; ++i) out(int(i));
    });
    auto mid = g.stage<int, int>(
        "fmid", hq::pipe::stage_kind::parallel,
        [](int&& v, hq::pipe::emit<int> out) { out(std::move(v)); });
    auto snk = g.sink<int>("fsnk", hq::pipe::stage_kind::serial_in_order,
                           [](int&&) {});
    g.connect(src, mid);
    g.connect(mid, snk);
    hq::pipe::exec_options opt;
    opt.workers = 4;
    try {
      (void)hq::pipe::execute(g, b, opt);
      FAIL() << "no injected_fault on " << hq::pipe::to_string(b);
    } catch (const hq::fault::injected_fault& e) {
      EXPECT_EQ(e.site(), "stage.fmid") << hq::pipe::to_string(b);
      EXPECT_EQ(e.count(), 2u) << hq::pipe::to_string(b);
    }
    hq::fault::clear();
  }
}

TEST(FailurePropagation, CancellationUnblocksHyperqueueWaits) {
  // A consumer blocked in wait_data (producer never produces enough) must
  // unwind when a sibling fails — the regression shape for a cancellation
  // poll missing from a blocking queue wait.
  hq::scheduler sched(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        sched.run([] {
          hq::hyperqueue<int> q;
          hq::spawn(
              [](hq::pushdep<int> out) {
                for (int i = 0; i < 4; ++i) out.push(i);
                throw boom();  // queue closes with the stream unfinished
              },
              (hq::pushdep<int>)q);
          hq::spawn(
              [](hq::popdep<int> in) {
                long sum = 0;
                while (!in.empty()) sum += in.pop();
                (void)sum;
              },
              (hq::popdep<int>)q);
          hq::sync();
        }),
        boom);
  }
  EXPECT_EQ(sched.frame_pool_stats().live, 0u);
}

// ---- allocation faults -----------------------------------------------------

class AllocFault : public ::testing::TestWithParam<const char*> {};

TEST_P(AllocFault, SurfacesAsBadAllocAndRunStaysReusable) {
  app_params p;
  p.workers = 4;
  prewarm_reference("bzip2", p);

  hq::fault::plan pl;
  pl.seed = 7;
  hq::fault::rule r;
  r.site = GetParam();
  r.act = hq::fault::action::alloc_fail;
  r.nth = 1;
  pl.rules.push_back(std::move(r));
  plan_guard guard;
  hq::fault::install(std::move(pl));

  const auto failed = hq::pipe::run_app("bzip2", backend::hyperqueue, p);
  EXPECT_EQ(failed.exec.outcome, run_outcome::failed) << GetParam();
  EXPECT_NE(failed.exec.error.find("bad_alloc"), std::string::npos)
      << "error was: " << failed.exec.error;

  const auto clean = hq::pipe::run_app("bzip2", backend::hyperqueue, p);
  EXPECT_EQ(clean.exec.outcome, run_outcome::ok) << clean.exec.error;
  EXPECT_TRUE(clean.ok);
}

INSTANTIATE_TEST_SUITE_P(Sites, AllocFault,
                         ::testing::Values("pool.slab", "segment.alloc",
                                           "numa.map"),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s)
                             if (c == '.') c = '_';
                           return s;
                         });

TEST(AllocFault, NumaBindFailureFallsBackToFirstTouch) {
  // numa.bind failures skip the mbind: the mapping stays valid on the
  // first-touch policy, so the run completes *correctly* — degraded
  // placement, not an error.
  app_params p;
  p.workers = 4;
  prewarm_reference("bzip2", p);

  hq::fault::plan pl;
  hq::fault::rule r;
  r.site = "numa.bind";
  r.act = hq::fault::action::alloc_fail;
  r.every = 1;  // every bind attempt fails
  pl.rules.push_back(std::move(r));
  plan_guard guard;
  hq::fault::install(std::move(pl));

  const auto run = hq::pipe::run_app("bzip2", backend::hyperqueue, p);
  EXPECT_EQ(run.exec.outcome, run_outcome::ok) << run.exec.error;
  EXPECT_TRUE(run.ok);
}

// ---- deterministic replay --------------------------------------------------

TEST(FaultReplay, FiringPointsAreIdenticalAcrossRuns) {
  app_params p;
  p.workers = 4;
  prewarm_reference("bzip2", p);

  auto one_run = [&] {
    hq::fault::plan pl;
    pl.seed = 1234;
    hq::fault::rule del;
    del.site = "queue.*";
    del.act = hq::fault::action::delay;
    del.every = 16;
    del.iters = 64;
    pl.rules.push_back(std::move(del));
    hq::fault::rule thr;
    thr.site = "stage.compress";
    thr.act = hq::fault::action::throw_exc;
    thr.nth = 5;
    pl.rules.push_back(std::move(thr));
    hq::fault::install(std::move(pl));
    const auto run = hq::pipe::run_app("bzip2", backend::hyperqueue, p);
    EXPECT_EQ(run.exec.outcome, run_outcome::failed);
    auto fired = hq::fault::firings();
    hq::fault::clear();
    // (site, count, act) triples are the replay identity; the log order can
    // vary with thread interleaving across distinct sites, so compare as a
    // sorted multiset.
    std::vector<std::tuple<std::string, std::uint64_t, int>> key;
    key.reserve(fired.size());
    for (const auto& f : fired)
      key.emplace_back(f.site, f.count, static_cast<int>(f.act));
    std::sort(key.begin(), key.end());
    return key;
  };

  const auto first = one_run();
  const auto second = one_run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "fault firing points must be a pure function of (seed, site, count)";
}

// ---- HQ_FAULTS parsing -----------------------------------------------------

TEST(FaultParse, RoundTripsTheDocumentedGrammar) {
  hq::fault::plan p;
  std::string err;
  ASSERT_TRUE(hq::fault::parse(
      "seed=7; throw@stage.compress:nth=3 ;alloc@pool.slab:nth=2;"
      "delay@queue.push:every=64,iters=200;stall@stage.middle:nth=1",
      &p, &err))
      << err;
  EXPECT_EQ(p.seed, 7u);
  ASSERT_EQ(p.rules.size(), 4u);
  EXPECT_EQ(p.rules[0].site, "stage.compress");
  EXPECT_EQ(p.rules[0].act, hq::fault::action::throw_exc);
  EXPECT_EQ(p.rules[0].nth, 3u);
  EXPECT_EQ(p.rules[1].act, hq::fault::action::alloc_fail);
  EXPECT_EQ(p.rules[2].act, hq::fault::action::delay);
  EXPECT_EQ(p.rules[2].every, 64u);
  EXPECT_EQ(p.rules[2].iters, 200u);
  EXPECT_EQ(p.rules[3].act, hq::fault::action::stall);
}

TEST(FaultParse, BareDelayDelaysEveryHit) {
  hq::fault::plan p;
  std::string err;
  ASSERT_TRUE(hq::fault::parse("delay@queue.pop", &p, &err)) << err;
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].every, 1u);
}

TEST(FaultParse, RejectsMalformedSpecs) {
  hq::fault::plan p;
  std::string err;
  EXPECT_FALSE(hq::fault::parse("explode@stage.x:nth=1", &p, &err));
  EXPECT_NE(err.find("unknown action"), std::string::npos);
  EXPECT_FALSE(hq::fault::parse("throw@:nth=1", &p, &err));
  EXPECT_FALSE(hq::fault::parse("throwstage.x", &p, &err));
  EXPECT_FALSE(hq::fault::parse("throw@stage.x:nth", &p, &err));
  EXPECT_FALSE(hq::fault::parse("throw@stage.x:bogus=1", &p, &err));
  EXPECT_FALSE(hq::fault::parse("throw@stage.x", &p, &err))
      << "a throw rule with no firing condition must be rejected";
}

// ---- stall watchdog --------------------------------------------------------

TEST(Watchdog, CancelsAStalledRunWithADiagnostic) {
  // An injected stall parks one task body in a non-progressing spin (it
  // polls only the cancellation epoch). The watchdog must detect the flat
  // progress counters, cancel the run, and surface a stall_error whose
  // what() carries the per-worker dump — instead of the run hanging.
  hq::fault::plan pl;
  hq::fault::rule r;
  r.site = "test.stall";
  r.act = hq::fault::action::stall;
  r.nth = 1;
  pl.rules.push_back(std::move(r));
  plan_guard guard;
  hq::fault::install(std::move(pl));

  hq::scheduler sched(2);
  sched.set_watchdog(/*ms=*/50, /*grace_intervals=*/1000);
  try {
    sched.run([] {
      hq::spawn([] { hq::fault::crashpoint("test.stall"); });
      hq::sync();
    });
    FAIL() << "a stalled run must not complete";
  } catch (const hq::stall_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no scheduler progress"), std::string::npos) << what;
    EXPECT_NE(what.find("worker"), std::string::npos) << what;
  }
  // The scheduler survives the cancelled run.
  int ran = 0;
  sched.run([&] { ran = 1; });
  EXPECT_EQ(ran, 1);
}

TEST(Watchdog, EnvKnobArmsThePipelineSchedulers) {
  // HQ_WATCHDOG_MS is read at scheduler construction, so the hyperqueue
  // backend's per-run scheduler picks it up; a stalled stage then reports
  // run_outcome::stalled through run_app.
  app_params p;
  p.workers = 2;
  prewarm_reference("ferret", p);

  hq::fault::plan pl;
  hq::fault::rule r;
  r.site = "stage.middle";
  r.act = hq::fault::action::stall;
  r.nth = 2;
  pl.rules.push_back(std::move(r));
  plan_guard guard;
  hq::fault::install(std::move(pl));

  ASSERT_EQ(setenv("HQ_WATCHDOG_MS", "50", 1), 0);
  const auto run = hq::pipe::run_app("ferret", backend::hyperqueue, p);
  ASSERT_EQ(unsetenv("HQ_WATCHDOG_MS"), 0);

  EXPECT_EQ(run.exec.outcome, run_outcome::stalled) << run.exec.error;
  EXPECT_NE(run.exec.error.find("no scheduler progress"), std::string::npos)
      << run.exec.error;
  EXPECT_FALSE(run.ok);

  // And with the plan consumed (nth passed), the same app runs clean.
  const auto clean = hq::pipe::run_app("ferret", backend::hyperqueue, p);
  EXPECT_EQ(clean.exec.outcome, run_outcome::ok) << clean.exec.error;
  EXPECT_TRUE(clean.ok);
}

// ---- cancellation stress (the TSan CI row) ---------------------------------

TEST(CancelStressHyperqueue, RepeatedMidStreamFailuresStayClean) {
  // Hammer the failure path: repeated runs on one scheduler, each cancelled
  // mid-stream from a random-ish point (different nth each round), all
  // worker counts of the matrix. TSan checks the failure-slot / epoch /
  // body-skip handshakes; ASan checks the queue drain.
  app_params p;
  p.workers = 8;
  prewarm_reference("dedup", p);
  for (std::uint64_t round = 1; round <= 6; ++round) {
    plan_guard guard;
    install_throw("stage.dedup_compress", /*nth=*/round, /*seed=*/round);
    const auto failed = hq::pipe::run_app("dedup", backend::hyperqueue, p);
    EXPECT_EQ(failed.exec.outcome, run_outcome::failed) << "round " << round;
    hq::fault::clear();
    const auto clean = hq::pipe::run_app("dedup", backend::hyperqueue, p);
    EXPECT_EQ(clean.exec.outcome, run_outcome::ok) << clean.exec.error;
    EXPECT_TRUE(clean.ok);
  }
}

TEST(CancelStressHyperqueue, SchedulerLevelChurn) {
  hq::scheduler sched(8);
  for (int round = 0; round < 20; ++round) {
    try {
      sched.run([&] {
        for (int i = 0; i < 256; ++i) {
          hq::spawn([i] {
            if (i == 137) throw boom();
          });
        }
        hq::sync();
      });
      FAIL() << "round " << round << " must rethrow";
    } catch (const boom&) {
    }
    EXPECT_EQ(sched.frame_pool_stats().live, 0u) << "round " << round;
  }
}

// ---- outcome plumbing ------------------------------------------------------

TEST(RunOutcome, ToStringCoversAllValues) {
  EXPECT_STREQ(hq::pipe::to_string(run_outcome::ok), "ok");
  EXPECT_STREQ(hq::pipe::to_string(run_outcome::failed), "failed");
  EXPECT_STREQ(hq::pipe::to_string(run_outcome::stalled), "stalled");
}

}  // namespace
