// Burrows–Wheeler transform over circular rotations, used by the mbzip
// block compressor (the bzip2 app's Compress kernel).
//
// Forward: sort all rotations of the block (prefix-doubling over circular
// ranks, O(n log^2 n)) and emit the last column plus the index of the
// original rotation. Inverse: standard LF-mapping reconstruction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hq::util {

struct bwt_result {
  std::vector<std::uint8_t> last_column;
  std::uint32_t primary_index;  // row of the original string in sorted order
};

bwt_result bwt_forward(const std::uint8_t* data, std::size_t len);

std::vector<std::uint8_t> bwt_inverse(const std::uint8_t* last_column,
                                      std::size_t len, std::uint32_t primary_index);

/// Move-to-front coding (bijective; decoder is mtf_decode).
std::vector<std::uint8_t> mtf_encode(const std::uint8_t* data, std::size_t len);
std::vector<std::uint8_t> mtf_decode(const std::uint8_t* data, std::size_t len);

/// Zero-run-length coding for post-MTF streams: a 0x00 byte is always
/// followed by a run length (1..255); other bytes are verbatim.
std::vector<std::uint8_t> zrle_encode(const std::uint8_t* data, std::size_t len);
std::vector<std::uint8_t> zrle_decode(const std::uint8_t* data, std::size_t len);

}  // namespace hq::util
