// Determinism stress: the paper's central claim is that a hyperqueue
// program produces the output of its serial elision on every execution,
// independent of the worker count and of how the scheduler interleaves
// producers and the consumer. Run the Figure-2 recursive-producer pipeline
// many times at 1/2/4/8 workers and require the serialized output bytes to
// be identical across every run and every worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hq.hpp"

namespace {

constexpr int kIterations = 50;
constexpr int kTotal = 1000;
const unsigned kWorkerCounts[] = {1, 2, 4, 8};

void recursive_producer(hq::pushdep<int> q, int start, int end) {
  if (end - start <= 10) {
    for (int n = start; n < end; ++n) q.push(n);
  } else {
    hq::spawn(recursive_producer, q, start, (start + end) / 2);
    hq::spawn(recursive_producer, q, (start + end) / 2, end);
    hq::sync();
  }
}

/// Consumer serializing each popped value to bytes; mixing in a running
/// accumulator makes the stream order-sensitive, so any reordering, loss or
/// duplication changes every subsequent byte.
void serializing_consumer(hq::popdep<int> q, std::vector<std::uint8_t>* out) {
  std::uint32_t acc = 0x9e3779b9u;
  while (!q.empty()) {
    const std::uint32_t v = static_cast<std::uint32_t>(q.pop());
    acc = acc * 1664525u + v;
    out->push_back(static_cast<std::uint8_t>(v));
    out->push_back(static_cast<std::uint8_t>(v >> 8));
    out->push_back(static_cast<std::uint8_t>(v >> 16));
    out->push_back(static_cast<std::uint8_t>(acc >> 24));
  }
  out->push_back(static_cast<std::uint8_t>(acc));
  out->push_back(static_cast<std::uint8_t>(acc >> 8));
  out->push_back(static_cast<std::uint8_t>(acc >> 16));
  out->push_back(static_cast<std::uint8_t>(acc >> 24));
}

std::vector<std::uint8_t> run_pipeline(
    unsigned workers, std::size_t segment_len,
    hq::scheduler::placement_config cfg = {}) {
  hq::scheduler sched(workers, std::move(cfg));
  std::vector<std::uint8_t> bytes;
  sched.run([&] {
    hq::hyperqueue<int> queue(segment_len);
    hq::spawn(recursive_producer, (hq::pushdep<int>)queue, 0, kTotal);
    hq::spawn(serializing_consumer, (hq::popdep<int>)queue, &bytes);
    hq::sync();
  });
  return bytes;
}

/// The serial elision: what a sequential execution of the program computes.
std::vector<std::uint8_t> serial_elision() {
  std::vector<std::uint8_t> bytes;
  std::uint32_t acc = 0x9e3779b9u;
  for (int n = 0; n < kTotal; ++n) {
    const std::uint32_t v = static_cast<std::uint32_t>(n);
    acc = acc * 1664525u + v;
    bytes.push_back(static_cast<std::uint8_t>(v));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes.push_back(static_cast<std::uint8_t>(acc >> 24));
  }
  bytes.push_back(static_cast<std::uint8_t>(acc));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 16));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 24));
  return bytes;
}

TEST(StressDeterminism, Figure2ByteIdenticalAcrossRunsAndWorkers) {
  const std::vector<std::uint8_t> expected = serial_elision();
  for (unsigned workers : kWorkerCounts) {
    for (int iter = 0; iter < kIterations; ++iter) {
      const std::vector<std::uint8_t> got =
          run_pipeline(workers, hq::hyperqueue<int>::kDefaultSegmentLength);
      ASSERT_EQ(got, expected)
          << "output diverged from the serial elision at workers=" << workers
          << " iteration=" << iter;
    }
  }
}

// --------------------------------------------------- flat fan-out stage

/// One of P sibling producers spawned back-to-back into the same queue:
/// the flat analogue of the recursive splitter above, and the shape that
/// exercises the sharded per-producer segment chains hardest — every
/// sibling holds a live push attachment at once, and the consumer must
/// stitch their chains back together in spawn order.
void fanout_producer(hq::pushdep<int> q, int producer, int per_producer,
                     std::uint32_t seed) {
  std::uint32_t x = seed ^ (0x9e3779b9u * static_cast<std::uint32_t>(producer + 1));
  for (int i = 0; i < per_producer; ++i) {
    x = x * 1664525u + 1013904223u;
    q.push(static_cast<int>(x >> 8));
  }
}

std::vector<std::uint8_t> run_fanout(unsigned workers, int producers,
                                     int per_producer, std::uint32_t seed,
                                     std::size_t segment_len,
                                     hq::scheduler::placement_config cfg = {}) {
  hq::scheduler sched(workers, std::move(cfg));
  std::vector<std::uint8_t> bytes;
  sched.run([&] {
    hq::hyperqueue<int> queue(segment_len);
    for (int p = 0; p < producers; ++p) {
      hq::spawn(fanout_producer, (hq::pushdep<int>)queue, p, per_producer,
                seed);
    }
    hq::spawn(serializing_consumer, (hq::popdep<int>)queue, &bytes);
    hq::sync();
  });
  return bytes;
}

/// Serial elision of the fan-out program: producers run to completion in
/// spawn order, then the consumer serializes the concatenated stream.
std::vector<std::uint8_t> fanout_serial_elision(int producers,
                                                int per_producer,
                                                std::uint32_t seed) {
  std::vector<std::uint8_t> bytes;
  std::uint32_t acc = 0x9e3779b9u;
  for (int p = 0; p < producers; ++p) {
    std::uint32_t x = seed ^ (0x9e3779b9u * static_cast<std::uint32_t>(p + 1));
    for (int i = 0; i < per_producer; ++i) {
      x = x * 1664525u + 1013904223u;
      const std::uint32_t v = x >> 8;
      acc = acc * 1664525u + v;
      bytes.push_back(static_cast<std::uint8_t>(v));
      bytes.push_back(static_cast<std::uint8_t>(v >> 8));
      bytes.push_back(static_cast<std::uint8_t>(v >> 16));
      bytes.push_back(static_cast<std::uint8_t>(acc >> 24));
    }
  }
  bytes.push_back(static_cast<std::uint8_t>(acc));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 16));
  bytes.push_back(static_cast<std::uint8_t>(acc >> 24));
  return bytes;
}

TEST(StressDeterminism, FlatFanOutByteIdenticalAcrossSeedsAndWorkers) {
  constexpr int kProducerCounts[] = {2, 8, 64};
  constexpr std::uint32_t kSeeds[] = {7u, 0xdeadbeefu};
  constexpr int kPerProducer = 64;
  constexpr int kFanOutIterations = 5;
  const std::size_t segment_lens[] = {
      hq::hyperqueue<int>::kDefaultSegmentLength, 8};
  for (int producers : kProducerCounts) {
    for (std::uint32_t seed : kSeeds) {
      const std::vector<std::uint8_t> expected =
          fanout_serial_elision(producers, kPerProducer, seed);
      for (std::size_t segment_len : segment_lens) {
        for (unsigned workers : kWorkerCounts) {
          for (int iter = 0; iter < kFanOutIterations; ++iter) {
            const std::vector<std::uint8_t> got = run_fanout(
                workers, producers, kPerProducer, seed, segment_len);
            ASSERT_EQ(got, expected)
                << "fan-out output diverged from the serial elision at"
                << " producers=" << producers << " seed=" << seed
                << " segment_len=" << segment_len << " workers=" << workers
                << " iteration=" << iter;
          }
        }
      }
    }
  }
}

TEST(StressDeterminism, PlacementAndTopologyInvariance) {
  // The central determinism claim must be placement-blind: pinned workers,
  // distance-ordered stealing, NUMA arenas and synthetic multi-node models
  // reorder *execution*, never *output*. Every placement policy crossed
  // with single- and two-node topologies must reproduce the serial
  // elision byte for byte, for both pipeline shapes, at every worker
  // count. Tiny segments keep the chaining/recycling paths hot.
  constexpr int kInvarianceIterations = 3;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 64;
  constexpr std::uint32_t kSeed = 7u;
  const std::vector<std::uint8_t> expected_pipeline = serial_elision();
  const std::vector<std::uint8_t> expected_fanout =
      fanout_serial_elision(kProducers, kPerProducer, kSeed);
  const hq::placement_policy policies[] = {hq::placement_policy::none,
                                           hq::placement_policy::compact,
                                           hq::placement_policy::scatter};
  for (const char* spec : {"flat", "2x8"}) {
    const hq::topology topo = hq::topology::synthetic(spec);
    for (hq::placement_policy policy : policies) {
      for (unsigned workers : kWorkerCounts) {
        for (int iter = 0; iter < kInvarianceIterations; ++iter) {
          ASSERT_EQ(run_pipeline(workers, 8, {policy, &topo, {}}),
                    expected_pipeline)
              << "pipeline diverged at topology=" << spec
              << " policy=" << hq::to_string(policy) << " workers=" << workers
              << " iteration=" << iter;
          ASSERT_EQ(run_fanout(workers, kProducers, kPerProducer, kSeed, 8,
                               {policy, &topo, {}}),
                    expected_fanout)
              << "fan-out diverged at topology=" << spec
              << " policy=" << hq::to_string(policy) << " workers=" << workers
              << " iteration=" << iter;
        }
      }
    }
  }
}

TEST(StressDeterminism, Figure2ByteIdenticalWithTinySegments) {
  // Segment length 8 forces constant segment chaining and recycling, the
  // paths where nondeterminism would most plausibly leak in.
  const std::vector<std::uint8_t> expected = serial_elision();
  for (unsigned workers : kWorkerCounts) {
    for (int iter = 0; iter < kIterations; ++iter) {
      const std::vector<std::uint8_t> got = run_pipeline(workers, 8);
      ASSERT_EQ(got, expected)
          << "output diverged from the serial elision at workers=" << workers
          << " iteration=" << iter << " (segment length 8)";
    }
  }
}

}  // namespace
