// Bounded-memory operation: per-queue byte budgets (core/queue_cb.cpp
// budget_wait), the HQ_QUEUE_BUDGET environment default, footprint
// reporting through pool/data stats, throttle accounting in the scheduler
// (and its watchdog interplay: throttled is progress, not a stall),
// admission control at the pipeline boundary, and the latency-percentile
// histogram the SLO reporting is built on.
//
// The determinism matrix is the core contract: under ANY budget at or above
// the structural minimum, with delay faults widening interleavings, the
// consumer observes byte-identically the serial-elision sequence — budgets
// change WHEN producers run, never WHAT the consumer sees. The memory cap
// is asserted in its honest form: hard (peak <= budget + the documented
// per-shard slack) whenever the run needed no counted escape
// (pool.budget_overruns == 0), with single-worker schedules — where the
// consumer may be unschedulable behind a parked producer — allowed to
// escape rather than deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/latency.hpp"
#include "hq.hpp"
#include "pipeline/runner.hpp"

namespace {

// Latched by the first queue construction in this process, so it must be
// installed before main() runs: every queue built without an explicit
// budget in this binary gets a roomy 1 MiB default, and EnvDefault below
// asserts the parse.
const bool g_env_budget = [] {
  ::setenv("HQ_QUEUE_BUDGET", "1M", 1);
  return true;
}();

// ------------------------------------------------------ latency histogram

TEST(LatencyHistogram, EmptyReportsZero) {
  hq::stats::latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(LatencyHistogram, SingleValueClampsToMax) {
  hq::stats::latency_histogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.p50(), 12345u);
  EXPECT_EQ(h.p99(), 12345u);
  EXPECT_EQ(h.p999(), 12345u);
}

TEST(LatencyHistogram, QuantizationBound) {
  // Reported percentile is an upper bound within one sub-bucket (2^-4).
  hq::stats::latency_histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_GE(h.p50(), 5000u);
  EXPECT_LE(h.p50(), static_cast<std::uint64_t>(5000 * 1.0701));
  EXPECT_GE(h.p99(), 9900u);
  EXPECT_LE(h.p99(), static_cast<std::uint64_t>(9900 * 1.0701));
}

TEST(LatencyHistogram, MergeMatchesUnion) {
  hq::stats::latency_histogram a, b, all;
  for (std::uint64_t v = 0; v < 500; ++v) {
    a.record(v * 3);
    all.record(v * 3);
  }
  for (std::uint64_t v = 0; v < 500; ++v) {
    b.record(v * 7 + 1000000);
    all.record(v * 7 + 1000000);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_TRUE(a == all);
  EXPECT_EQ(a.p999(), all.p999());
}

// ------------------------------------------------------------ budget knobs

TEST(Budget, KnobTranslation) {
  hq::scheduler sched(1);
  sched.run([] {
    hq::hyperqueue<int> q(64, -1, 1u << 20);
    EXPECT_EQ(q.memory_budget(), 1u << 20);
    EXPECT_GT(q.segment_bytes(), 64 * sizeof(int) - 1);
    EXPECT_EQ(q.pool_stats().budget_bytes, 1u << 20);
    q.set_memory_budget(0);  // explicit zero = unlimited, not "use env"
    EXPECT_EQ(q.memory_budget(), 0u);
  });
}

TEST(Budget, EnvDefaultApplies) {
  ASSERT_TRUE(g_env_budget);
  hq::scheduler sched(1);
  sched.run([] {
    hq::hyperqueue<int> q;  // no explicit budget: HQ_QUEUE_BUDGET=1M
    EXPECT_EQ(q.memory_budget(), 1u << 20);
  });
}

TEST(Budget, LiveBytesTrackSegments) {
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(16, -1, 1u << 20);
    for (int i = 0; i < 200; ++i) q.push(i);  // ~13 segments in flight
    auto ps = q.pool_stats();
    auto ds = q.data_stats();
    EXPECT_GT(ds.live_bytes, 0u);
    EXPECT_EQ(ds.live_bytes, ps.in_use_bytes);
    EXPECT_GE(ps.peak_bytes, ps.in_use_bytes);
    EXPECT_EQ(ps.in_use_bytes % q.segment_bytes(), 0u);
    for (int i = 0; i < 200; ++i) EXPECT_EQ(q.pop(), i);
  });
}

// ------------------------------------------------- determinism under budget

// Leaves push ~500 values = dozens of segments at seglen 16, far past the
// per-shard structural exemption (kShardMinSegs), so tight budgets actually
// throttle. (A tree of tiny leaves would be budget-exempt by design: every
// shard may hold its first kShardMinSegs segments unconditionally.)
void range_producer(hq::pushdep<int> q, int start, int end) {
  if (end - start <= 500) {
    for (int n = start; n < end; ++n) q.push(n);
  } else {
    hq::spawn(range_producer, q, start, (start + end) / 2);
    hq::spawn(range_producer, q, (start + end) / 2, end);
    hq::sync();
  }
}

void slow_consumer(hq::popdep<int> q, std::vector<int>* out, unsigned spin) {
  while (!q.empty()) {
    out->push_back(q.pop());
    for (volatile unsigned i = 0; i < spin; ++i) {
    }
  }
}

struct budget_run {
  std::vector<int> got;
  hq::seg_pool_stats pool;
  std::uint64_t sched_throttle_waits = 0;
};

budget_run run_budgeted(unsigned workers, std::uint64_t budget_segs,
                        int items, unsigned consumer_spin) {
  budget_run r;
  hq::scheduler sched(workers);
  sched.run([&] {
    hq::hyperqueue<int> q(16, -1, 1);  // floor: budget raised below
    q.set_memory_budget(budget_segs * q.segment_bytes());
    hq::spawn(range_producer, (hq::pushdep<int>)q, 0, items);
    hq::spawn(slow_consumer, (hq::popdep<int>)q, &r.got, consumer_spin);
    hq::sync();
    r.pool = q.pool_stats();
  });
  r.sched_throttle_waits = sched.stats().throttle_waits;
  return r;
}

class BudgetMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(BudgetMatrix, TightBudgetsStayDeterministic) {
  const unsigned workers = GetParam();
  const int items = 4000;
  std::vector<int> expected(items);
  std::iota(expected.begin(), expected.end(), 0);

  // Delay faults on the pop path widen consumer/producer interleavings.
  hq::fault::plan pl;
  pl.seed = 7;
  hq::fault::rule r;
  r.site = "queue.pop";
  r.act = hq::fault::action::delay;
  r.every = 64;
  r.iters = 500;
  pl.rules.push_back(r);
  hq::fault::install(std::move(pl));

  for (std::uint64_t budget_segs : {2ull, 3ull, 8ull}) {
    budget_run br = run_budgeted(workers, budget_segs, items,
                                 /*consumer_spin=*/0);
    EXPECT_EQ(br.got, expected)
        << "workers=" << workers << " budget_segs=" << budget_segs;
    // Tight budgets on this volume must have hit the wait path at least
    // once — as a cooperative throttle or, on schedules that could not
    // interleave the consumer, a counted escape.
    if (budget_segs <= 3) {
      EXPECT_GT(br.pool.throttle_waits + br.pool.budget_overruns, 0u)
          << "workers=" << workers << " budget_segs=" << budget_segs;
    }
    // The cap is hard whenever no escape fired: the pool reports the exact
    // structural slack (kShardMinSegs exempt segments per shard at the
    // observed shard high-water mark), so the bound needs no guessed
    // shard-count constant and survives any scheduler interleaving.
    if (br.pool.budget_overruns == 0) {
      EXPECT_LE(br.pool.peak_bytes,
                br.pool.budget_bytes + br.pool.exempt_peak_bytes)
          << "workers=" << workers << " budget_segs=" << budget_segs;
    }
  }
  hq::fault::clear();
}

INSTANTIATE_TEST_SUITE_P(Workers, BudgetMatrix,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Budget, AdversarialSlowConsumerRespectsCap) {
  // The ISSUE's gated scenario: a consumer ~two orders of magnitude slower
  // than the producer, fixed small budget, multiple workers so the
  // consumer is always schedulable. Output must be byte-identical to the
  // elision and the footprint capped (escape-free run expected; if CI
  // preempts the consumer long enough to fire the escape, the counter
  // turns the hard assertion into the documented soft one).
  const int items = 2000;
  std::vector<int> expected(items);
  std::iota(expected.begin(), expected.end(), 0);
  budget_run br = run_budgeted(/*workers=*/4, /*budget_segs=*/3, items,
                               /*consumer_spin=*/400);
  EXPECT_EQ(br.got, expected);
  EXPECT_GT(br.pool.throttle_waits, 0u);
  EXPECT_GT(br.sched_throttle_waits, 0u);
  if (br.pool.budget_overruns == 0) {
    EXPECT_LE(br.pool.peak_bytes,
              br.pool.budget_bytes + br.pool.exempt_peak_bytes);
  }
}

TEST(Budget, WatchdogTreatsThrottleAsProgress) {
  // A run that spends most of its time throttled must NOT trip the stall
  // watchdog: throttle ticks count as progress (sched/watchdog.cpp).
  const int items = 1500;
  std::vector<int> expected(items);
  std::iota(expected.begin(), expected.end(), 0);
  std::vector<int> got;
  hq::scheduler sched(2);
  sched.set_watchdog(/*interval_ms=*/25, /*grace_intervals=*/8);
  sched.run([&] {
    hq::hyperqueue<int> q(16, -1, 1);
    q.set_memory_budget(2 * q.segment_bytes());
    hq::spawn(range_producer, (hq::pushdep<int>)q, 0, items);
    hq::spawn(slow_consumer, (hq::popdep<int>)q, &got, 3000u);
    hq::sync();
  });
  EXPECT_EQ(got, expected);  // run completed; the watchdog never cancelled
  EXPECT_GT(sched.stats().throttle_waits, 0u);
}

// --------------------------------------------------- admission at the edge

struct admit_fixture {
  std::atomic<int> delivered{0};
  hq::pipe::graph g;

  explicit admit_fixture(int items, unsigned sink_spin) {
    auto src = g.source<int>("src", [items](hq::pipe::emit<int> out) {
      for (int i = 0; i < items; ++i) out(int{i});
    });
    auto snk = g.sink<int>(
        "snk", hq::pipe::stage_kind::serial_in_order,
        [this, sink_spin](int&&) {
          for (volatile unsigned i = 0; i < sink_spin; ++i) {
          }
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
    g.connect(src, snk);
  }
};

TEST(Admission, ShedConservesAndBoundsDelivery) {
  for (hq::pipe::backend b :
       {hq::pipe::backend::hyperqueue, hq::pipe::backend::pthreads,
        hq::pipe::backend::tbb}) {
    admit_fixture fx(1000, /*sink_spin=*/2000);
    hq::pipe::exec_options opt;
    opt.workers = 2;
    opt.admission.policy = hq::pipe::admission_policy::shed;
    opt.admission.window = 8;
    auto res = hq::pipe::execute(fx.g, b, opt);
    EXPECT_EQ(res.admitted + res.shed, 1000u) << hq::pipe::to_string(b);
    EXPECT_EQ(static_cast<std::uint64_t>(fx.delivered.load()), res.admitted)
        << hq::pipe::to_string(b);
    EXPECT_GE(res.admitted, opt.admission.window) << hq::pipe::to_string(b);
  }
}

TEST(Admission, BlockDeliversEverything) {
  for (hq::pipe::backend b :
       {hq::pipe::backend::hyperqueue, hq::pipe::backend::pthreads,
        hq::pipe::backend::tbb}) {
    admit_fixture fx(600, /*sink_spin=*/500);
    hq::pipe::exec_options opt;
    opt.workers = 2;
    opt.admission.policy = hq::pipe::admission_policy::block;
    opt.admission.window = 4;
    auto res = hq::pipe::execute(fx.g, b, opt);
    EXPECT_EQ(res.admitted, 600u) << hq::pipe::to_string(b);
    EXPECT_EQ(res.shed, 0u) << hq::pipe::to_string(b);
    EXPECT_EQ(fx.delivered.load(), 600) << hq::pipe::to_string(b);
  }
}

TEST(Admission, BoundedWaitShedsUnderPressure) {
  admit_fixture fx(800, /*sink_spin=*/20000);
  hq::pipe::exec_options opt;
  opt.workers = 2;
  opt.admission.policy = hq::pipe::admission_policy::bounded_wait;
  opt.admission.window = 2;
  opt.admission.max_wait_ns = 1000;  // 1us against a ~10us+ sink
  auto res = hq::pipe::execute(fx.g, hq::pipe::backend::hyperqueue, opt);
  EXPECT_EQ(res.admitted + res.shed, 800u);
  EXPECT_GT(res.shed, 0u);
  EXPECT_GT(res.admission_wait_ns, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(fx.delivered.load()), res.admitted);
}

TEST(Admission, SerialElisionNeverSheds) {
  // Tokens flow source->sink inside one emit call, so in-flight never
  // exceeds 1: the elision stays the lossless reference under any window.
  admit_fixture fx(300, /*sink_spin=*/0);
  hq::pipe::exec_options opt;
  opt.admission.policy = hq::pipe::admission_policy::shed;
  opt.admission.window = 1;
  auto res = hq::pipe::execute(fx.g, hq::pipe::backend::serial, opt);
  EXPECT_EQ(res.admitted, 300u);
  EXPECT_EQ(res.shed, 0u);
  EXPECT_EQ(fx.delivered.load(), 300);
}

}  // namespace
