// Quickstart: the paper's Figure 2 — a two-stage pipeline with a recursive
// parallel producer and an ordered consumer.
//
//   $ ./examples/quickstart [workers]
#include <cstdio>
#include <cstdlib>

#include "hq.hpp"

namespace {

struct data {
  int n;
  long value;
};

data f(int n) { return data{n, static_cast<long>(n) * n}; }

// Figure 2: recursively divided producer, Cilk best practice.
void producer(hq::pushdep<data> queue, int start, int end) {
  if (end - start <= 10) {
    for (int n = start; n < end; ++n) queue.push(f(n));
  } else {
    hq::spawn(producer, queue, start, (start + end) / 2);
    hq::spawn(producer, queue, (start + end) / 2, end);
    hq::sync();
  }
}

void consumer(hq::popdep<data> queue, long* sum, bool* ordered) {
  int expect = 0;
  while (!queue.empty()) {
    data d = queue.pop();
    *ordered = *ordered && (d.n == expect++);
    *sum += d.value;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  constexpr int kTotal = 1000;

  hq::scheduler sched(workers);
  long sum = 0;
  bool ordered = true;
  sched.run([&] {
    hq::hyperqueue<data> queue;
    hq::spawn(producer, (hq::pushdep<data>)queue, 0, kTotal);
    hq::spawn(consumer, (hq::popdep<data>)queue, &sum, &ordered);
    hq::sync();
  });

  std::printf("workers=%u consumed %d values %s, sum of squares = %ld\n", workers,
              kTotal, ordered ? "in serial order" : "OUT OF ORDER (bug!)", sum);
  return ordered && sum == 332833500L ? 0 : 1;
}
