#include "apps/bzip2/bzip2.hpp"

#include "util/mbzip.hpp"
#include "util/stats.hpp"

namespace hq::apps::bzip2 {

namespace {

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

std::vector<double> stage_times(const config& cfg,
                                const std::vector<std::uint8_t>& input) {
  util::stopwatch sw;
  std::vector<double> t(3, 0.0);

  sw.reset();
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  for (std::size_t off = 0; off < input.size(); off += cfg.block_bytes) {
    blocks.emplace_back(off, std::min(cfg.block_bytes, input.size() - off));
  }
  // Copy-out models the read stage's buffer handling.
  std::vector<std::vector<std::uint8_t>> raw;
  raw.reserve(blocks.size());
  for (auto [off, len] : blocks) {
    raw.emplace_back(input.begin() + static_cast<std::ptrdiff_t>(off),
                     input.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  t[0] = sw.seconds();

  sw.reset();
  std::vector<std::vector<std::uint8_t>> comp;
  comp.reserve(raw.size());
  for (const auto& b : raw) {
    comp.push_back(util::mbzip_compress_block(b.data(), b.size()));
  }
  t[1] = sw.seconds();

  sw.reset();
  std::vector<std::uint8_t> out;
  put_u32(&out, static_cast<std::uint32_t>(comp.size()));
  for (const auto& c : comp) {
    put_u32(&out, static_cast<std::uint32_t>(c.size()));
    out.insert(out.end(), c.begin(), c.end());
  }
  t[2] = sw.seconds();
  return t;
}

}  // namespace hq::apps::bzip2
