// Generic pipeline runner + app registry.
//
// Executes one pipe::graph description on any backend:
//
//   serial              — the serial elision: stages invoked depth-first on
//                         one thread, emissions passed as stack references.
//                         The correctness reference every other backend is
//                         gated against.
//   hyperqueue          — hyperqueues with the slice (bulk) data path; the
//                         scheduler's placement policy feeds
//                         plan_queue_placement from the graph's own
//                         attachment topology and homes each queue on its
//                         consumer stage's node (PR 6 residual closed).
//   hyperqueue_element  — same lowering, element-at-a-time pushes/pops on
//                         every edge (Section 4 baseline data path).
//   pthreads            — explicit-thread baseline over bounded_queue, with
//                         multi-level reorder buffers recovering
//                         serial-elision order behind expand stages.
//   tbb                 — the TBB-style token pipeline baseline
//                         (pipeline/tbb_pipeline.hpp), gathered-list tokens
//                         for expand stages (paper Figure 10a).
//
// Apps register a factory under a name (register_app / REGISTER_HQ_APP via
// registry.cpp); run_app(name, backend, params) builds a fresh instance,
// runs it, and compares its digest against a memoized serial-elision
// reference — the output-equality gate lives here once instead of being
// re-implemented per app.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/builder.hpp"
#include "sched/scheduler.hpp"

namespace hq::pipe {

enum class backend { serial, hyperqueue, hyperqueue_element, pthreads, tbb };

[[nodiscard]] const char* to_string(backend b) noexcept;

/// All registered app-facing backends (everything but `serial`, which is
/// the reference the others are gated against).
[[nodiscard]] const std::vector<backend>& parallel_backends();

struct exec_options {
  unsigned workers = 1;
  std::uint64_t seed = 0;
  /// TBB backend: max in-flight tokens; 0 = 4 * workers.
  std::size_t max_tokens = 0;
  /// Hyperqueue backend: explicit placement; null = environment-driven
  /// (HQ_PLACEMENT / HQ_TOPOLOGY via the scheduler's default ctor).
  const scheduler::placement_config* placement = nullptr;
  /// Admission control at the pipeline boundary (every backend): gate each
  /// source emission against the in-flight window per the policy. The
  /// window counts source emissions not yet retired by the sink, so it is
  /// calibrated for ~1:1 pipelines; expand stages skew the accounting
  /// (never below zero, but the effective window widens).
  admission_opts admission;
};

/// How a run ended. `failed` covers stage exceptions (including injected
/// faults, core/fault.hpp) and allocation failures; `stalled` means the
/// watchdog (sched/watchdog.hpp) cancelled a hung run.
enum class run_outcome { ok, failed, stalled };

[[nodiscard]] const char* to_string(run_outcome o) noexcept;

struct exec_result {
  double seconds = 0;
  run_outcome outcome = run_outcome::ok;
  /// what() of the failure when outcome != ok (filled by run_app; execute()
  /// itself throws instead).
  std::string error;
  /// Hyperqueue backend only: pool counters summed over the chain's queues
  /// and the peak live segment count (zero-steady-state-alloc probes).
  seg_pool_stats pool;
  std::size_t peak_segments = 0;
  /// Hyperqueue backend only: each edge queue's arena home node, in chain
  /// order (-1 = default heap; >= 0 under a placement policy).
  std::vector<int> queue_nodes;
  /// Admission accounting (exec_options::admission; zero when the policy is
  /// none): tokens admitted at the source, tokens shed, and the total time
  /// sources spent blocked on a full window. Queue-level backpressure lives
  /// in `pool` (throttle_waits / throttle_ns / budget_overruns and the byte
  /// footprint fields).
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t admission_wait_ns = 0;
};

/// Run `g` on `b`. Throws graph_error if the description doesn't compile.
/// A stage body that throws cancels the run on every backend: in-flight
/// tokens are reclaimed, worker threads drain out, and the first exception
/// is rethrown here on the calling thread (run_app instead catches it and
/// reports it through exec_result::outcome/error).
exec_result execute(graph& g, backend b, const exec_options& opt = {});

// ---- app registry ----------------------------------------------------------

struct app_params {
  unsigned workers = 1;
  std::uint64_t seed = 0;
  /// Small deterministic inputs (tests / --quick benches) vs full size.
  bool quick = true;
};

/// One constructed app run: describes its pipeline into a graph, then
/// reports a digest of its output after execution. Instances are
/// single-shot; the registry makes a fresh one per run.
class app_instance {
 public:
  virtual ~app_instance() = default;
  virtual void describe(graph& g) = 0;
  [[nodiscard]] virtual std::string digest() const = 0;
};

using app_factory =
    std::function<std::unique_ptr<app_instance>(const app_params&)>;

void register_app(std::string name, app_factory make);
[[nodiscard]] const std::vector<std::string>& registered_apps();
/// Force registration of the built-in apps (bzip2/dedup/ferret). Defined in
/// src/apps/registry.cpp; callers in the same binary get the registrations
/// via this link-time dependency regardless of static-init order.
void ensure_builtin_apps();

struct app_run {
  exec_result exec;
  std::string digest;     ///< this run's output digest
  std::string reference;  ///< serial-elision digest for (app, seed, quick)
  /// digest == reference. False whenever exec.outcome != run_outcome::ok
  /// (a failed run leaves digest empty rather than reporting partial
  /// output as if it were a result).
  bool ok = false;
};

/// Build app `name` with `p`, run it on `b`, and gate the result against
/// the memoized serial-elision reference digest. Throws std::out_of_range
/// for unknown apps.
app_run run_app(const std::string& name, backend b, const app_params& p,
                const exec_options* opt_override = nullptr);

}  // namespace hq::pipe
