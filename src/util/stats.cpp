#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hq::util {

summary summarize(std::vector<double> xs) {
  summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.median = xs[xs.size() / 2];
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

}  // namespace hq::util
