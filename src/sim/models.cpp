#include "sim/models.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <map>

#include "util/rng.hpp"

// All model state and the mutually recursive callback std::functions live on
// the simulating function's stack: every callback runs inside eng.run(),
// which returns only when the event queues are empty, so reference captures
// of locals are safe and there is nothing to free afterwards. (The previous
// shared_ptr<std::function> formulation leaked every run through
// self-referential capture cycles.) Scalars like item/stage indices are
// captured by value — the variables they come from die before the callback
// fires.

namespace hq::sim {

namespace {

/// Deterministic multiplicative jitter in [1-j, 1+j].
double jittered(double mean, double j, util::xoshiro256* rng) {
  return mean * (1.0 + j * (2.0 * rng->uniform() - 1.0));
}

/// Per-item, per-stage cost matrix with jitter (shared by all models so the
/// comparison is apples-to-apples).
std::vector<std::vector<double>> flat_costs(const flat_spec& spec) {
  util::xoshiro256 rng(spec.seed);
  std::vector<std::vector<double>> c(spec.items,
                                     std::vector<double>(spec.stages.size()));
  for (std::size_t i = 0; i < spec.items; ++i) {
    for (std::size_t s = 0; s < spec.stages.size(); ++s) {
      c[i][s] = jittered(spec.stages[s].cost, spec.jitter, &rng);
    }
  }
  return c;
}

}  // namespace

double serial_time_flat(const flat_spec& spec) {
  auto costs = flat_costs(spec);
  double t = 0;
  for (const auto& row : costs) {
    for (double v : row) t += v;
  }
  return t;
}

// ----------------------------------------------------------- flat dataflow

namespace {

/// Shared DAG executor for the objects and hyperqueue models: stage chains
/// per item, serial stages additionally ordered across items. `first_stage`
/// allows skipping stage 0 (pre-executed input phase).
struct flat_dag {
  const flat_spec& spec;
  std::vector<std::vector<double>> costs;
  engine& eng;
  double per_task;
  // Hyperqueue serial stages are single long-running tasks that keep their
  // worker between items; objects/TBB re-enter the scheduler per item.
  bool serial_holds_core;

  // Per serial stage: next item admitted, and parked items ready to enter.
  std::vector<std::size_t> serial_next;
  std::vector<std::map<std::size_t, bool>> parked;

  flat_dag(const flat_spec& s, engine& e, double per_task_overhead,
           bool holds_core)
      : spec(s), costs(flat_costs(s)), eng(e), per_task(per_task_overhead),
        serial_holds_core(holds_core),
        serial_next(s.stages.size(), 0), parked(s.stages.size()) {}

  void arrive(std::size_t item, std::size_t stage) {
    if (stage >= spec.stages.size()) return;
    if (spec.stages[stage].serial) {
      if (item != serial_next[stage]) {
        parked[stage].emplace(item, true);
        return;
      }
      run_serial(item, stage);
    } else {
      eng.submit(costs[item][stage] + per_task,
                 [this, item, stage] { arrive(item, stage + 1); });
    }
  }

  void run_serial(std::size_t item, std::size_t stage) {
    run_serial(item, stage, /*continuation=*/false);
  }

  void run_serial(std::size_t item, std::size_t stage, bool continuation) {
    auto body = [this, item, stage] {
      serial_next[stage] = item + 1;
      arrive(item, stage + 1);
      auto it = parked[stage].find(item + 1);
      if (it != parked[stage].end()) {
        parked[stage].erase(it);
        // The consumer task continues with the next item without giving up
        // its worker when the model says so.
        run_serial(item + 1, stage, serial_holds_core);
      }
    };
    if (continuation) {
      eng.submit_front(costs[item][stage] + per_task, std::move(body));
    } else {
      eng.submit(costs[item][stage] + per_task, std::move(body));
    }
  }
};

}  // namespace

double sim_flat_objects(const flat_spec& spec, const machine& m,
                        const overheads& ov, bool overlap_first_stage) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  flat_dag dag(spec, eng, ov.task_spawn, /*serial_holds_core=*/false);
  double offset = 0;
  if (overlap_first_stage) {
    for (std::size_t i = 0; i < spec.items; ++i) dag.arrive(i, 0);
  } else {
    // Unrestructured input: the driver executes stage 0 for every item
    // before the pipeline tasks run (Section 6.1's "objects" ferret).
    for (std::size_t i = 0; i < spec.items; ++i) offset += dag.costs[i][0];
    dag.serial_next[0] = spec.items;
    for (std::size_t i = 0; i < spec.items; ++i) dag.arrive(i, 1);
  }
  return offset + eng.run();
}

double sim_flat_hyperqueue(const flat_spec& spec, const machine& m,
                           const overheads& ov) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  // Queue hops between every stage pair cost one push+pop per item.
  const double per_task = ov.task_spawn + ov.hq_queue_op;
  flat_dag dag(spec, eng, per_task, /*serial_holds_core=*/true);
  for (std::size_t i = 0; i < spec.items; ++i) dag.arrive(i, 0);
  return eng.run();
}

// ----------------------------------------------------------------- flat tbb

double sim_flat_tbb(const flat_spec& spec, const machine& m, const overheads& ov,
                    std::size_t max_tokens) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  const auto costs = flat_costs(spec);

  struct state_t {
    std::size_t next_token = 0;
    std::size_t in_flight = 0;
    std::vector<std::size_t> serial_next;
    std::vector<bool> serial_busy;
    std::vector<std::map<std::size_t, bool>> parked;
  };
  state_t st;
  st.serial_next.assign(spec.stages.size(), 0);
  st.serial_busy.assign(spec.stages.size(), false);
  st.parked.resize(spec.stages.size());

  // Mutually recursive: declared as std::function for shared callbacks.
  std::function<void(std::size_t, std::size_t)> advance;
  std::function<void()> pump;

  advance = [&](std::size_t item, std::size_t stage) {
    if (stage >= spec.stages.size()) {
      --st.in_flight;
      pump();
      return;
    }
    if (spec.stages[stage].serial) {
      if (st.serial_busy[stage] || item != st.serial_next[stage]) {
        st.parked[stage].emplace(item, true);
        return;
      }
      st.serial_busy[stage] = true;
      eng.submit(costs[item][stage] + ov.tbb_token, [&, item, stage] {
        st.serial_busy[stage] = false;
        st.serial_next[stage] = item + 1;
        auto it = st.parked[stage].find(item + 1);
        if (it != st.parked[stage].end()) {
          st.parked[stage].erase(it);
          advance(item + 1, stage);
        }
        advance(item, stage + 1);
      });
    } else {
      eng.submit(costs[item][stage] + ov.tbb_token,
                 [&, item, stage] { advance(item, stage + 1); });
    }
  };

  pump = [&]() {
    while (st.in_flight < max_tokens && st.next_token < spec.items) {
      const std::size_t item = st.next_token++;
      ++st.in_flight;
      advance(item, 0);  // stage 0 is serial: ordering enforced inside
    }
  };

  pump();
  const double t = eng.run();
  assert(st.in_flight == 0 && st.next_token == spec.items);
  return t;
}

// ------------------------------------------------------------ flat pthreads

double sim_flat_pthreads(const flat_spec& spec, const machine& m,
                         const overheads& ov, unsigned threads_per_stage) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  const auto costs = flat_costs(spec);
  // Oversubscription locality stretch (see overheads::pth_oversub_penalty).
  std::size_t parallel_stages = 0;
  for (const auto& stg : spec.stages) parallel_stages += stg.serial ? 0 : 1;
  const double ratio = static_cast<double>(threads_per_stage) *
                       static_cast<double>(parallel_stages) /
                       static_cast<double>(m.cores);
  const double ramp = std::min(1.0, static_cast<double>(m.cores - 1) / 7.0);
  const double stretch = 1.0 + (ratio > 1.0 ? ov.pth_oversub_penalty * ramp : 0.0);

  // Per stage: a software thread pool of size T (1 for serial stages) pulls
  // from an unbounded queue; the DES core pool models the hardware.
  struct stage_state {
    std::deque<std::size_t> queue;       // items waiting (parallel stages)
    std::map<std::size_t, bool> reorder; // serial stages: by sequence
    std::size_t next_seq = 0;
    unsigned active = 0;
    unsigned limit = 1;
  };
  std::vector<stage_state> st(spec.stages.size());
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    st[s].limit = spec.stages[s].serial ? 1 : threads_per_stage;
  }

  std::function<void(std::size_t)> feed;
  std::function<void(std::size_t, std::size_t)> push_item;

  feed = [&](std::size_t s) {
    stage_state& ss = st[s];
    while (ss.active < ss.limit) {
      std::size_t item;
      if (spec.stages[s].serial) {
        auto it = ss.reorder.find(ss.next_seq);
        if (it == ss.reorder.end()) return;
        item = it->first;
        ss.reorder.erase(it);
        ++ss.next_seq;
      } else {
        if (ss.queue.empty()) return;
        item = ss.queue.front();
        ss.queue.pop_front();
      }
      ++ss.active;
      eng.submit(costs[item][s] * stretch + ov.pth_queue_op, [&, item, s] {
        --st[s].active;
        push_item(item, s + 1);
        feed(s);
      });
    }
  };

  push_item = [&](std::size_t item, std::size_t s) {
    if (s >= spec.stages.size()) return;
    if (spec.stages[s].serial) {
      st[s].reorder.emplace(item, true);
    } else {
      st[s].queue.push_back(item);
    }
    feed(s);
  };

  for (std::size_t i = 0; i < spec.items; ++i) push_item(i, 0);
  return eng.run();
}

// =================================================================== nested

namespace {

struct nested_costs {
  std::vector<std::size_t> fine_count;             // per coarse
  std::vector<std::vector<double>> dedup_c;        // per (coarse, fine)
  std::vector<std::vector<double>> compress_c;     // 0 for duplicates
  std::vector<std::vector<double>> output_c;
  std::vector<double> fragment_c, refine_c;        // per coarse
};

nested_costs make_nested_costs(const nested_spec& spec) {
  util::xoshiro256 rng(spec.seed);
  nested_costs nc;
  nc.fine_count.resize(spec.coarse);
  nc.dedup_c.resize(spec.coarse);
  nc.compress_c.resize(spec.coarse);
  nc.output_c.resize(spec.coarse);
  nc.fragment_c.resize(spec.coarse);
  nc.refine_c.resize(spec.coarse);
  for (std::size_t c = 0; c < spec.coarse; ++c) {
    const double f = 0.5 + rng.uniform();  // 0.5x..1.5x the mean
    nc.fine_count[c] = std::max<std::size_t>(
        1, static_cast<std::size_t>(f * static_cast<double>(spec.fine_per_coarse)));
    nc.fragment_c[c] = jittered(spec.fragment_cost, spec.jitter, &rng);
    nc.refine_c[c] = jittered(spec.refine_cost, spec.jitter, &rng);
    nc.dedup_c[c].resize(nc.fine_count[c]);
    nc.compress_c[c].resize(nc.fine_count[c]);
    nc.output_c[c].resize(nc.fine_count[c]);
    for (std::size_t i = 0; i < nc.fine_count[c]; ++i) {
      nc.dedup_c[c][i] = jittered(spec.dedup_cost, spec.jitter, &rng);
      const bool unique = rng.uniform() < spec.unique_fraction;
      nc.compress_c[c][i] =
          unique ? jittered(spec.compress_cost, spec.jitter, &rng) : 0.0;
      nc.output_c[c][i] = jittered(spec.output_cost, spec.jitter, &rng);
    }
  }
  return nc;
}

double nested_total(const nested_costs& nc) {
  double t = 0;
  for (std::size_t c = 0; c < nc.fine_count.size(); ++c) {
    t += nc.fragment_c[c] + nc.refine_c[c];
    for (std::size_t i = 0; i < nc.fine_count[c]; ++i) {
      t += nc.dedup_c[c][i] + nc.compress_c[c][i] + nc.output_c[c][i];
    }
  }
  return t;
}

/// Serial in-order sink over (coarse, fine) pairs, releasing runs as they
/// become ready. Shared by the nested models.
struct ordered_sink {
  engine& eng;
  const nested_costs& nc;
  double per_op;
  bool holds_core;  // dedicated thread / long-running task vs re-queue
  double cost_scale = 1.0;  // oversubscription stretch (pthreads model)
  std::size_t next_c = 0, next_f = 0;
  std::map<std::pair<std::size_t, std::size_t>, bool> ready;
  bool busy = false;

  ordered_sink(engine& e, const nested_costs& n, double op, bool holds)
      : eng(e), nc(n), per_op(op), holds_core(holds) {}

  void mark_ready(std::size_t c, std::size_t f) {
    ready.emplace(std::make_pair(c, f), true);
    pump(false);
  }

  void pump(bool continuation) {
    if (busy || next_c >= nc.fine_count.size()) return;
    auto it = ready.find({next_c, next_f});
    if (it == ready.end()) return;
    ready.erase(it);
    busy = true;
    const std::size_t c = next_c, f = next_f;
    auto body = [this, c, f] {
      busy = false;
      if (f + 1 == nc.fine_count[c]) {
        ++next_c;
        next_f = 0;
      } else {
        next_f = f + 1;
      }
      pump(holds_core);
    };
    if (continuation) {
      eng.submit_front(nc.output_c[c][f] * cost_scale + per_op, std::move(body));
    } else {
      eng.submit(nc.output_c[c][f] * cost_scale + per_op, std::move(body));
    }
  }
};

}  // namespace

double serial_time_nested(const nested_spec& spec) {
  return nested_total(make_nested_costs(spec));
}

double sim_nested_hyperqueue(const nested_spec& spec, const machine& m,
                             const overheads& ov) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  const nested_costs nc = make_nested_costs(spec);
  ordered_sink sink(eng, nc, ov.hq_queue_op, /*holds_core=*/true);

  // Fragment chain (serial, overlapped); per coarse chunk: a refine task,
  // then a merged dedup+compress task that streams each fine chunk to the
  // sink as it finishes (Figure 10c). The merged task keeps its worker
  // between fine chunks (submit_front) — it is one task in the runtime.
  std::function<void(std::size_t, std::size_t)> dc_step;
  dc_step = [&](std::size_t c, std::size_t f) {
    if (f >= nc.fine_count[c]) return;
    auto body = [&, c, f] {
      sink.mark_ready(c, f);
      dc_step(c, f + 1);
    };
    const double cost = nc.dedup_c[c][f] + nc.compress_c[c][f] + ov.hq_queue_op;
    if (f == 0) {
      eng.submit(cost, std::move(body));
    } else {
      eng.submit_front(cost, std::move(body));
    }
  };

  std::function<void(std::size_t)> frag;
  frag = [&](std::size_t c) {
    if (c >= spec.coarse) return;
    eng.submit(nc.fragment_c[c] + 2 * ov.task_spawn, [&, c] {
      eng.submit(nc.refine_c[c] + ov.task_spawn, [&, c] { dc_step(c, 0); });
      frag(c + 1);
    });
  };
  frag(0);
  return eng.run();
}

double sim_nested_objects(const nested_spec& spec, const machine& m,
                          const overheads& ov) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  const nested_costs nc = make_nested_costs(spec);

  // Per coarse chunk: refine -> one lumped dedup+compress task -> one lumped
  // output task serialized in coarse order (Figure 10a: the whole list must
  // complete before output).
  struct state_t {
    std::size_t out_next = 0;
    std::map<std::size_t, bool> out_ready;
    bool out_busy = false;
  };
  state_t st;

  std::function<void()> out_pump;
  out_pump = [&]() {
    if (st.out_busy) return;
    auto it = st.out_ready.find(st.out_next);
    if (it == st.out_ready.end()) return;
    st.out_ready.erase(it);
    st.out_busy = true;
    const std::size_t c = st.out_next;
    double cost = ov.task_spawn;
    for (double v : nc.output_c[c]) cost += v;
    eng.submit(cost, [&] {
      st.out_busy = false;
      ++st.out_next;
      out_pump();
    });
  };

  std::function<void(std::size_t)> frag;
  frag = [&](std::size_t c) {
    if (c >= spec.coarse) return;
    eng.submit(nc.fragment_c[c] + 3 * ov.task_spawn, [&, c] {
      eng.submit(nc.refine_c[c] + ov.task_spawn, [&, c] {
        double dc = ov.task_spawn;
        for (std::size_t i = 0; i < nc.fine_count[c]; ++i) {
          dc += nc.dedup_c[c][i] + nc.compress_c[c][i];
        }
        eng.submit(dc, [&, c] {
          st.out_ready.emplace(c, true);
          out_pump();
        });
      });
      frag(c + 1);
    });
  };
  frag(0);
  return eng.run();
}

double sim_nested_tbb(const nested_spec& spec, const machine& m,
                      const overheads& ov, std::size_t max_tokens) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  const nested_costs nc = make_nested_costs(spec);

  struct state_t {
    std::size_t next_token = 0;
    std::size_t in_flight = 0;
    bool frag_busy = false;
    std::size_t out_next = 0;
    std::map<std::size_t, bool> out_ready;
    bool out_busy = false;
  };
  state_t st;
  std::function<void()> pump;

  std::function<void()> out_pump;
  out_pump = [&]() {
    if (st.out_busy) return;
    auto it = st.out_ready.find(st.out_next);
    if (it == st.out_ready.end()) return;
    st.out_ready.erase(it);
    st.out_busy = true;
    const std::size_t c = st.out_next;
    double cost = ov.tbb_token;
    for (double v : nc.output_c[c]) cost += v;
    eng.submit(cost, [&] {
      st.out_busy = false;
      ++st.out_next;
      --st.in_flight;
      out_pump();
      pump();
    });
  };

  pump = [&]() {
    while (!st.frag_busy && st.in_flight < max_tokens &&
           st.next_token < spec.coarse) {
      const std::size_t c = st.next_token++;
      ++st.in_flight;
      st.frag_busy = true;
      eng.submit(nc.fragment_c[c] + ov.tbb_token, [&, c] {
        st.frag_busy = false;
        eng.submit(nc.refine_c[c] + ov.tbb_token, [&, c] {
          double dc = ov.tbb_token;
          for (std::size_t i = 0; i < nc.fine_count[c]; ++i) {
            dc += nc.dedup_c[c][i] + nc.compress_c[c][i];
          }
          eng.submit(dc, [&, c] {
            st.out_ready.emplace(c, true);
            out_pump();
          });
        });
        pump();
      });
    }
  };
  pump();
  return eng.run();
}

double sim_nested_pthreads(const nested_spec& spec, const machine& m,
                           const overheads& ov, unsigned threads_per_stage) {
  engine eng({m.cores, m.fpu_pairs, m.fpu_penalty});
  // Locality stretch ramps with core count: more concurrently active stage
  // threads put more pressure on the shared cache (negligible at 1-2 cores,
  // saturated by ~8), and the 3x software-thread oversubscription is what
  // creates it in the first place.
  const double ratio = 3.0 * static_cast<double>(threads_per_stage) /
                       static_cast<double>(m.cores);
  const double ramp = std::min(1.0, static_cast<double>(m.cores - 1) / 7.0);
  const double stretch = 1.0 + (ratio > 1.0 ? ov.pth_oversub_penalty * ramp : 0.0);
  const nested_costs nc = make_nested_costs(spec);
  // The single output thread timeshares like every other stage thread.
  ordered_sink sink(eng, nc, ov.pth_queue_op, /*holds_core=*/true);
  sink.cost_scale = stretch;

  // Stage pools at fine granularity; refine amplifies coarse -> fine.
  struct pool {
    std::deque<std::pair<std::size_t, std::size_t>> queue;
    unsigned active = 0;
    unsigned limit;
    explicit pool(unsigned l) : limit(l) {}
  };
  pool refine_pool(threads_per_stage);
  pool dedup_pool(threads_per_stage);
  pool compress_pool(threads_per_stage);

  std::function<void()> feed_compress;
  feed_compress = [&]() {
    while (compress_pool.active < compress_pool.limit &&
           !compress_pool.queue.empty()) {
      auto [c, f] = compress_pool.queue.front();
      compress_pool.queue.pop_front();
      ++compress_pool.active;
      eng.submit(nc.compress_c[c][f] * stretch + ov.pth_queue_op,
                 [&, c = c, f = f] {
                   --compress_pool.active;
                   sink.mark_ready(c, f);
                   feed_compress();
                 });
    }
  };

  std::function<void()> feed_dedup;
  feed_dedup = [&]() {
    while (dedup_pool.active < dedup_pool.limit && !dedup_pool.queue.empty()) {
      auto [c, f] = dedup_pool.queue.front();
      dedup_pool.queue.pop_front();
      ++dedup_pool.active;
      eng.submit(nc.dedup_c[c][f] * stretch + ov.pth_queue_op, [&, c = c, f = f] {
        --dedup_pool.active;
        if (nc.compress_c[c][f] > 0) {
          compress_pool.queue.emplace_back(c, f);
          feed_compress();
        } else {
          sink.mark_ready(c, f);
        }
        feed_dedup();
      });
    }
  };

  std::function<void()> feed_refine;
  feed_refine = [&]() {
    while (refine_pool.active < refine_pool.limit &&
           !refine_pool.queue.empty()) {
      auto [c, unused] = refine_pool.queue.front();
      (void)unused;
      refine_pool.queue.pop_front();
      ++refine_pool.active;
      eng.submit(nc.refine_c[c] * stretch + ov.pth_queue_op, [&, c = c] {
        --refine_pool.active;
        for (std::size_t f = 0; f < nc.fine_count[c]; ++f) {
          dedup_pool.queue.emplace_back(c, f);
        }
        feed_dedup();
        feed_refine();
      });
    }
  };

  // Fragment: serial chain on the driver, feeding refine.
  std::function<void(std::size_t)> frag;
  frag = [&](std::size_t c) {
    if (c >= spec.coarse) return;
    eng.submit(nc.fragment_c[c] + ov.pth_queue_op, [&, c] {
      refine_pool.queue.emplace_back(c, 0);
      feed_refine();
      frag(c + 1);
    });
  };
  frag(0);
  return eng.run();
}

}  // namespace hq::sim
