// Umbrella header for the hyperqueue library.
//
//   #include "hq.hpp"
//
// brings in the scheduler (hq::scheduler, hq::spawn, hq::sync), task
// dataflow on versioned objects (hq::versioned, hq::indep/outdep/inoutdep),
// and hyperqueues (hq::hyperqueue, hq::pushdep/popdep/pushpopdep).
#pragma once

#include "core/hyperqueue.hpp"   // IWYU pragma: export
#include "sched/dataflow.hpp"    // IWYU pragma: export
#include "sched/scheduler.hpp"   // IWYU pragma: export
#include "sched/spawn.hpp"       // IWYU pragma: export
