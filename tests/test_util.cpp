// Tests for the application substrates: SHA-1, Rabin chunking, LZ77, BWT,
// MTF, zero-RLE, Huffman, mbzip, and the synthetic data generators.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "util/bwt.hpp"
#include "util/datagen.hpp"
#include "util/huffman.hpp"
#include "util/lz77.hpp"
#include "util/mbzip.hpp"
#include "util/rabin.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hq::util;

// -------------------------------------------------------------------- sha1

TEST(Sha1, Fips180TestVectors) {
  EXPECT_EQ(sha1("abc", 3).hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1("", 0).hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  const std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(sha1(msg.data(), msg.size()).hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  sha1_stream s;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk.data(), chunk.size());
  EXPECT_EQ(s.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  auto data = gen_text(10000, 7);
  sha1_stream s;
  std::size_t pos = 0;
  xoshiro256 rng(3);
  while (pos < data.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.below(200), data.size() - pos);
    s.update(data.data() + pos, n);
    pos += n;
  }
  EXPECT_EQ(s.finish(), sha1(data.data(), data.size()));
}

TEST(Sha1, DigestPrefixAndHashable) {
  auto d = sha1("abc", 3);
  EXPECT_EQ(d.prefix64() >> 32, d.h[0]);
  std::hash<sha1_digest> h;
  EXPECT_EQ(h(d), static_cast<std::size_t>(d.prefix64()));
}

// ------------------------------------------------------------------- rabin

TEST(Rabin, ChunksCoverStreamExactly) {
  auto data = gen_archive(1 << 18, 0.3, 11);
  auto chunks = chunk_stream(data.data(), data.size(), 12, 256, 16384);
  ASSERT_FALSE(chunks.empty());
  std::size_t pos = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, pos);
    EXPECT_GT(c.size, 0u);
    EXPECT_LE(c.size, 16384u);
    pos += c.size;
  }
  EXPECT_EQ(pos, data.size());
}

TEST(Rabin, AverageChunkSizeNearTarget) {
  auto data = gen_text(1 << 20, 23);
  auto chunks = chunk_stream(data.data(), data.size(), 12, 64, 65536);
  const double avg = static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  // Expected ~4096; allow generous slack (content-dependent).
  EXPECT_GT(avg, 1024.0);
  EXPECT_LT(avg, 16384.0);
}

TEST(Rabin, ContentDefinedCutsShiftInvariant) {
  // Inserting a prefix must not change chunk boundaries far after it —
  // the property that makes dedup find duplicates at shifted offsets.
  auto base = gen_text(1 << 16, 5);
  std::vector<std::uint8_t> shifted(base);
  shifted.insert(shifted.begin(), {'X', 'Y', 'Z', 'Q', 'W'});
  auto c1 = chunk_stream(base.data(), base.size(), 10, 128, 8192);
  auto c2 = chunk_stream(shifted.data(), shifted.size(), 10, 128, 8192);
  ASSERT_GT(c1.size(), 4u);
  ASSERT_GT(c2.size(), 4u);
  // Compare the last chunk *contents* (boundaries resynchronize).
  const auto& l1 = c1.back();
  const auto& l2 = c2.back();
  ASSERT_EQ(l1.size, l2.size);
  EXPECT_TRUE(std::equal(base.begin() + static_cast<std::ptrdiff_t>(l1.offset),
                         base.end(),
                         shifted.begin() + static_cast<std::ptrdiff_t>(l2.offset)));
}

TEST(Rabin, EmptyAndTinyInputs) {
  EXPECT_TRUE(chunk_stream(nullptr, 0, 12, 256, 8192).empty());
  std::uint8_t one = 42;
  auto c = chunk_stream(&one, 1, 12, 256, 8192);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].size, 1u);
}

// -------------------------------------------------------------------- lz77

TEST(Lz77, RoundtripText) {
  auto data = gen_text(100000, 42);
  auto comp = lz77_compress(data.data(), data.size());
  EXPECT_LT(comp.size(), data.size()) << "text must compress";
  auto back = lz77_decompress(comp.data(), comp.size());
  EXPECT_EQ(back, data);
}

TEST(Lz77, RoundtripIncompressibleRandom) {
  xoshiro256 rng(9);
  std::vector<std::uint8_t> data(50000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  auto comp = lz77_compress(data.data(), data.size());
  auto back = lz77_decompress(comp.data(), comp.size());
  EXPECT_EQ(back, data);
}

TEST(Lz77, RoundtripEdgeCases) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u}) {
    std::vector<std::uint8_t> data(n, 0xAB);
    auto comp = lz77_compress(data.data(), data.size());
    auto back = lz77_decompress(comp.data(), comp.size());
    EXPECT_EQ(back, data) << "n=" << n;
  }
}

TEST(Lz77, OverlappingMatchesReplicate) {
  // "aaaa..." forces matches with dist < len.
  std::vector<std::uint8_t> data(10000, 'a');
  auto comp = lz77_compress(data.data(), data.size());
  EXPECT_LT(comp.size(), 200u) << "runs must compress drastically";
  EXPECT_EQ(lz77_decompress(comp.data(), comp.size()), data);
}

TEST(Lz77, RejectsCorruptInput) {
  auto data = gen_text(1000, 1);
  auto comp = lz77_compress(data.data(), data.size());
  comp.resize(comp.size() / 2);  // truncate
  EXPECT_THROW(lz77_decompress(comp.data(), comp.size()), std::runtime_error);
}

// --------------------------------------------------------------------- bwt

TEST(Bwt, KnownTransform) {
  // Classic example: "banana" rotations sorted -> last column "nnbaaa",
  // primary index = row of the original rotation.
  const std::string s = "banana";
  auto r = bwt_forward(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  std::string last(r.last_column.begin(), r.last_column.end());
  EXPECT_EQ(last, "nnbaaa");
  auto back = bwt_inverse(r.last_column.data(), r.last_column.size(), r.primary_index);
  EXPECT_EQ(std::string(back.begin(), back.end()), s);
}

TEST(Bwt, RoundtripVariousInputs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (std::size_t n : {0u, 1u, 2u, 17u, 256u, 4096u}) {
      auto data = gen_text(n, seed);
      auto r = bwt_forward(data.data(), data.size());
      auto back = bwt_inverse(r.last_column.data(), r.last_column.size(),
                              r.primary_index);
      EXPECT_EQ(back, data) << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(Bwt, PeriodicInputRoundtrip) {
  // Fully periodic inputs are the pathological case for rotation sorting.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>("ab"[i % 2]));
  auto r = bwt_forward(data.data(), data.size());
  auto back = bwt_inverse(r.last_column.data(), r.last_column.size(), r.primary_index);
  EXPECT_EQ(back, data);
  std::vector<std::uint8_t> same(512, 'z');
  auto r2 = bwt_forward(same.data(), same.size());
  auto back2 = bwt_inverse(r2.last_column.data(), r2.last_column.size(),
                           r2.primary_index);
  EXPECT_EQ(back2, same);
}

TEST(Bwt, MtfRoundtrip) {
  auto data = gen_text(5000, 77);
  auto enc = mtf_encode(data.data(), data.size());
  auto dec = mtf_decode(enc.data(), enc.size());
  EXPECT_EQ(dec, data);
}

TEST(Bwt, MtfAfterBwtSkewsTowardsZero) {
  auto data = gen_text(1 << 16, 13);
  auto r = bwt_forward(data.data(), data.size());
  auto enc = mtf_encode(r.last_column.data(), r.last_column.size());
  const std::size_t zeros =
      static_cast<std::size_t>(std::count(enc.begin(), enc.end(), 0));
  EXPECT_GT(zeros, enc.size() / 4) << "BWT+MTF must concentrate zeros";
}

TEST(Bwt, ZrleRoundtrip) {
  auto data = gen_text(10000, 3);
  auto r = bwt_forward(data.data(), data.size());
  auto mtf = mtf_encode(r.last_column.data(), r.last_column.size());
  auto rle = zrle_encode(mtf.data(), mtf.size());
  auto back = zrle_decode(rle.data(), rle.size());
  EXPECT_EQ(back, mtf);
  EXPECT_LT(rle.size(), mtf.size()) << "zero runs must shrink";
}

TEST(Bwt, ZrleLongRuns) {
  std::vector<std::uint8_t> data(1000, 0);
  auto rle = zrle_encode(data.data(), data.size());
  EXPECT_LE(rle.size(), 10u);
  EXPECT_EQ(zrle_decode(rle.data(), rle.size()), data);
}

// ----------------------------------------------------------------- huffman

TEST(Huffman, RoundtripText) {
  auto data = gen_text(60000, 4);
  auto enc = huffman_encode(data.data(), data.size());
  auto dec = huffman_decode(enc.data(), enc.size(), data.size());
  EXPECT_EQ(dec, data);
  EXPECT_LT(enc.size(), data.size());
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint8_t> data(5000, 'x');
  auto enc = huffman_encode(data.data(), data.size());
  auto dec = huffman_decode(enc.data(), enc.size(), data.size());
  EXPECT_EQ(dec, data);
}

TEST(Huffman, SkewedFrequenciesDepthLimited) {
  // Fibonacci-like frequencies force deep trees; the depth limiter must kick
  // in and the code must still round-trip.
  std::vector<std::uint8_t> data;
  std::uint64_t a = 1, b = 1;
  for (int s = 0; s < 40; ++s) {
    for (std::uint64_t i = 0; i < a && data.size() < 300000; ++i) {
      data.push_back(static_cast<std::uint8_t>(s));
    }
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  auto enc = huffman_encode(data.data(), data.size());
  auto dec = huffman_decode(enc.data(), enc.size(), data.size());
  EXPECT_EQ(dec, data);
}

TEST(Huffman, EmptyInput) {
  auto enc = huffman_encode(nullptr, 0);
  auto dec = huffman_decode(enc.data(), enc.size(), 0);
  EXPECT_TRUE(dec.empty());
}

TEST(Huffman, BitIoRoundtrip) {
  bit_writer bw;
  bw.put(0b101, 3);
  bw.put(0b1, 1);
  bw.put(0xABCD, 16);
  auto bytes = bw.finish();
  bit_reader br(bytes.data(), bytes.size());
  std::uint32_t v = 0;
  for (int i = 0; i < 20; ++i) v = (v << 1) | static_cast<std::uint32_t>(br.get());
  EXPECT_EQ(v, (0b101u << 17) | (0b1u << 16) | 0xABCDu);
}

// ------------------------------------------------------------------- mbzip

TEST(Mbzip, BlockRoundtrip) {
  auto data = gen_text(100000, 21);
  auto comp = mbzip_compress_block(data.data(), data.size());
  EXPECT_LT(comp.size(), data.size()) << "text must compress";
  EXPECT_EQ(mbzip_decompress_block(comp.data(), comp.size()), data);
}

TEST(Mbzip, StreamRoundtripMultipleBlocks) {
  auto data = gen_text(300000, 8);
  auto comp = mbzip_compress(data.data(), data.size(), 65536);
  EXPECT_EQ(mbzip_decompress(comp.data(), comp.size()), data);
}

TEST(Mbzip, CompressionBeatsLz77OnText) {
  auto data = gen_text(1 << 17, 15);
  auto bz = mbzip_compress(data.data(), data.size(), 1 << 16);
  auto lz = lz77_compress(data.data(), data.size());
  EXPECT_LT(bz.size(), lz.size()) << "BWT stack should beat greedy LZ on text";
}

TEST(Mbzip, EmptyAndTiny) {
  auto comp = mbzip_compress(nullptr, 0, 1024);
  EXPECT_TRUE(mbzip_decompress(comp.data(), comp.size()).empty());
  std::uint8_t b = 'q';
  auto c1 = mbzip_compress(&b, 1, 1024);
  auto d1 = mbzip_decompress(c1.data(), c1.size());
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0], 'q');
}

// ----------------------------------------------------------------- datagen

TEST(Datagen, Deterministic) {
  EXPECT_EQ(gen_text(1000, 5), gen_text(1000, 5));
  EXPECT_NE(gen_text(1000, 5), gen_text(1000, 6));
  EXPECT_EQ(gen_archive(10000, 0.3, 5), gen_archive(10000, 0.3, 5));
}

TEST(Datagen, ArchiveDupFractionControlsDuplicates) {
  auto with_dups = gen_archive(1 << 20, 0.5, 9);
  auto without = gen_archive(1 << 20, 0.0, 9);
  auto c_dups = lz77_compress(with_dups.data(), with_dups.size());
  auto c_none = lz77_compress(without.data(), without.size());
  EXPECT_LT(c_dups.size(), c_none.size())
      << "duplicated blocks must make the stream more compressible";
}

TEST(Datagen, ImageInRangeAndDeterministic) {
  auto img = gen_image(64, 48, 77);
  ASSERT_EQ(img.size(), 64u * 48u);
  for (float v : img) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  EXPECT_EQ(img, gen_image(64, 48, 77));
}

TEST(Datagen, DirTreeCountsFiles) {
  auto tree = gen_dir_tree(500, 3);
  std::size_t count = 0;
  auto walk = [&](auto&& self, const dir_tree::dir_node& n) -> void {
    count += n.files.size();
    for (const auto& d : n.subdirs) self(self, d);
  };
  walk(walk, tree.root);
  EXPECT_EQ(count, 500u);
}

// ------------------------------------------------------------- stats/table

TEST(Stats, SummaryBasics) {
  auto s = summarize({1, 2, 3, 4, 100});
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.n, 5u);
}

TEST(Table, RendersAligned) {
  hq::util::table t({"stage", "time"});
  t.add_row({"input", hq::util::table::cell(1.5)});
  t.add_row({"rank", hq::util::table::cell(10.25)});
  const std::string out = t.str("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("stage"), std::string::npos);
  EXPECT_NE(out.find("10.250"), std::string::npos);
}

}  // namespace
