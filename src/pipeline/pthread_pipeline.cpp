// The pthreads baseline is header-only (templates over item types); this
// translation unit exists to give the module a home for future non-template
// helpers and to type-check the header standalone.
#include "pipeline/pthread_pipeline.hpp"
