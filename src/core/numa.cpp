#include "core/numa.hpp"

#include <cstdint>
#include <new>

#include "core/fault.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hq::numa {

namespace {

#if defined(__linux__)

constexpr std::size_t kPage = 4096;
// From <numaif.h>, which may not be installed: prefer the node but fall
// back to others under pressure — arenas must never fail just because one
// node is full.
constexpr int kMpolPreferred = 1;

std::size_t page_round(std::size_t bytes) {
  return (bytes + kPage - 1) / kPage * kPage;
}

void bind_region(void* p, std::size_t bytes, int node) {
#ifdef __NR_mbind
  if (node < 0 || node >= 64) return;
  // Injected bind failure: skip the mbind, exercising the first-touch
  // fallback the comment below describes (the mapping still works).
  if (fault::failpoint("numa.bind")) return;
  unsigned long mask = 1ul << node;
  // Failure (no NUMA support, synthetic node id, seccomp) leaves the
  // mapping on first-touch policy — intentionally ignored.
  (void)syscall(__NR_mbind, p, bytes, kMpolPreferred, &mask,
                sizeof(mask) * 8 + 1, 0);
#else
  (void)p;
  (void)bytes;
  (void)node;
#endif
}

#endif  // __linux__

}  // namespace

bool binding_available() noexcept {
#if defined(__linux__) && defined(__NR_mbind)
  return true;
#else
  return false;
#endif
}

void* alloc(std::size_t bytes, std::size_t align, int node) {
  if (fault::failpoint("numa.map")) throw std::bad_alloc();
#if defined(__linux__)
  const std::size_t mapped = page_round(bytes);
  if (align <= kPage) {
    void* p = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::bad_alloc();
    bind_region(p, mapped, node);
    return p;
  }
  // Over-map and trim to carve an alignment stronger than a page (slab
  // arenas align to their own size so a block's slab header is one mask
  // away).
  const std::size_t total = mapped + align;
  auto* raw = static_cast<char*>(::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
  if (raw == MAP_FAILED) throw std::bad_alloc();
  auto base = reinterpret_cast<std::uintptr_t>(raw);
  const std::uintptr_t aligned = (base + align - 1) & ~(align - 1);
  if (aligned != base) ::munmap(raw, aligned - base);
  const std::uintptr_t end = base + total;
  if (aligned + mapped != end) {
    ::munmap(reinterpret_cast<void*>(aligned + mapped), end - (aligned + mapped));
  }
  void* p = reinterpret_cast<void*>(aligned);
  bind_region(p, mapped, node);
  return p;
#else
  (void)node;  // no binding off Linux; plain aligned heap memory
  void* p = ::operator new(bytes, std::align_val_t{align});
  std::memset(p, 0, bytes);
  return p;
#endif
}

void free(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
#if defined(__linux__)
  ::munmap(p, page_round(bytes));
  (void)align;
#else
  (void)bytes;
  ::operator delete(p, std::align_val_t{align});
#endif
}

int current_node() noexcept {
#if defined(__linux__) && defined(__NR_getcpu)
  unsigned cpu = 0, node = 0;
  if (syscall(__NR_getcpu, &cpu, &node, nullptr) != 0) return -1;
  return static_cast<int>(node);
#else
  return -1;
#endif
}

}  // namespace hq::numa
