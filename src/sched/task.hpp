// Task frames: the per-spawn bookkeeping record of the runtime.
//
// A frame exists from spawn until completion. It carries the closure, the
// join counter for the implicit sync at task return, the dataflow dependency
// state (pending-dependency counter plus the list of dependents to notify),
// completion hooks (used by versioned-object trackers and hyperqueue view
// reduction), and the per-queue attachments.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "conc/inline_vec.hpp"
#include "conc/spinlock.hpp"
#include "sched/task_fn.hpp"

namespace hq {

class scheduler;

namespace detail {

struct qattach;  // defined in core/queue_cb.hpp

/// Thrown by cancellable blocking waits (hq::sync, queue wait_data, fault
/// stalls) once the scheduler's cancellation epoch flips after a failure.
/// Deliberately NOT derived from std::exception: stage bodies that catch
/// std::exception must not swallow the unwind. The execute() guard absorbs
/// it; it never escapes scheduler::run().
struct cancel_unwind {};

struct task_frame {
  task_frame(scheduler* s, task_frame* p)
      : sched(s), parent(p), depth(p ? p->depth + 1 : 0) {}

  task_frame(const task_frame&) = delete;
  task_frame& operator=(const task_frame&) = delete;

  scheduler* const sched;
  task_frame* const parent;
  const unsigned depth;

  /// Magazine that owns this frame's memory (kPoolExternal for frames
  /// heap-allocated outside any worker, e.g. roots launched from external
  /// threads). Set by scheduler::alloc_frame right after construction.
  unsigned pool_owner = ~0u;

  /// Frame this one is nested on via help-while-blocked execution (the
  /// worker's execution stack, not the spawn tree). Set by execute(); only
  /// meaningful while the frame runs, and only read by its own worker.
  task_frame* exec_parent = nullptr;

  task_fn fn;

  /// Children spawned and not yet completed; sync() waits for zero.
  std::atomic<std::uint32_t> live_children{0};

  /// Unsatisfied scheduling dependences plus one "spawn guard" that is
  /// released once argument registration finishes; the frame becomes ready
  /// when this reaches zero.
  std::atomic<std::int32_t> pending_deps{1};

  /// Frames whose pending_deps must be decremented when this one completes.
  /// Guarded by dep_mu together with `completed`.
  spinlock dep_mu;
  bool completed = false;
  inline_vec<task_frame*, 4> dependents;

  /// Actions run at completion (after the implicit sync, before dependents
  /// are notified): tracker deregistration, hyperqueue view reduction.
  /// hook_fn keeps these allocation-free (every runtime hook fits inline).
  inline_vec<hook_fn, 4> completion_hooks;

  /// Hyperqueue attachments of this task (owned by the queue control block).
  inline_vec<qattach*, 2> attachments;

  /// Register `d` as waiting on this frame. Returns false when this frame
  /// already completed (no dependence needed). The caller must have bumped
  /// d->pending_deps beforehand and must undo it on false.
  bool add_dependent(task_frame* d) {
    std::lock_guard<spinlock> lk(dep_mu);
    if (completed) return false;
    dependents.push_back(d);
    return true;
  }

  /// Add a dependence of `succ` on `pred` (no-op when pred already done).
  static void depend(task_frame* succ, task_frame* pred) {
    assert(succ != pred);
    succ->pending_deps.fetch_add(1, std::memory_order_relaxed);
    if (!pred->add_dependent(succ)) {
      succ->pending_deps.fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

/// Per-thread worker context; null on threads that are not scheduler workers.
struct worker_ctx;
extern thread_local worker_ctx* t_worker;

/// The frame of the task currently executing on this thread (null outside
/// task context).
task_frame* current_frame() noexcept;

}  // namespace detail
}  // namespace hq
