// Figure 8 reproduction: ferret speedup vs cores for Pthreads, TBB,
// Objects (task dataflow) and Hyperqueue.
//
// Stage costs are measured on this host (serial kernels); the speedup
// curves are produced by the virtual-time scheduling models because this
// host has a single core (see DESIGN.md substitutions). The FPU-pairing
// penalty of the paper's Bulldozer testbed is modeled past 16 cores.
// Expected shape: pthreads ≈ TBB ≈ hyperqueue scaling to ~27x with a dip
// past 16 cores; objects plateaus near 13x (unoverlapped input stage).
//
// A real-execution validation block runs all four implementations at the
// host's core count and checks output equality.
#include <cstdlib>
#include <string>

#include "apps/ferret/ferret.hpp"
#include "calibrate.hpp"
#include "quick.hpp"
#include "sim/models.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const bool quick = hq::bench::quick_mode(argc, argv);
  hq::apps::ferret::config cfg;
  cfg.num_images = 300;
  if (const char* env = std::getenv("HQ_FERRET_IMAGES")) {
    cfg.num_images = static_cast<std::size_t>(std::atol(env));
  }
  if (quick) cfg.num_images = 60;

  // 1. Host-measured per-item stage costs.
  auto t = hq::apps::ferret::stage_times(cfg);
  const double n = static_cast<double>(cfg.num_images);
  hq::sim::flat_spec spec;
  spec.stages = {{true, t[0] / n},  {false, t[1] / n}, {false, t[2] / n},
                 {false, t[3] / n}, {false, t[4] / n}, {true, t[5] / n}};
  spec.items = quick ? 350 : 3500;  // paper 'native' iteration count
  spec.jitter = 0.15;
  spec.seed = cfg.seed;
  const double serial = hq::sim::serial_time_flat(spec);

  // 2. Host-calibrated runtime overheads.
  auto ov = hq::bench::calibrate_overheads();

  // 3. Sweep the paper's core counts.
  hq::util::table table(
      {"Cores", "Pthreads", "TBB", "Objects", "Hyperqueue"});
  for (unsigned p : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
    auto m = hq::bench::paper_machine(p);
    const double sp_pth =
        serial / hq::sim::sim_flat_pthreads(spec, m, ov, /*threads=*/p);
    const double sp_tbb = serial / hq::sim::sim_flat_tbb(spec, m, ov, 4 * p);
    const double sp_obj =
        serial / hq::sim::sim_flat_objects(spec, m, ov, /*overlap=*/false);
    const double sp_hq = serial / hq::sim::sim_flat_hyperqueue(spec, m, ov);
    table.add_row({hq::util::table::cell(static_cast<std::uint64_t>(p)),
                   hq::util::table::cell(sp_pth, 2),
                   hq::util::table::cell(sp_tbb, 2),
                   hq::util::table::cell(sp_obj, 2),
                   hq::util::table::cell(sp_hq, 2)});
  }
  table.print("Figure 8: ferret speedup over serial (virtual-time models, "
              "host-measured stage costs)");

  // 4. Real-execution validation on this host.
  hq::apps::ferret::config small = cfg;
  small.num_images = quick ? 24 : 96;
  small.threads = std::max(1u, std::thread::hardware_concurrency());
  auto serial_r = hq::apps::ferret::run_serial(small);
  auto pth_r = hq::apps::ferret::run_pthreads(small);
  auto tbb_r = hq::apps::ferret::run_tbb(small);
  auto obj_r = hq::apps::ferret::run_objects(small);
  auto hqq_r = hq::apps::ferret::run_hyperqueue(small);
  const bool ok = pth_r.checksum == serial_r.checksum &&
                  tbb_r.checksum == serial_r.checksum &&
                  obj_r.checksum == serial_r.checksum &&
                  hqq_r.checksum == serial_r.checksum;
  hq::util::table val({"Variant", "Time (s)", "Checksum matches serial"});
  val.add_row({"serial", hq::util::table::cell(serial_r.seconds, 3), "-"});
  val.add_row({"pthreads", hq::util::table::cell(pth_r.seconds, 3),
               pth_r.checksum == serial_r.checksum ? "yes" : "NO"});
  val.add_row({"tbb", hq::util::table::cell(tbb_r.seconds, 3),
               tbb_r.checksum == serial_r.checksum ? "yes" : "NO"});
  val.add_row({"objects", hq::util::table::cell(obj_r.seconds, 3),
               obj_r.checksum == serial_r.checksum ? "yes" : "NO"});
  val.add_row({"hyperqueue", hq::util::table::cell(hqq_r.seconds, 3),
               hqq_r.checksum == serial_r.checksum ? "yes" : "NO"});
  val.print("Real execution at " + std::to_string(small.threads) +
            " worker(s) on this host (validation)");
  return ok ? 0 : 1;
}
