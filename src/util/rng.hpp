// Deterministic, fast PRNGs for workload generation (xoshiro256** and
// splitmix64). All synthetic inputs in benches/tests are seeded so every
// run processes byte-identical data.
#pragma once

#include <cstdint>

namespace hq::util {

/// splitmix64: seed expander (also a decent standalone generator).
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256**: the workhorse generator.
class xoshiro256 {
 public:
  explicit xoshiro256(std::uint64_t seed = 1) noexcept {
    for (auto& si : s_) si = splitmix64(seed);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() noexcept { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hq::util
