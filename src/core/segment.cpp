#include "core/segment.hpp"

#include <bit>
#include <new>

#include "core/fault.hpp"
#include "core/numa.hpp"

namespace hq::detail {

namespace {

std::size_t segment_alignment(const element_ops* ops) {
  // The padded index lines require cache-line alignment of the header; the
  // slot array additionally honors the element alignment.
  std::size_t align = alignof(segment) > kCacheLine ? alignof(segment) : kCacheLine;
  return ops->align > align ? ops->align : align;
}

std::size_t padded_header(const element_ops* ops) {
  const std::size_t elem_align = ops->align > alignof(segment) ? ops->align
                                                               : alignof(segment);
  return (sizeof(segment) + elem_align - 1) / elem_align * elem_align;
}

}  // namespace

std::size_t segment::footprint_bytes(std::uint64_t capacity,
                                     const element_ops* ops) noexcept {
  return padded_header(ops) + capacity * ops->size;
}

segment* segment::create(std::uint64_t capacity, const element_ops* ops,
                         data_path_counters* counters, int node) {
  assert(capacity >= 2 && std::has_single_bit(capacity));
  if (fault::failpoint("segment.alloc")) throw std::bad_alloc();
  // One allocation: [segment header | padding to element alignment | slots].
  const std::size_t align = segment_alignment(ops);
  const std::size_t header = padded_header(ops);
  const std::size_t bytes = header + capacity * ops->size;
  std::byte* raw;
  std::size_t map_bytes = 0;
  if (node >= 0) {
    // Node-homed arena: page-granular mapping bound to the queue's home
    // node, so the slot array — the bytes every element crosses — lives
    // next to its consumer. The sub-page waste is irrelevant at the default
    // segment sizes (hundreds of slots), and segments recycle through the
    // queue's free list rather than being re-mapped per chain link.
    raw = static_cast<std::byte*>(numa::alloc(bytes, align, node));
    map_bytes = bytes;
  } else {
    raw = static_cast<std::byte*>(::operator new(bytes, std::align_val_t{align}));
  }
  return ::new (raw) segment(capacity, ops, raw + header, counters, map_bytes);
}

void segment::destroy(segment* s) {
  assert(s->head.load(std::memory_order_relaxed) ==
             s->tail.load(std::memory_order_relaxed) &&
         "elements must be destroyed before freeing a segment");
  const std::size_t align = segment_alignment(s->ops);
  const std::size_t map_bytes = s->map_bytes_;
  s->~segment();
  if (map_bytes != 0) {
    numa::free(static_cast<void*>(s), map_bytes, align);
  } else {
    ::operator delete(static_cast<void*>(s), std::align_val_t{align});
  }
}

}  // namespace hq::detail
