// Work-stealing task scheduler (the Swan-style substrate of the paper).
//
// Help-first spawning: spawn() enqueues the child on the calling worker's
// Chase–Lev deque and the parent continues; idle workers steal oldest-first.
// All waiting primitives (sync, blocking hyperqueue operations) re-enter the
// scheduler through help_one()/wait_until(), so a "blocked" worker keeps
// executing ready tasks — this realizes the paper's block-the-worker policy
// (Section 4.5) without losing progress, and makes single-worker execution
// of pipelines deadlock-free.
//
// Hot-path design (the "scale-free" requirement of the paper's Section 1:
// one task per element/batch must stay cheap at any worker count):
//  * task frames come from a per-worker magazine pool (sched/obj_pool.hpp) —
//    steady-state pipelines spawn with zero mallocs;
//  * event counters are per-worker cache lines, aggregated in stats();
//  * enqueue() touches the shared work_epoch_/idle_cv_ lines only when a
//    worker is actually parked.
//
// Topology awareness (core/topology.hpp): under a placement policy each
// worker is assigned a CPU (deterministically, from the topology model and
// policy alone), pinned to it when the machine allows, and given a home
// NUMA node that its frame/attachment magazines allocate on. The steal
// sweep walks a precomputed per-worker victim list ordered by topology
// distance — SMT sibling, then LLC peer, then node peer, then remote — so
// stolen frames and their queue records stay as close as the machine
// permits. With no policy the victim order is a plain index rotation;
// either way it is a pure function of (worker id, policy, topology), which
// keeps scheduling decisions reproducible.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "conc/backoff.hpp"
#include "conc/cache.hpp"
#include "conc/chase_lev_deque.hpp"
#include "core/topology.hpp"
#include "sched/obj_pool.hpp"
#include "sched/task.hpp"
#include "sched/task_fn.hpp"

namespace hq {

namespace detail {

struct worker_ctx {
  scheduler* sched = nullptr;
  unsigned index = 0;
  chase_lev_deque<task_frame> deque;
  task_frame* current = nullptr;

  // Placement (scheduler ctor, immutable afterwards). cpu is the assigned
  // logical CPU (-1 under policy none); node/llc/core are its dense domain
  // ids in the scheduler's topology model. With a synthetic model the
  // assignment is logical: pinning to a CPU the machine lacks fails and
  // leaves pinned false, but arenas and steal order still follow the ids.
  int cpu = -1;
  int node = -1;
  int llc = -1;
  int core = -1;
  bool pinned = false;
  /// Steal sweep order: every other worker index, nearest first (see
  /// scheduler class comment). Precomputed once — the sweep is branch-light
  /// and identical run over run.
  std::vector<unsigned> victims;

  /// Monotonic event counters on the worker's own cache line: written
  /// relaxed by the owning worker only, read by scheduler::stats() from any
  /// thread. Keeping them out of the scheduler object removes the shared
  /// fetch_add per spawn/execute/steal.
  struct alignas(kCacheLine) counters_t {
    std::atomic<std::uint64_t> spawns{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> helps{0};
  } counters;

  /// Backpressure marker: the hyperqueue this worker is currently throttled
  /// on (core/queue_cb.cpp budget wait), null when not throttled. Written by
  /// the owning worker, read by the watchdog's diagnostic dump so a worker
  /// blocked on a memory budget reports `blocked_on: budget(queue)` instead
  /// of looking like a stall.
  std::atomic<const void*> blocked_on_budget{nullptr};
};

}  // namespace detail

/// Work-stealing scheduler over a fixed pool of worker threads. Construct
/// once, call run() any number of times (serially) — workers park in between.
class scheduler {
 public:
  /// Worker placement request. Default-constructed = policy none on the
  /// detected topology, i.e. the pre-topology behavior.
  struct placement_config {
    placement_policy policy = placement_policy::none;
    /// Topology model to place against; null = topology::detect() (which
    /// honors HQ_TOPOLOGY). Copied — the pointee need not outlive the call.
    const topology* topo = nullptr;
    /// Explicit worker->CPU assignment, overriding plan_placement. Workers
    /// beyond the list wrap modulo. Used by benches to build exact pairings
    /// (same-LLC vs cross-node).
    std::vector<unsigned> explicit_cpus;
  };

  /// @param num_workers worker thread count (>=1); this is the paper's "core
  /// count" knob. Defaults to hardware concurrency. Placement comes from the
  /// environment (HQ_PLACEMENT / HQ_TOPOLOGY).
  explicit scheduler(unsigned num_workers = 0);
  /// Explicit placement (tests/benches); the env knobs are ignored except
  /// through topology::detect() when cfg.topo is null.
  scheduler(unsigned num_workers, placement_config cfg);
  ~scheduler();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  /// Execute `f` as the root task and block until it (and all transitively
  /// spawned tasks) complete. Must not be called from inside a task.
  ///
  /// Failure semantics: the first exception a task body throws is captured
  /// into the scheduler's failure slot, flips the cancellation epoch (so
  /// remaining frames skip their bodies and blocking waits unwind), and is
  /// rethrown here on the calling thread once the root completes. The
  /// scheduler and its pools stay consistent — the next run() starts clean.
  template <typename F>
  void run(F&& f) {
    run_root(task_fn(std::forward<F>(f)));
  }

  [[nodiscard]] unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Scheduler of the calling worker thread (null on external threads).
  static scheduler* current() noexcept;

  /// Monotonic event counters, for the overhead benches. Aggregated from the
  /// per-worker counters (see worker_ctx::counters_t).
  struct stats_t {
    std::uint64_t spawns = 0;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t helps = 0;  // tasks executed inside a wait
    /// Backpressure-throttle accounting (queue memory budgets): wait-loop
    /// iterations and total blocked wall time across all workers. The
    /// watchdog counts throttle_waits as progress — a producer parked on a
    /// budget is waiting by design, not stalled.
    std::uint64_t throttle_waits = 0;
    std::uint64_t throttle_ns = 0;
  };
  [[nodiscard]] stats_t stats() const;
  void reset_stats();

  /// Per-worker counters plus where the worker actually sits: the CPU it
  /// was bound to (-1 under policy none), the dense node/llc ids of that
  /// CPU in topo(), and whether the OS accepted the pin (false when the
  /// placement is logical-only, e.g. a synthetic topology wider than the
  /// machine).
  struct worker_stats_t {
    unsigned worker = 0;
    int cpu = -1;
    int node = -1;
    int llc = -1;
    bool pinned = false;
    std::uint64_t spawns = 0;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t helps = 0;
    std::size_t deque_depth = 0;  ///< ready frames on the worker's deque
    /// Queue this worker is throttled on right now (memory-budget wait);
    /// null when it is not. See worker_ctx::blocked_on_budget.
    const void* blocked_on_budget = nullptr;
  };
  [[nodiscard]] std::vector<worker_stats_t> per_worker_stats() const;

  /// The topology model this scheduler placed against.
  [[nodiscard]] const topology& topo() const noexcept { return topo_; }
  [[nodiscard]] placement_policy policy() const noexcept { return policy_; }

  // ------------- failure propagation / cooperative cancellation -----------

  /// Record the first failure of the current run (first-failure-wins) and
  /// flip the cancellation epoch: subsequent frames skip their bodies and
  /// every cancellable blocking wait unwinds with detail::cancel_unwind.
  /// Safe from any thread (workers, the watchdog monitor).
  void record_failure(std::exception_ptr e) noexcept;

  /// True once the current run is cancelling (a failure was recorded).
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Unwind the calling task if the run is cancelling. Blocking loops that
  /// run in destructor context (queue teardown) must NOT call this.
  void throw_if_cancelled() const {
    if (cancelled()) [[unlikely]]
      throw detail::cancel_unwind{};
  }

  /// Stall-watchdog knob (also set from HQ_WATCHDOG_MS at construction):
  /// when nonzero, every run() is monitored and a no-progress interval of
  /// this many milliseconds cancels the run with a hq::stall_error carrying
  /// a per-worker diagnostic dump (and aborts the process if cancellation
  /// itself makes no progress for `grace` further intervals).
  void set_watchdog(unsigned ms, unsigned grace_intervals = 8) noexcept {
    watchdog_ms_ = ms;
    watchdog_grace_ = grace_intervals;
  }

  // Run-state introspection for the watchdog's diagnostic dump.
  [[nodiscard]] std::size_t injector_depth() const noexcept {
    return inj_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int idle_workers() const noexcept {
    return num_idle_.load(std::memory_order_relaxed);
  }

  // ------------- backpressure-throttle accounting --------------------------
  // Bracket a producer's cooperative memory-budget wait (core/queue_cb.cpp):
  // begin marks the calling worker blocked on `queue` for the watchdog dump,
  // tick counts one wait iteration as run progress (a throttled producer is
  // waiting by design, not stalled), end clears the marker and accumulates
  // the blocked wall time. Safe from non-worker threads (marker skipped).
  void throttle_begin(const void* queue) noexcept;
  void throttle_tick() noexcept {
    throttle_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void throttle_end(std::uint64_t waited_ns) noexcept;
  [[nodiscard]] std::uint64_t throttle_ns() const noexcept {
    return throttle_ns_.load(std::memory_order_relaxed);
  }

  /// Home NUMA node of the calling worker thread (-1 on external threads or
  /// under policy none). Memory arenas default to this node so allocations
  /// land where the allocating worker runs.
  static int current_worker_node() noexcept;

  /// Task-frame pool counters, mirroring hyperqueue<T>::pool_stats(): in a
  /// steady-state pipeline `allocated` plateaus while `recycled` grows —
  /// every spawn past warm-up reuses a frame instead of calling malloc.
  [[nodiscard]] detail::obj_pool::stats_t frame_pool_stats() const {
    return frame_pool_.stats();
  }
  /// Same counters for the hyperqueue-attachment (qattach) pool.
  [[nodiscard]] detail::obj_pool::stats_t attach_pool_stats() const {
    return attach_pool_.stats();
  }

  // ------------- internal API (spawn/sync/hyperqueue machinery) -----------

  /// Allocate + construct a task frame from the calling worker's magazine
  /// (plain heap when called from a non-worker thread, e.g. for roots).
  detail::task_frame* alloc_frame(detail::task_frame* parent) {
    const unsigned owner = my_worker_index();
    void* mem = frame_pool_.alloc(owner);
    auto* fr = ::new (mem) detail::task_frame(this, parent);
    fr->pool_owner = owner;
    return fr;
  }

  /// Destroy a completed frame and recycle its memory into the owning
  /// magazine (bounded cross-worker return when freed by another worker).
  void free_frame(detail::task_frame* t) {
    const unsigned owner = t->pool_owner;
    t->~task_frame();
    frame_pool_.free(t, owner, my_worker_index());
  }

  /// Pooled fixed-size blocks for hyperqueue attachments and producer shard
  /// records (core/queue_cb.*, core/view.hpp) — the block size covers both.
  /// The caller placement-constructs the record in the block and stashes
  /// *owner for the matching free.
  void* alloc_attach_block(unsigned* owner) {
    *owner = my_worker_index();
    return attach_pool_.alloc(*owner);
  }
  void free_attach_block(void* p, unsigned owner) {
    attach_pool_.free(p, owner, my_worker_index());
  }

  /// Make a ready frame available for execution.
  void enqueue(detail::task_frame* t);

  /// Execute one ready task if any is available. Returns false when no task
  /// could be obtained (the caller should back off).
  bool help_one();

  /// Help-while-blocked wait: run ready tasks until `p()` holds. Does not
  /// unwind on cancellation — used where the wait must complete regardless
  /// (the implicit sync in execute(), queue teardown in detach_owner).
  template <typename Pred>
  void wait_until(Pred&& p) {
    backoff bo;
    while (!p()) {
      if (help_one()) {
        bo.reset();
      } else {
        bo.pause();
      }
    }
  }

  /// Cancellable variant for user-facing waits (hq::sync, call, queue data
  /// waits): identical help-while-blocked loop, but once the run cancels it
  /// throws detail::cancel_unwind so no blocking wait outlives a failure.
  template <typename Pred>
  void wait_until_cancellable(Pred&& p) {
    backoff bo;
    while (!p()) {
      throw_if_cancelled();
      if (help_one()) {
        bo.reset();
      } else {
        bo.pause();
      }
    }
  }

 private:
  friend struct detail::worker_ctx;

  /// Index of the calling thread's magazine in this scheduler's pools
  /// (kPoolExternal when the thread is not one of our workers).
  unsigned my_worker_index() const noexcept {
    detail::worker_ctx* w = detail::t_worker;
    return (w != nullptr && w->sched == this) ? w->index : detail::kPoolExternal;
  }

  void run_root(task_fn fn);
  void worker_main(unsigned index);
  detail::task_frame* find_task(detail::worker_ctx& w);
  detail::task_frame* try_steal(detail::worker_ctx& w);
  detail::task_frame* pop_injector();
  bool work_available() const;
  void execute(detail::task_frame* t);
  void finish(detail::task_frame* t);
  void satisfy(detail::task_frame* t);
  void wake_idle();

  std::vector<std::unique_ptr<detail::worker_ctx>> workers_;
  std::vector<std::thread> threads_;

  // Placement state (ctor-initialized, immutable afterwards).
  topology topo_;
  placement_policy policy_ = placement_policy::none;

  // Frame / attachment recycling (see sched/obj_pool.hpp).
  detail::obj_pool frame_pool_;
  detail::obj_pool attach_pool_;

  // External / overflow submission channel. inj_count_ lets the hot path
  // skip the lock when the injector is empty (the common case).
  std::mutex inj_mu_;
  std::deque<detail::task_frame*> injector_;
  std::atomic<std::size_t> inj_count_{0};

  // Idle-worker parking.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int> num_idle_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> stop_{false};

  // Root-completion signalling for run().
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool root_done_ = false;

  // Backpressure-throttle totals (see throttle_begin/tick/end). Shared
  // lines, but only touched while a producer is already blocked — never on
  // the push fast path.
  std::atomic<std::uint64_t> throttle_waits_{0};
  std::atomic<std::uint64_t> throttle_ns_{0};

  // Failure slot (first-failure-wins) + cancellation epoch, reset by
  // run_root after rethrowing so the scheduler is reusable.
  std::mutex failure_mu_;
  std::exception_ptr failure_;
  std::atomic<bool> cancelled_{false};

  // Stall watchdog (see set_watchdog / HQ_WATCHDOG_MS). 0 = disabled.
  unsigned watchdog_ms_ = 0;
  unsigned watchdog_grace_ = 8;
};

}  // namespace hq
