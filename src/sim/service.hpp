// SLO service simulation: tail latency vs offered load through a real
// hyperqueue pipeline under memory budgets and admission control.
//
// The workload is an open-loop request stream — seeded Poisson arrivals,
// lognormal service demands — pushed through a real 3-stage pipeline
// (arrivals -> service -> retire) so the run exercises the actual transport:
// segment churn under `edge_opts::memory_budget`, the runner's admission
// boundary, and the scheduler. Latency itself accrues in *virtual time*
// inside the in-order sink: `service_model` is the same non-preemptive
// FIFO multi-server discipline as sim::engine (src/sim/des.hpp) — c servers,
// dispatch in arrival order — folded into a min-heap pass over the stream.
// Because the sink consumes in serial-elision order and the model is a pure
// function of the record sequence, every percentile curve is byte-identical
// for a fixed seed at any worker count and on any backend
// (tests/test_service.cpp replays the admitted trace through sim::engine to
// pin the two formulations to each other).
//
// Admission policies are evaluated at the model boundary in virtual time:
//   none         — every request queues; latency unbounded past rho = 1.
//   block        — the arrival stream stalls while `window` requests are in
//                  the system: memory bounded, sojourn (incl. gate wait)
//                  unbounded under overload.
//   shed         — arrivals finding `window` in flight are dropped: both the
//                  in-system population and admitted-request latency stay
//                  bounded at any load (the SLO-preserving policy).
//   bounded_wait — shed only the requests whose queueing delay would exceed
//                  `max_wait`.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/latency.hpp"
#include "pipeline/runner.hpp"

namespace hq::sim {

/// One request flowing through the service pipeline (virtual seconds).
struct request {
  std::uint64_t id = 0;
  double arrival = 0;
  double service = 0;
};

struct service_spec {
  std::size_t requests = 20000;
  /// Virtual service capacity: the model dispatches to this many servers.
  unsigned servers = 4;
  double service_mean = 1.0e-3;   ///< mean per-request demand (virtual s)
  double service_sigma = 0.5;     ///< lognormal shape (0 = deterministic-ish)
  /// rho: arrival rate as a fraction of capacity servers/service_mean.
  double offered_load = 0.9;
  std::uint64_t seed = 1;

  // -- admission at the model boundary (virtual time) --
  pipe::admission_policy policy = pipe::admission_policy::none;
  std::size_t window = 256;   ///< block/shed: max requests in the system
  double max_wait = 10.0e-3;  ///< bounded_wait: max queueing delay (virtual s)

  // -- real transport --
  unsigned workers = 1;
  std::uint64_t memory_budget = 0;  ///< per-edge bytes; 0 = env/unlimited
  pipe::backend transport = pipe::backend::hyperqueue;
};

/// Deterministic workload for `spec`: Poisson arrivals at rate
/// offered_load * servers / service_mean, lognormal service demands with
/// mean service_mean (mu = ln(mean) - sigma^2/2). Pure function of the seed.
[[nodiscard]] std::vector<request> generate_requests(const service_spec& spec);

/// Non-preemptive FIFO G/G/c queueing model with boundary admission.
/// Feed requests in arrival order via offer(); identical dispatch to
/// sim::engine with options{.cores = servers} over the admitted trace.
class service_model {
 public:
  explicit service_model(const service_spec& spec);

  /// Returns true if the request was admitted (sojourn recorded), false if
  /// the policy shed it.
  bool offer(const request& r);

  [[nodiscard]] const stats::latency_histogram& latency() const noexcept {
    return hist_;
  }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }
  /// Virtual time of the last departure.
  [[nodiscard]] double makespan() const noexcept { return makespan_; }
  /// Max simultaneous admitted-but-not-departed requests — the model's
  /// memory footprint; bounded by `window` under block/shed.
  [[nodiscard]] std::size_t peak_in_system() const noexcept {
    return peak_in_system_;
  }

 private:
  void drain(double now);

  const service_spec spec_;
  stats::latency_histogram hist_;
  // Min-heap of per-server next-free times (c entries, all starting at 0).
  std::priority_queue<double, std::vector<double>, std::greater<>> free_;
  // Min-heap of departure times of in-system requests.
  std::priority_queue<double, std::vector<double>, std::greater<>> in_system_;
  double gate_ = 0;  ///< block policy: earliest admission for the next arrival
  double makespan_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::size_t peak_in_system_ = 0;
};

struct service_result {
  stats::latency_histogram latency;  ///< sojourn (ns) of admitted requests
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  double makespan = 0;
  std::size_t peak_in_system = 0;
  /// Order/content digest of what the sink actually received from the real
  /// transport (equal across backends/worker counts for a fixed seed).
  std::uint64_t checksum = 0;
  /// The real run: wall time, queue footprint/throttle counters under the
  /// memory budget, runner admission accounting.
  pipe::exec_result exec;
};

/// Generate the workload, run it through the real pipeline on
/// `spec.transport`, and score it with `service_model` in the sink.
[[nodiscard]] service_result run_service(const service_spec& spec);

}  // namespace hq::sim
