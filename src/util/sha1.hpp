// SHA-1 (FIPS 180-1) — the content digest dedup uses to identify duplicate
// chunks, as in PARSEC's dedup kernel. Not for security; for 160-bit
// fingerprinting of chunk payloads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hq::util {

struct sha1_digest {
  std::array<std::uint32_t, 5> h;

  bool operator==(const sha1_digest&) const = default;

  /// First 8 bytes as an integer — hash-table key for dedup indexes.
  [[nodiscard]] std::uint64_t prefix64() const noexcept {
    return (static_cast<std::uint64_t>(h[0]) << 32) | h[1];
  }

  [[nodiscard]] std::string hex() const;
};

/// One-shot digest of a buffer.
sha1_digest sha1(const void* data, std::size_t len) noexcept;

/// Incremental interface.
class sha1_stream {
 public:
  void update(const void* data, std::size_t len) noexcept;
  sha1_digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* p) noexcept;

  std::uint32_t h_[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                         0xC3D2E1F0u};
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hq::util

template <>
struct std::hash<hq::util::sha1_digest> {
  std::size_t operator()(const hq::util::sha1_digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
