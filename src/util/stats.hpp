// Timing and summary statistics for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace hq::util {

/// Wall-clock stopwatch.
class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

struct summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double median = 0;
  std::size_t n = 0;
};

/// Mean / stddev / min / median / max of a sample vector.
summary summarize(std::vector<double> xs);

/// Best-of-k timing helper: run `fn` k times, return the minimum seconds.
template <typename F>
double time_best_of(int k, F&& fn) {
  double best = 1e300;
  for (int i = 0; i < k; ++i) {
    stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

}  // namespace hq::util
