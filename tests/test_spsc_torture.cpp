// SPSC torture: two threads, one million items, randomized backoff on both
// endpoints. Asserts the FIFO contract exactly — every value arrives, in
// order, exactly once — for the Lamport ring, the FastForward ring, the
// blocking bounded queue, and the raw hyperqueue segment transfer path.
// Run these under the TSan preset (-DSANITIZE=thread) to check the memory
// orderings, not just the outcomes.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "conc/bounded_queue.hpp"
#include "conc/spsc_ring.hpp"
#include "core/hyperqueue.hpp"
#include "core/segment.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::uint64_t kItems = 1'000'000;

/// Spin-then-yield retry: pure spinning makes no progress when the two
/// endpoint threads share one hardware core (CI runners), so after a short
/// burst of attempts give the other endpoint the core.
template <typename TryFn>
void retry_until(TryFn&& attempt) {
  int spins = 0;
  while (!attempt()) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

/// Occasional randomized spin so the two endpoints drift in and out of
/// lockstep: exercises empty, full, and wraparound transitions.
class random_backoff {
 public:
  explicit random_backoff(std::uint64_t seed) : rng_(seed) {}

  void maybe_pause() {
    // ~1/64 of operations pause for 1..128 spins.
    if ((rng_.next() & 63u) == 0) {
      const std::uint64_t spins = 1 + rng_.below(128);
      for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    }
  }

 private:
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }
  hq::util::xoshiro256 rng_;
};

/// Values are a function of their index, so a duplicated, dropped, or
/// reordered element is caught the moment it is popped.
std::uint64_t value_at(std::uint64_t i) { return i * 0x9e3779b97f4a7c15ull + 1; }

template <typename PushFn, typename PopFn>
void run_torture(PushFn&& push, PopFn&& pop) {
  std::thread producer([&] {
    random_backoff bo(42);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      push(value_at(i));
      bo.maybe_pause();
    }
  });

  // Consume every item even after a mismatch: stopping early would leave the
  // producer blocked on a full queue and hang the join instead of failing.
  std::uint64_t first_bad = kItems;
  std::uint64_t bad_value = 0;
  {
    random_backoff bo(1337);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      const std::uint64_t v = pop();
      if (first_bad == kItems && v != value_at(i)) {
        first_bad = i;
        bad_value = v;
      }
      bo.maybe_pause();
    }
  }
  producer.join();
  ASSERT_EQ(first_bad, kItems)
      << "FIFO violation (loss, duplication, or reorder) at item " << first_bad
      << ": got " << bad_value << ", expected " << value_at(first_bad);
}

TEST(SpscTorture, LamportRingMillionItems) {
  hq::spsc_ring<std::uint64_t> ring(1024);
  run_torture(
      [&](std::uint64_t v) { retry_until([&] { return ring.try_push(v); }); },
      [&]() -> std::uint64_t {
        std::uint64_t out = 0;
        retry_until([&] {
          auto v = ring.try_pop();
          if (v) out = *v;
          return v.has_value();
        });
        return out;
      });
  EXPECT_TRUE(ring.empty());
}

TEST(SpscTorture, LamportRingTinyCapacity) {
  // Capacity 2: every push/pop straddles the full/empty boundary.
  hq::spsc_ring<std::uint64_t> ring(2);
  run_torture(
      [&](std::uint64_t v) { retry_until([&] { return ring.try_push(v); }); },
      [&]() -> std::uint64_t {
        std::uint64_t out = 0;
        retry_until([&] {
          auto v = ring.try_pop();
          if (v) out = *v;
          return v.has_value();
        });
        return out;
      });
  EXPECT_TRUE(ring.empty());
}

TEST(SpscTorture, FastForwardRingMillionItems) {
  // 0 is the nil sentinel; value_at never produces 0.
  hq::ff_ring<std::uint64_t> ring(1024, 0);
  run_torture(
      [&](std::uint64_t v) { retry_until([&] { return ring.try_push(v); }); },
      [&]() -> std::uint64_t {
        std::uint64_t out = 0;
        retry_until([&] {
          auto v = ring.try_pop();
          if (v) out = *v;
          return v.has_value();
        });
        return out;
      });
}

TEST(SpscTorture, BoundedQueueMillionItems) {
  hq::bounded_queue<std::uint64_t> q(256);
  run_torture([&](std::uint64_t v) { ASSERT_TRUE(q.push(v)); },
              [&]() -> std::uint64_t {
                auto v = q.pop();
                EXPECT_TRUE(v.has_value());
                return v.value_or(0);
              });
  EXPECT_EQ(q.size(), 0u);
}

TEST(SpscTorture, SegmentTransferMillionItems) {
  // The hyperqueue's own SPSC fast path with the padded layout and cached
  // remote indices, on the trivial-type (memcpy) transfer branch.
  const hq::detail::element_ops ops =
      hq::detail::make_element_ops<std::uint64_t>();
  ASSERT_TRUE(ops.trivial_copy);
  auto* seg = hq::detail::segment::create(1024, &ops);

  run_torture(
      [&](std::uint64_t v) { retry_until([&] { return seg->try_push(&v); }); },
      [&]() -> std::uint64_t {
        retry_until([&] { return seg->readable(); });
        std::uint64_t out;
        seg->pop_into(&out);
        return out;
      });

  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
}

TEST(SpscTorture, SegmentTransferNonTrivialElements) {
  // Same padded segment, non-trivial branch: every transfer runs the
  // move_construct + destroy pair, and the balance must come out even
  // (construction/destruction counts are cross-thread: relaxed atomics).
  struct counting {
    static std::atomic<long>& live() {
      static std::atomic<long> n{0};
      return n;
    }
    std::uint64_t v = 0;
    explicit counting(std::uint64_t x) : v(x) { live().fetch_add(1, std::memory_order_relaxed); }
    counting(counting&& o) noexcept : v(o.v) { live().fetch_add(1, std::memory_order_relaxed); }
    counting(const counting&) = delete;
    counting& operator=(const counting&) = delete;
    ~counting() { live().fetch_sub(1, std::memory_order_relaxed); }
  };
  static_assert(!hq::detail::is_trivially_relocatable_v<counting>);
  counting::live().store(0);

  const hq::detail::element_ops ops = hq::detail::make_element_ops<counting>();
  auto* seg = hq::detail::segment::create(256, &ops);
  run_torture(
      [&](std::uint64_t v) {
        counting c(v);
        retry_until([&] { return seg->try_push(&c); });
      },
      [&]() -> std::uint64_t {
        retry_until([&] { return seg->readable(); });
        alignas(counting) std::byte buf[sizeof(counting)];
        seg->pop_into(buf);
        counting* c = std::launder(reinterpret_cast<counting*>(buf));
        const std::uint64_t out = c->v;
        c->~counting();
        return out;
      });
  EXPECT_EQ(counting::live().load(), 0) << "leak or double-destroy";

  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
}

}  // namespace
