// Declarative pipeline front-end: the stage-graph builder.
//
// The paper's programming model makes the hyperqueue the abstraction, but
// every app still hand-wires its variant plumbing: queue construction,
// dispatcher loops, reorder buffers, thread pools. This builder absorbs that
// wiring the way Pipeflow does for modern-C++ pipelines: an app declares a
// linear chain of typed stages
//
//   pipe::graph g;
//   auto src = g.source<block>("read",     [&](pipe::emit<block> out) {...});
//   auto cmp = g.stage<block, block>("compress", pipe::stage_kind::parallel,
//                                    [](block&& b, pipe::emit<block> out) {...});
//   auto snk = g.sink<block>("write", pipe::stage_kind::serial_in_order,
//                            [&](block&& b) {...});
//   g.connect(src, cmp, opts);   // per-edge knobs travel on the connection
//   g.connect(cmp, snk, opts);
//
// and the runner (pipeline/runner.hpp) lowers the same description onto the
// serial elision, hyperqueues (slice or element data path), the pthreads
// baseline, or the TBB baseline. Stage kinds:
//
//   serial_in_order — one in-flight activation, tokens in serial-elision
//                     order (sources and ordered sinks);
//   serial          — one in-flight activation, arrival order;
//   parallel        — any number of concurrent activations.
//
// `expand` stages may emit any number of tokens per input (dedup's
// coarse->refine fan-out); plain `stage`s emit exactly one. Per-edge knobs
// (edge_opts) carry the hyperqueue segment length, the slice batch, the
// element-vs-bulk data path and the bounded-queue capacity of the pthreads
// baseline — the numbers the hand-rolled variants hard-coded.
//
// Misuse (type-mismatched edges, unattached stages, parallel sinks) throws
// graph_error at connect()/compile() time. The builder also emits the
// stage->queue attachment graph (build_queue_graph) that feeds
// plan_queue_placement, closing the PR 6 residual: callers no longer pass
// the graph explicitly.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "core/hyperqueue.hpp"
#include "sched/partition.hpp"
#include "sched/spawn.hpp"

namespace hq::pipe {

enum class stage_kind { serial_in_order, serial, parallel };

[[nodiscard]] const char* to_string(stage_kind k) noexcept;

/// Per-edge tuning knobs. One description drives every backend, so the
/// knobs cover all of them; each backend reads the subset it understands.
struct edge_opts {
  /// Bounded-queue slots in the pthreads baseline (the PARSEC-style
  /// hand-wired `bounded_queue<item> q(64)` numbers, now declarative).
  std::size_t capacity = 64;
  /// Tokens moved per slice grant / per dispatched batch (Section 5.2).
  std::size_t slice_batch = 16;
  /// Hyperqueue segment length (Section 5.1); 0 = 2 * slice_batch so a
  /// batch normally fits one contiguous grant.
  std::size_t segment_length = 0;
  /// Slice data path (default) vs element-at-a-time pushes/pops. The
  /// hyperqueue_element backend forces the element path on every edge.
  bool bulk = true;
  /// Relative element volume; feeds the placement partitioner's cut
  /// objective (sched/partition.hpp).
  double traffic = 1.0;
  /// Memory budget of this edge's hyperqueue in bytes (0 = the
  /// HQ_QUEUE_BUDGET environment default, itself unlimited when unset).
  /// Producers that would grow the queue past the cap block cooperatively
  /// until the consumer catches up — deterministic backpressure; see
  /// hyperqueue<T>::set_memory_budget.
  std::uint64_t memory_budget = 0;
};

/// How the pipeline boundary treats offered work once the in-flight window
/// is full (tokens emitted by the source minus tokens retired by the sink).
/// Generalizes the hand-rolled selective-sync throttle the bzip2 port used:
///   none         — admit everything (the window is not enforced);
///   block        — source waits (helping the scheduler) for sink progress:
///                  lossless, output identical to the serial elision;
///   shed         — over-window tokens are dropped at the source and
///                  counted: lossy, bounded memory and bounded latency for
///                  the admitted;
///   bounded_wait — block up to max_wait_ns, then shed.
enum class admission_policy { none, block, shed, bounded_wait };

struct admission_opts {
  admission_policy policy = admission_policy::none;
  /// Max in-flight tokens (source emissions not yet retired by the sink).
  std::size_t window = 1024;
  /// bounded_wait only: wait this long for the window to open, then shed.
  std::uint64_t max_wait_ns = 1000000;  // 1 ms
};

/// Thrown on pipeline misuse: type-mismatched edges, unattached stages,
/// missing source/sink, parallel sinks, over-deep fan-out nesting.
class graph_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// The typed emission handle a stage body writes its outputs through. A
/// lightweight (context, function) pair so the same body serves every
/// backend: the runner decides where emitted tokens actually go.
template <typename T>
class emit {
 public:
  using fn_t = void (*)(void*, T&&);
  emit(void* ctx, fn_t fn) : ctx_(ctx), fn_(fn) {}
  void operator()(T&& v) const { fn_(ctx_, std::move(v)); }

 private:
  void* ctx_;
  fn_t fn_;
};

namespace detail {

/// Runtime state of one run's admission window, shared by the source-side
/// gate (admit) and the sink-side retire counter (complete). The runner
/// owns one per execution and reads the counters into exec_result.
struct admission_ctl {
  explicit admission_ctl(admission_opts o) : opts(o) {}

  admission_opts opts;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> wait_ns{0};
  std::atomic<bool> cancelled{false};
  /// Latched when a block-policy wait escaped because sink completions
  /// stopped entirely (schedule cannot interleave the sink — see admit()).
  /// While latched, window enforcement is suspended so each further token
  /// does not re-pay the patience wait; cleared as soon as completions
  /// advance again.
  std::atomic<bool> wedged{false};
  std::atomic<std::uint64_t> wedge_done{0};

  /// Gate one offered token. True: admitted (counted). False: shed (counted)
  /// — the caller must drop the token without emitting it. Blocks per the
  /// policy, helping the scheduler when called from a worker, plain backoff
  /// on external driver threads. cancel() unblocks every waiter (they shed).
  bool admit();

  /// Sink-side retirement: opens the window for the next waiter.
  void complete() noexcept {
    completed.fetch_add(1, std::memory_order_release);
  }

  /// Failure teardown: no more admissions, release blocked sources.
  void cancel() noexcept {
    cancelled.store(true, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    // `completed` is loaded first: each token's admit happens-before its
    // complete, so observing N completions (acquire, paired with the
    // release in complete()) implies observing >= N admissions. Clamped at
    // zero anyway — expand stages retire more sink tokens than the source
    // admitted, which would otherwise wrap the unsigned difference.
    const std::uint64_t done = completed.load(std::memory_order_acquire);
    const std::uint64_t adm = admitted.load(std::memory_order_relaxed);
    return adm > done ? adm - done : 0;
  }
};

/// Type-erased emission: `token` points at a value the callee may move
/// from (value mode) or owns outright (heap mode), per the runner used.
struct erased_emit {
  void* ctx = nullptr;
  void (*fn)(void* ctx, void* token) = nullptr;
};

template <typename T>
emit<T> value_emit(const erased_emit& next) {
  return emit<T>(const_cast<erased_emit*>(&next), [](void* c, T&& v) {
    const auto* e = static_cast<const erased_emit*>(c);
    e->fn(e->ctx, &v);
  });
}

template <typename T>
emit<T> heap_emit(const erased_emit& next) {
  return emit<T>(const_cast<erased_emit*>(&next), [](void* c, T&& v) {
    const auto* e = static_cast<const erased_emit*>(c);
    e->fn(e->ctx, new T(std::move(v)));
  });
}

/// Type-erased handle on one inter-stage hyperqueue, so the runner can
/// construct, place and probe channels without knowing token types.
class hq_chan_base {
 public:
  virtual ~hq_chan_base() = default;
  [[nodiscard]] virtual int node() const = 0;
  [[nodiscard]] virtual seg_pool_stats pool() const = 0;
  [[nodiscard]] virtual std::size_t segments() const = 0;
};

template <typename T>
class hq_chan final : public hq_chan_base {
 public:
  hq_chan(std::size_t seglen, int home_node, std::uint64_t budget_bytes)
      : q(seglen, home_node, budget_bytes) {}
  [[nodiscard]] int node() const override { return q.home_node(); }
  [[nodiscard]] seg_pool_stats pool() const override { return q.pool_stats(); }
  [[nodiscard]] std::size_t segments() const override { return q.segments(); }

  hyperqueue<T> q;
};

/// Resolved data-path knobs of one stage's input/output edges.
struct hq_knobs {
  std::size_t in_batch = 16;
  std::size_t out_batch = 16;
  bool in_bulk = true;
  bool out_bulk = true;
  /// Admission gate, set by the runner on the source stage only: every
  /// emission passes admission_ctl::admit() and is dropped when it sheds.
  admission_ctl* admit = nullptr;
  /// Retire counter, set by the runner on the sink stage only.
  admission_ctl* complete = nullptr;
};

/// Channel endpoints handed to a stage's hyperqueue lowering (null at the
/// chain ends).
struct hq_stage_ctx {
  hq_chan_base* in = nullptr;
  hq_chan_base* out = nullptr;
  hq_knobs knobs;
};

/// Buffers a stage body's emissions and moves them onto the output queue
/// through write slices (bulk path) or per-value pushes (element path).
template <typename Out>
class hq_emitter {
 public:
  hq_emitter(pushdep<Out>& out, std::size_t batch, bool bulk,
             admission_ctl* admit = nullptr)
      : out_(out), batch_(batch ? batch : 1), bulk_(bulk), admit_(admit) {}
  hq_emitter(const hq_emitter&) = delete;
  hq_emitter& operator=(const hq_emitter&) = delete;
  ~hq_emitter() {
    // The dtor also runs while a stage body unwinds; flush() can allocate a
    // segment, so under allocation-fault injection it may itself throw.
    // Route that failure into the scheduler slot instead of terminating.
    try {
      flush();
    } catch (...) {
      if (scheduler* s = scheduler::current())
        s->record_failure(std::current_exception());
      buf_.clear();
    }
  }

  emit<Out> handle() {
    return emit<Out>(this, [](void* c, Out&& v) {
      static_cast<hq_emitter*>(c)->put(std::move(v));
    });
  }

  void put(Out&& v) {
    // Admission gate (source stage only): a shed token dies here, before it
    // touches the queue — bounded memory is the point.
    if (admit_ != nullptr && !admit_->admit()) return;
    if (!bulk_) {
      out_.push(std::move(v));
      return;
    }
    buf_.push_back(std::move(v));
    if (buf_.size() >= batch_) flush();
  }

  void flush() {
    if (!buf_.empty()) {
      push_slices(out_, buf_.begin(), buf_.end(), batch_);
      buf_.clear();
    }
  }

 private:
  pushdep<Out>& out_;
  std::vector<Out> buf_;
  std::size_t batch_;
  bool bulk_;
  admission_ctl* admit_;
};

// ---- hyperqueue stage tasks ------------------------------------------------
// One template per stage shape; the graph's per-stage `hq_spawn` closure
// picks the right one and binds the typed channel endpoints. Stage tasks are
// spawned by the runner's root task in declaration order, which *is* the
// serial-elision order the queues' definitive-empty gate relies on.

template <typename Out>
void hq_source_task(std::function<void(emit<Out>)> body, hq_knobs k,
                    pushdep<Out> out) {
  hq_emitter<Out> em(out, k.out_batch, k.out_bulk, k.admit);
  body(em.handle());
}

template <typename In, typename Out>
void hq_batch_task(std::function<void(In&&, emit<Out>)> body, hq_knobs k,
                   std::vector<In> work, pushdep<Out> out) {
  hq_emitter<Out> em(out, k.out_batch, k.out_bulk);
  for (auto& v : work) body(std::move(v), em.handle());
}

/// Parallel stage: a dispatcher pops batches (read slices on the bulk path,
/// single values on the element path) and spawns one child per batch; the
/// hyperqueue keeps the children's output in spawn (= serial-elision) order.
template <typename In, typename Out>
void hq_parallel_stage(std::function<void(In&&, emit<Out>)> body, hq_knobs k,
                       popdep<In> in, pushdep<Out> out) {
  for (;;) {
    std::vector<In> work;
    if (k.in_bulk) {
      auto rs = in.get_read_slice(k.in_batch);
      if (rs.empty()) break;  // definitive end of stream
      work.reserve(rs.size());
      for (auto& v : rs) work.push_back(std::move(v));
      rs.release();
    } else {
      if (in.empty()) break;
      work.push_back(in.pop());
    }
    spawn(hq_batch_task<In, Out>, body, k, std::move(work), out);
  }
  sync();
}

/// Serial stage (ordered or not): one task draining the input inline. Pop
/// order is serial-elision order, so serial_in_order needs nothing extra.
template <typename In, typename Out>
void hq_serial_stage(std::function<void(In&&, emit<Out>)> body, hq_knobs k,
                     popdep<In> in, pushdep<Out> out) {
  hq_emitter<Out> em(out, k.out_batch, k.out_bulk);
  if (k.in_bulk) {
    for (;;) {
      auto rs = in.get_read_slice(k.in_batch);
      if (rs.empty()) break;
      for (auto& v : rs) body(std::move(v), em.handle());
      rs.release();
    }
  } else {
    while (!in.empty()) {
      In v = in.pop();
      body(std::move(v), em.handle());
    }
  }
}

template <typename In>
void hq_sink_task(std::function<void(In&&)> body, hq_knobs k, popdep<In> in) {
  if (k.in_bulk) {
    for (;;) {
      auto rs = in.get_read_slice(k.in_batch);
      if (rs.empty()) break;
      for (auto& v : rs) {
        body(std::move(v));
        if (k.complete != nullptr) k.complete->complete();
      }
      rs.release();
    }
  } else {
    while (!in.empty()) {
      In v = in.pop();
      body(std::move(v));
      if (k.complete != nullptr) k.complete->complete();
    }
  }
}

/// One declared stage, with its typed behavior captured behind erased
/// runners so the backends stay non-template code.
struct stage_rec {
  std::string name;
  stage_kind kind = stage_kind::parallel;
  bool is_source = false;
  bool is_sink = false;
  bool multi_out = false;  ///< expand stage: 0..N emissions per input
  std::type_index in_type = typeid(void);
  std::type_index out_type = typeid(void);
  std::string in_type_name;
  std::string out_type_name;
  int in_edge = -1;
  int out_edge = -1;
  /// Value-mode runner (serial elision): `token` points at an In the body
  /// may move from (null for sources); emissions pass pointers into callee
  /// stack space, so the whole chain runs without heap traffic.
  std::function<void(void* token, const erased_emit& next)> run_value;
  /// Heap-mode runner (pthreads/TBB backends): `token` is an owned heap In*
  /// (consumed); emissions are owned heap Out*.
  std::function<void(void* token, const erased_emit& next)> run_heap;
  /// Hyperqueue lowering: spawn this stage's task over the typed channels.
  std::function<void(const hq_stage_ctx&)> hq_spawn;
  /// Factory for this stage's *output* channel (typed on Out).
  std::function<std::unique_ptr<hq_chan_base>(
      std::size_t seglen, int node, std::uint64_t budget_bytes)>
      make_out_chan;
  /// Destroy an owned heap token of this stage's input / output type. The
  /// pthreads and TBB backends use these to drain in-flight tokens leak-free
  /// when a failure tears the pipeline down mid-stream (null at chain ends).
  void (*destroy_in)(void*) = nullptr;
  void (*destroy_out)(void*) = nullptr;
};

struct edge_rec {
  std::size_t from = 0;
  std::size_t to = 0;
  edge_opts opts;
  std::type_index type = typeid(void);
};

}  // namespace detail

using stage_id = std::size_t;

/// The declared stage graph (currently a linear chain with typed edges;
/// expand stages carry fan-out *within* the chain, the shape all three
/// PARSEC pipelines and the planned FEC family need).
class graph {
 public:
  /// Reorder paths track at most this many nested expand levels.
  static constexpr unsigned kMaxDepth = 4;

  /// Declare the (single) source. Runs as one in-order activation; `body`
  /// receives the emission handle: void(emit<Out>).
  template <typename Out, typename F>
  stage_id source(std::string name, F&& body) {
    // Every stage body runs behind a named fault site ("stage.<name>") on
    // every backend — the injection choke point the declarative front-end
    // buys us. Cost when no plan is installed: one relaxed load per
    // activation.
    std::function<void(emit<Out>)> fn =
        [site = "stage." + name,
         inner = std::function<void(emit<Out>)>(std::forward<F>(body))](
            emit<Out> out) {
          hq::fault::crashpoint(site);
          inner(out);
        };
    detail::stage_rec s;
    s.name = std::move(name);
    s.kind = stage_kind::serial_in_order;
    s.is_source = true;
    fill_out_type<Out>(&s);
    s.run_value = [fn](void*, const detail::erased_emit& next) {
      fn(detail::value_emit<Out>(next));
    };
    s.run_heap = [fn](void*, const detail::erased_emit& next) {
      fn(detail::heap_emit<Out>(next));
    };
    s.hq_spawn = [fn](const detail::hq_stage_ctx& c) {
      auto& q = static_cast<detail::hq_chan<Out>*>(c.out)->q;
      hq::spawn(detail::hq_source_task<Out>, fn, c.knobs, (pushdep<Out>)q);
    };
    stages_.push_back(std::move(s));
    return stages_.size() - 1;
  }

  /// Declare a 1:1 transform stage; `body` is void(In&&, emit<Out>) and
  /// must emit exactly once per input.
  template <typename In, typename Out, typename F>
  stage_id stage(std::string name, stage_kind kind, F&& body) {
    return add_middle<In, Out>(std::move(name), kind,
                               std::forward<F>(body), /*multi_out=*/false);
  }

  /// Declare a 1:N expansion stage (dedup's coarse->refine split); `body`
  /// may emit any number of tokens per input, including zero.
  template <typename In, typename Out, typename F>
  stage_id expand(std::string name, stage_kind kind, F&& body) {
    return add_middle<In, Out>(std::move(name), kind,
                               std::forward<F>(body), /*multi_out=*/true);
  }

  /// Declare the (single) sink; `body` is void(In&&). serial_in_order sinks
  /// observe tokens in serial-elision order on every backend; serial sinks
  /// observe arrival order. Parallel sinks are rejected at compile().
  template <typename In, typename F>
  stage_id sink(std::string name, stage_kind kind, F&& body) {
    std::function<void(In&&)> fn =
        [site = "stage." + name,
         inner = std::function<void(In &&)>(std::forward<F>(body))](In&& v) {
          hq::fault::crashpoint(site);
          inner(std::move(v));
        };
    detail::stage_rec s;
    s.name = std::move(name);
    s.kind = kind;
    s.is_sink = true;
    fill_in_type<In>(&s);
    s.run_value = [fn](void* t, const detail::erased_emit&) {
      fn(std::move(*static_cast<In*>(t)));
    };
    s.run_heap = [fn](void* t, const detail::erased_emit&) {
      std::unique_ptr<In> own(static_cast<In*>(t));
      fn(std::move(*own));
    };
    s.hq_spawn = [fn](const detail::hq_stage_ctx& c) {
      auto& q = static_cast<detail::hq_chan<In>*>(c.in)->q;
      hq::spawn(detail::hq_sink_task<In>, fn, c.knobs, (popdep<In>)q);
    };
    stages_.push_back(std::move(s));
    return stages_.size() - 1;
  }

  /// Connect `from`'s output to `to`'s input. Throws graph_error when the
  /// token types disagree or either port is already connected.
  void connect(stage_id from, stage_id to, edge_opts opts = {});

  // ---- introspection (tests, runner) ----
  [[nodiscard]] std::size_t num_stages() const noexcept { return stages_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] const detail::stage_rec& stage_at(std::size_t i) const {
    return stages_.at(i);
  }
  [[nodiscard]] const detail::edge_rec& edge_at(std::size_t i) const {
    return edges_.at(i);
  }

  /// The validated execution plan: stages in chain order plus the reorder
  /// depth of every edge's tokens (how many (seq, subseq, ...) levels a
  /// baseline reorder buffer must track).
  struct plan {
    std::vector<std::size_t> order;    ///< stage indices, source..sink
    std::vector<std::size_t> edges;    ///< edge indices; edges[i]: order[i]->order[i+1]
    std::vector<unsigned> edge_depth;  ///< reorder-path depth on edges[i]
  };

  /// Validate the declared graph and derive the chain. Throws graph_error
  /// on misuse (no/duplicate source or sink, unattached stage, parallel
  /// sink, fan-out nesting beyond kMaxDepth).
  [[nodiscard]] plan compile() const;

  /// The stage->queue attachment graph of the declared pipeline, in chain
  /// order — the input plan_queue_placement needs, built by the runtime
  /// instead of being passed in by callers.
  [[nodiscard]] hq::queue_graph build_queue_graph() const;

 private:
  template <typename In, typename Out, typename F>
  stage_id add_middle(std::string name, stage_kind kind, F&& body,
                      bool multi_out) {
    std::function<void(In&&, emit<Out>)> fn =
        [site = "stage." + name,
         inner = std::function<void(In&&, emit<Out>)>(std::forward<F>(body))](
            In&& v, emit<Out> out) {
          hq::fault::crashpoint(site);
          inner(std::move(v), out);
        };
    detail::stage_rec s;
    s.name = std::move(name);
    s.kind = kind;
    s.multi_out = multi_out;
    fill_in_type<In>(&s);
    fill_out_type<Out>(&s);
    s.run_value = [fn](void* t, const detail::erased_emit& next) {
      fn(std::move(*static_cast<In*>(t)), detail::value_emit<Out>(next));
    };
    s.run_heap = [fn](void* t, const detail::erased_emit& next) {
      std::unique_ptr<In> own(static_cast<In*>(t));
      fn(std::move(*own), detail::heap_emit<Out>(next));
    };
    s.hq_spawn = [fn, kind](const detail::hq_stage_ctx& c) {
      auto& inq = static_cast<detail::hq_chan<In>*>(c.in)->q;
      auto& outq = static_cast<detail::hq_chan<Out>*>(c.out)->q;
      if (kind == stage_kind::parallel) {
        hq::spawn(detail::hq_parallel_stage<In, Out>, fn, c.knobs,
                  (popdep<In>)inq, (pushdep<Out>)outq);
      } else {
        hq::spawn(detail::hq_serial_stage<In, Out>, fn, c.knobs,
                  (popdep<In>)inq, (pushdep<Out>)outq);
      }
    };
    stages_.push_back(std::move(s));
    return stages_.size() - 1;
  }

  template <typename In>
  void fill_in_type(detail::stage_rec* s) {
    s->in_type = typeid(In);
    s->in_type_name = typeid(In).name();
    s->destroy_in = [](void* p) { delete static_cast<In*>(p); };
  }

  template <typename Out>
  void fill_out_type(detail::stage_rec* s) {
    s->out_type = typeid(Out);
    s->out_type_name = typeid(Out).name();
    s->destroy_out = [](void* p) { delete static_cast<Out*>(p); };
    s->make_out_chan =
        [](std::size_t seglen, int node,
           std::uint64_t budget_bytes) -> std::unique_ptr<detail::hq_chan_base> {
      return std::make_unique<detail::hq_chan<Out>>(seglen, node, budget_bytes);
    };
  }

  std::vector<detail::stage_rec> stages_;
  std::vector<detail::edge_rec> edges_;
};

}  // namespace hq::pipe
