// Section 5.2 adoption benchmark: element-at-a-time vs slice-based
// hyperqueue pipelines for all three evaluation apps (bzip2, dedup,
// ferret) at 1/2/4/8 workers, plus a segment-pool steady-state probe for
// the bzip2 split pipeline.
//
// The workloads are deliberately queue-bound (many small work units) so
// the per-element overheads the slices amortize — privilege lookup, one
// spawn per value, per-value segment traffic — are visible. Every parallel
// run is correctness-gated against the serial elision; the process exits
// nonzero on any mismatch, which is what CI keys on.
//
// Emits a JSON trajectory record (default BENCH_slice.json, override with
// --json PATH) so the perf history populates run over run.
//
// The apps run through the declarative front-end: each measurement builds
// the app's describe_pipeline graph and executes it on the hyperqueue (or
// hyperqueue_element) backend of pipeline/runner.hpp — the same path the
// conformance tests gate. Only the split-pipeline pool probe stays on its
// hand-rolled variant (the split shape is not a linear chain).
//
// Knobs: --quick (smoke sizes), HQ_SLICE_BATCH (default 16).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/bzip2/bzip2.hpp"
#include "apps/dedup/dedup.hpp"
#include "apps/ferret/ferret.hpp"
#include "pipeline/runner.hpp"
#include "quick.hpp"
#include "util/datagen.hpp"
#include "util/table.hpp"

namespace {

constexpr unsigned kWorkers[] = {1, 2, 4, 8};

struct run_record {
  unsigned workers = 0;
  double element_s = 0;
  double slice_s = 0;
  bool ok = false;
  [[nodiscard]] double speedup() const {
    return slice_s > 0 ? element_s / slice_s : 0.0;
  }
};

struct app_record {
  std::string name;
  std::vector<run_record> runs;
};

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// Time element vs slice at each worker count, keeping the fastest of
/// `reps` repetitions per variant; correctness is accumulated over every
/// repetition. The callables take a worker count and return
/// {seconds, output_matches_serial}.
template <typename ElementFn, typename SliceFn>
app_record measure_app(const std::string& name, int reps, ElementFn element,
                       SliceFn slice) {
  app_record rec{name, {}};
  for (unsigned p : kWorkers) {
    run_record r;
    r.workers = p;
    r.element_s = r.slice_s = 1e30;
    r.ok = true;
    for (int rep = 0; rep < reps; ++rep) {
      const auto [es, eok] = element(p);
      const auto [ss, sok] = slice(p);
      r.element_s = std::min(r.element_s, es);
      r.slice_s = std::min(r.slice_s, ss);
      r.ok = r.ok && eok && sok;
    }
    rec.runs.push_back(r);
  }
  return rec;
}

void print_app(const app_record& app) {
  hq::util::table t({"Workers", "Element (s)", "Slice (s)", "Speedup",
                     "Output ok"});
  for (const auto& r : app.runs) {
    t.add_row({hq::util::table::cell(static_cast<std::uint64_t>(r.workers)),
               hq::util::table::cell(r.element_s, 4),
               hq::util::table::cell(r.slice_s, 4),
               hq::util::table::cell(r.speedup(), 2), r.ok ? "yes" : "NO"});
  }
  t.print(app.name + ": element-at-a-time vs slice pipeline (Section 5.2)");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = hq::bench::quick_mode(argc, argv);
  std::string json_path = "BENCH_slice.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  const std::size_t batch = env_size("HQ_SLICE_BATCH", 16);
  // Oversubscribed hosts make single timings noisy; keep the fastest of a
  // few repetitions (correctness is checked on every repetition).
  const int reps = quick ? 1 : 3;
  bool all_ok = true;

  // ------------------------------------------------------------- bzip2
  hq::apps::bzip2::config bz;
  bz.input_bytes = quick ? (256u << 10) : (2u << 20);
  bz.block_bytes = 1u << 10;  // many small blocks: queue-bound
  bz.slice_batch = batch;
  auto bz_input = hq::util::gen_text(bz.input_bytes, bz.seed);
  auto bz_serial = hq::apps::bzip2::run_serial(bz, bz_input);

  auto bz_run = [&](unsigned p, hq::pipe::backend b) {
    auto c = bz;
    c.threads = p;
    hq::apps::bzip2::result r;
    hq::pipe::graph g;
    hq::apps::bzip2::describe_pipeline(c, bz_input, &r, g);
    const auto ex = hq::pipe::execute(g, b, {.workers = p, .seed = c.seed});
    return std::pair{ex.seconds, r.output == bz_serial.output};
  };
  auto bz_rec = measure_app(
      "bzip2", reps,
      [&](unsigned p) { return bz_run(p, hq::pipe::backend::hyperqueue_element); },
      [&](unsigned p) { return bz_run(p, hq::pipe::backend::hyperqueue); });
  for (const auto& r : bz_rec.runs) all_ok = all_ok && r.ok;
  print_app(bz_rec);

  // Segment-pool steady state: the split pipeline (Section 5.4 batching +
  // Section 5.5 windowed sync) must stop allocating once warm — doubling
  // the stream length must not raise the fresh-allocation count, only the
  // recycle count.
  bz.threads = 4;
  auto split_base = hq::apps::bzip2::run_hyperqueue_split(bz, bz_input);
  auto bz2 = bz;
  bz2.input_bytes *= 2;
  auto bz2_input = hq::util::gen_text(bz2.input_bytes, bz2.seed);
  auto split_double = hq::apps::bzip2::run_hyperqueue_split(bz2, bz2_input);
  const bool pool_ok =
      split_double.seg_allocated <= split_base.seg_allocated + 2 &&
      split_double.seg_recycled > split_base.seg_recycled;
  all_ok = all_ok && pool_ok;
  {
    hq::util::table t({"Stream", "Fresh seg allocs", "Pool reuses",
                       "High water"});
    t.add_row({"1x",
               hq::util::table::cell(
                   static_cast<std::uint64_t>(split_base.seg_allocated)),
               hq::util::table::cell(
                   static_cast<std::uint64_t>(split_base.seg_recycled)),
               hq::util::table::cell(
                   static_cast<std::uint64_t>(split_base.seg_high_water))});
    t.add_row({"2x",
               hq::util::table::cell(
                   static_cast<std::uint64_t>(split_double.seg_allocated)),
               hq::util::table::cell(
                   static_cast<std::uint64_t>(split_double.seg_recycled)),
               hq::util::table::cell(
                   static_cast<std::uint64_t>(split_double.seg_high_water))});
    t.print(std::string("bzip2 split pipeline segment pool (steady state ") +
            (pool_ok ? "ZERO-ALLOC ok)" : "VIOLATED)"));
  }

  // ------------------------------------------------------------- dedup
  hq::apps::dedup::config dd;
  dd.input_bytes = quick ? (512u << 10) : (4u << 20);
  dd.coarse_bytes = 32u << 10;
  dd.fine_avg_log2 = 6;  // ~64 B chunks: queue-bound
  dd.fine_min = 32;
  dd.fine_max = 512;
  dd.dup_fraction = 0.9;  // few unique payloads: compression stays off the
                          // critical path so queue overheads are visible
  dd.slice_batch = batch;
  auto dd_input = hq::util::gen_archive(dd.input_bytes, dd.dup_fraction, dd.seed);
  auto dd_serial = hq::apps::dedup::run_serial(dd, dd_input);

  auto dd_run = [&](unsigned p, hq::pipe::backend b) {
    auto c = dd;
    c.threads = p;
    hq::apps::dedup::result r;
    hq::apps::dedup::dedup_table table;
    hq::pipe::graph g;
    hq::apps::dedup::describe_pipeline(c, dd_input, &table, &r, g);
    const auto ex = hq::pipe::execute(g, b, {.workers = p, .seed = c.seed});
    return std::pair{ex.seconds, r.output == dd_serial.output};
  };
  auto dd_rec = measure_app(
      "dedup", reps,
      [&](unsigned p) { return dd_run(p, hq::pipe::backend::hyperqueue_element); },
      [&](unsigned p) { return dd_run(p, hq::pipe::backend::hyperqueue); });
  for (const auto& r : dd_rec.runs) all_ok = all_ok && r.ok;
  print_app(dd_rec);

  // ------------------------------------------------------------- ferret
  hq::apps::ferret::config fr;
  fr.num_images = quick ? 256 : 4096;
  fr.image_wh = 8;  // tiny kernels: queue-bound
  fr.db_entries = 32;
  fr.dims = 8;
  fr.topk = 4;
  fr.slice_batch = batch;
  fr.threads = 1;
  auto fr_serial = hq::apps::ferret::run_serial(fr);
  const auto fr_db = hq::apps::ferret::build_db(fr);

  auto fr_run = [&](unsigned p, hq::pipe::backend b) {
    auto c = fr;
    c.threads = p;
    std::uint64_t checksum = 0;
    hq::pipe::graph g;
    hq::apps::ferret::describe_pipeline(c, fr_db, &checksum, g);
    const auto ex = hq::pipe::execute(g, b, {.workers = p, .seed = c.seed});
    return std::pair{ex.seconds, checksum == fr_serial.checksum};
  };
  auto fr_rec = measure_app(
      "ferret", reps,
      [&](unsigned p) { return fr_run(p, hq::pipe::backend::hyperqueue_element); },
      [&](unsigned p) { return fr_run(p, hq::pipe::backend::hyperqueue); });
  for (const auto& r : fr_rec.runs) all_ok = all_ok && r.ok;
  print_app(fr_rec);

  // ------------------------------------------------------------- JSON
  double best_speedup_at_8 = 0;
  for (const auto* app : {&bz_rec, &dd_rec, &fr_rec}) {
    for (const auto& r : app->runs) {
      if (r.workers == 8 && r.speedup() > best_speedup_at_8) {
        best_speedup_at_8 = r.speedup();
      }
    }
  }
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"slice_apps\",\n  \"quick\": %s,\n",
                 quick ? "true" : "false");
    std::fprintf(f, "  \"slice_batch\": %zu,\n", batch);
    std::fprintf(f, "  \"apps\": [\n");
    bool first_app = true;
    for (const auto* app : {&bz_rec, &dd_rec, &fr_rec}) {
      std::fprintf(f, "%s    {\"app\": \"%s\", \"runs\": [\n",
                   first_app ? "" : ",\n", app->name.c_str());
      first_app = false;
      for (std::size_t i = 0; i < app->runs.size(); ++i) {
        const auto& r = app->runs[i];
        std::fprintf(f,
                     "      {\"workers\": %u, \"element_s\": %.6f, "
                     "\"slice_s\": %.6f, \"speedup\": %.3f, \"ok\": %s}%s\n",
                     r.workers, r.element_s, r.slice_s, r.speedup(),
                     r.ok ? "true" : "false",
                     i + 1 < app->runs.size() ? "," : "");
      }
      std::fprintf(f, "    ]}");
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f,
                 "  \"bzip2_split_pool\": {\"base\": {\"allocated\": %zu, "
                 "\"recycled\": %zu, \"high_water\": %zu}, \"double\": "
                 "{\"allocated\": %zu, \"recycled\": %zu, \"high_water\": "
                 "%zu}, \"steady_state_zero_alloc\": %s},\n",
                 split_base.seg_allocated, split_base.seg_recycled,
                 split_base.seg_high_water, split_double.seg_allocated,
                 split_double.seg_recycled, split_double.seg_high_water,
                 pool_ok ? "true" : "false");
    std::fprintf(f, "  \"best_speedup_at_8_workers\": %.3f,\n",
                 best_speedup_at_8);
    std::fprintf(f, "  \"all_ok\": %s\n}\n", all_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s (best slice speedup at 8 workers: %.2fx)\n",
                json_path.c_str(), best_speedup_at_8);
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", json_path.c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}
