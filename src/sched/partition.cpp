#include "sched/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>

namespace hq {

namespace {

/// splitmix64: the deterministic tie-break hash. Chosen for its fixed,
/// platform-independent output — the partition must replay from the seed
/// bit-for-bit anywhere.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

partition_result partition_greedy(const hypergraph& g, unsigned k,
                                  std::uint64_t seed, double eps) {
  partition_result res;
  res.assignment.assign(g.num_vertices, 0);
  if (g.num_vertices == 0 || k == 0) return res;
  if (k == 1) {
    for (unsigned v = 0; v < g.num_vertices; ++v) {
      res.max_block_weight +=
          v < g.vertex_weight.size() ? g.vertex_weight[v] : 1.0;
    }
    return res;
  }

  auto vweight = [&](unsigned v) {
    return v < g.vertex_weight.size() ? g.vertex_weight[v] : 1.0;
  };

  // Incidence lists and total incident weight per vertex.
  std::vector<std::vector<unsigned>> incident(g.num_vertices);
  std::vector<double> incident_weight(g.num_vertices, 0.0);
  for (unsigned e = 0; e < g.edges.size(); ++e) {
    for (unsigned v : g.edges[e].pins) {
      assert(v < g.num_vertices && "hyperedge pin out of range");
      incident[v].push_back(e);
      incident_weight[v] += g.edges[e].weight;
    }
  }

  double total = 0;
  for (unsigned v = 0; v < g.num_vertices; ++v) total += vweight(v);
  const double cap = std::ceil(total / k) * (1.0 + eps);

  // Visit order: heaviest-connected first (they anchor their neighborhoods),
  // seeded hash as the deterministic tie-break.
  std::vector<unsigned> order(g.num_vertices);
  for (unsigned v = 0; v < g.num_vertices; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return std::make_tuple(-incident_weight[a], mix64(seed ^ a), a) <
           std::make_tuple(-incident_weight[b], mix64(seed ^ b), b);
  });

  constexpr unsigned kUnassigned = ~0u;
  std::vector<unsigned> assign(g.num_vertices, kUnassigned);
  std::vector<double> block_weight(k, 0.0);
  std::vector<double> gain(k, 0.0);

  for (unsigned v : order) {
    std::fill(gain.begin(), gain.end(), 0.0);
    for (unsigned e : incident[v]) {
      // Connectivity gain: each edge credits every block already holding one
      // of its pins exactly once (the bitmask caps at 64 blocks — far above
      // any NUMA node count; beyond it an edge may double-credit, which only
      // softens the heuristic).
      std::uint64_t seen = 0;
      for (unsigned u : g.edges[e].pins) {
        if (u == v || assign[u] == kUnassigned) continue;
        const unsigned b = assign[u];
        if (b < 64) {
          if ((seen & (1ull << b)) != 0) continue;
          seen |= 1ull << b;
        }
        gain[b] += g.edges[e].weight;
      }
    }
    // Highest gain wins; among equals prefer the lighter block, then the
    // lower index — all total orders, so the choice is deterministic.
    unsigned best = kUnassigned;
    for (unsigned b = 0; b < k; ++b) {
      if (block_weight[b] + vweight(v) > cap) continue;
      if (best == kUnassigned || gain[b] > gain[best] ||
          (gain[b] == gain[best] && block_weight[b] < block_weight[best])) {
        best = b;
      }
    }
    if (best == kUnassigned) {
      // Every block over cap (huge vertex): take the lightest outright.
      best = 0;
      for (unsigned b = 1; b < k; ++b) {
        if (block_weight[b] < block_weight[best]) best = b;
      }
    }
    assign[v] = best;
    block_weight[best] += vweight(v);
  }

  res.assignment = std::move(assign);
  for (const auto& e : g.edges) {
    bool cut = false;
    for (std::size_t i = 1; i < e.pins.size() && !cut; ++i) {
      cut = res.assignment[e.pins[i]] != res.assignment[e.pins[0]];
    }
    if (cut) res.cut_weight += e.weight;
  }
  for (double w : block_weight) {
    res.max_block_weight = std::max(res.max_block_weight, w);
  }
  return res;
}

queue_plan plan_queue_placement(const queue_graph& g, unsigned num_nodes,
                                std::uint64_t seed) {
  queue_plan plan;
  plan.stage_node.assign(g.num_stages, 0);
  plan.queue_node.assign(g.queues.size(), 0);
  if (g.num_stages == 0) return plan;
  if (num_nodes <= 1) return plan;  // single node: everything is local

  hypergraph h;
  h.num_vertices = g.num_stages;
  h.edges.reserve(g.queues.size());
  for (const auto& q : g.queues) {
    hypergraph::edge e;
    e.pins = q.producers;
    assert(q.consumer < g.num_stages);
    if (std::find(e.pins.begin(), e.pins.end(), q.consumer) == e.pins.end()) {
      e.pins.push_back(q.consumer);
    }
    e.weight = q.traffic;
    if (e.pins.size() >= 2) h.edges.push_back(std::move(e));
  }

  partition_result part = partition_greedy(h, num_nodes, seed);
  plan.stage_node = part.assignment;
  plan.cut_weight = part.cut_weight;
  for (std::size_t q = 0; q < g.queues.size(); ++q) {
    // The arena follows the consumer: its scan touches every segment of
    // every shard, while each producer only writes its own chain tail.
    plan.queue_node[q] =
        static_cast<int>(plan.stage_node[g.queues[q].consumer]);
  }
  return plan;
}

}  // namespace hq
