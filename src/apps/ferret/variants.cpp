// The five ferret implementations. All must produce the serial checksum:
// the output stage is order-sensitive, so this verifies in-order delivery.
//
// The pthreads/tbb/hyperqueue variants share one declarative description
// (describe_pipeline) with the four middle kernels fused into a single
// parallel stage — the shape the hand-rolled hyperqueue variant used. (The
// PARSEC pthreads build ran four separate pools; the fused stage gives the
// pthreads baseline one pool of `threads` workers instead, see README.)
// Only the serial reference and the task-dataflow "objects" comparison
// remain hand-rolled.
#include <memory>

#include "apps/ferret/ferret.hpp"
#include "hq.hpp"
#include "pipeline/runner.hpp"
#include "util/stats.hpp"

namespace hq::apps::ferret {

namespace {

item make_item(const config& cfg, std::uint64_t seq, std::string path) {
  item it;
  it.seq = seq;
  it.path = std::move(path);
  it.seed = cfg.seed ^ (seq * 0x9e3779b97f4a7c15ull);
  return it;
}

void process_middle(const config& cfg, const feature_db& db, item* it) {
  k_segment(cfg, it);
  k_extract(cfg, it);
  k_vector(cfg, it);
  k_rank(cfg, db, it);
}

}  // namespace

// ----------------------------------------------------------------- serial

result run_serial(const config& cfg) {
  feature_db db = build_db(cfg);
  util::stopwatch sw;
  auto files = traversal_order(cfg);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    item it = make_item(cfg, i, files[i]);
    k_load(cfg, &it);
    process_middle(cfg, db, &it);
    k_output(&checksum, it);
  }
  return {checksum, sw.seconds()};
}

// ----------------------------------------------------- declarative pipeline

void describe_pipeline(const config& cfg, const feature_db& db,
                       std::uint64_t* checksum, pipe::graph& g) {
  // Input stays push-style (directory traversal emitting images as
  // discovered — the programmability point of Section 6.1); the middle
  // four kernels run fused in one parallel stage; output folds the
  // checksum strictly in traversal order.
  auto input = g.source<item>("input", [&cfg](pipe::emit<item> out) {
    auto files = traversal_order(cfg);
    for (std::size_t i = 0; i < files.size(); ++i) {
      item it = make_item(cfg, i, files[i]);
      k_load(cfg, &it);
      out(std::move(it));
    }
  });
  auto middle = g.stage<item, item>(
      "middle", pipe::stage_kind::parallel,
      [&cfg, &db](item&& it, pipe::emit<item> out) {
        process_middle(cfg, db, &it);
        out(std::move(it));
      });
  auto output = g.sink<item>("output", pipe::stage_kind::serial_in_order,
                             [checksum](item&& it) { k_output(checksum, it); });

  pipe::edge_opts opts;
  opts.capacity = 64;  // the PARSEC-style bound the pthreads variant used
  opts.slice_batch = cfg.slice_batch;
  g.connect(input, middle, opts);
  g.connect(middle, output, opts);
}

namespace {

result run_declarative(const config& cfg, pipe::backend b) {
  feature_db db = build_db(cfg);
  result r;
  pipe::graph g;
  describe_pipeline(cfg, db, &r.checksum, g);
  pipe::exec_options opt;
  opt.workers = cfg.threads;
  opt.seed = cfg.seed;
  const pipe::exec_result ex = pipe::execute(g, b, opt);
  r.seconds = ex.seconds;
  r.seg_allocated = ex.pool.allocated;
  r.seg_recycled = ex.pool.recycled;
  r.seg_high_water = ex.pool.high_water;
  return r;
}

}  // namespace

result run_pthreads(const config& cfg) {
  return run_declarative(cfg, pipe::backend::pthreads);
}

result run_tbb(const config& cfg) {
  return run_declarative(cfg, pipe::backend::tbb);
}

result run_hyperqueue(const config& cfg) {
  return run_declarative(cfg, pipe::backend::hyperqueue);
}

result run_hyperqueue_element(const config& cfg) {
  return run_declarative(cfg, pipe::backend::hyperqueue_element);
}

// ---------------------------------------------------------------- objects

result run_objects(const config& cfg) {
  // Baseline task dataflow (Figure 1 style). As in the paper's evaluation,
  // the input stage is NOT restructured: the driver loads images serially
  // in the spawn loop, so input never overlaps the parallel stages — the
  // scalability ceiling visible in Figure 8.
  feature_db db = build_db(cfg);
  util::stopwatch sw;
  std::uint64_t checksum = 0;
  scheduler sched(cfg.threads);
  sched.run([&] {
    auto files = traversal_order(cfg);
    versioned<std::uint64_t> out_token(0);  // serializes the output stage
    for (std::size_t i = 0; i < files.size(); ++i) {
      versioned<item> v(make_item(cfg, i, files[i]));
      k_load(cfg, &v.get());  // serial, not overlapped
      spawn(
          [&cfg, &db](inoutdep<item> it) { process_middle(cfg, db, &*it); },
          (inoutdep<item>)v);
      spawn(
          [&checksum](indep<item> it, inoutdep<std::uint64_t>) {
            k_output(&checksum, *it);
          },
          (indep<item>)v, (inoutdep<std::uint64_t>)out_token);
    }
    sync();
  });
  return {checksum, sw.seconds()};
}

}  // namespace hq::apps::ferret
