// Single-producer single-consumer rings.
//
// Two classic designs referenced by the paper (Section 3.2):
//  * spsc_ring<T>   — Lamport's array queue ['83] with cached-index
//                     optimization (producer caches the consumer's head and
//                     vice versa, so the common case touches one shared line).
//  * ff_ring<T>     — FastForward [Giacomoni et al., PPoPP'08]: slots carry
//                     their own full/empty state via a sentinel value, so
//                     producer and consumer never read each other's index.
//                     Requires a designated "nil" element value.
//
// Hyperqueue segments use the Lamport design (core/segment.hpp); both rings
// are kept here as stand-alone substrates for the Section 3.2 ablation bench.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "conc/cache.hpp"

namespace hq {

/// Bounded SPSC FIFO on a power-of-two circular array. Non-blocking: push
/// and pop fail (return false / nullopt) instead of waiting.
template <typename T>
class spsc_ring {
 public:
  /// @param capacity number of elements; rounded up to a power of two.
  explicit spsc_ring(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) {
    const std::size_t t = tail_.value.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.value.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;
    }
    slots_[t & mask_] = std::move(value);
    tail_.value.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t h = head_.value.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.value.load(std::memory_order_acquire);
      if (h == tail_cache_) return std::nullopt;
    }
    T out = std::move(slots_[h & mask_]);
    head_.value.store(h + 1, std::memory_order_release);
    return out;
  }

  /// Approximate size; exact when called from either endpoint thread.
  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.value.load(std::memory_order_acquire) -
           head_.value.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  padded<std::atomic<std::size_t>> head_{};  // consumer-owned
  padded<std::atomic<std::size_t>> tail_{};  // producer-owned
  // Endpoint-local caches of the opposite index (no sharing in steady state).
  alignas(kCacheLine) std::size_t head_cache_ = 0;  // producer-local
  alignas(kCacheLine) std::size_t tail_cache_ = 0;  // consumer-local
};

/// FastForward-style SPSC ring: each slot's content doubles as its state.
/// `nil` must be a value that is never pushed (e.g. nullptr for pointers).
template <typename T>
class ff_ring {
 public:
  explicit ff_ring(std::size_t capacity, T nil = T{})
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        nil_(nil),
        slots_(mask_ + 1) {
    for (auto& s : slots_) s.value.store(nil_, std::memory_order_relaxed);
  }

  ff_ring(const ff_ring&) = delete;
  ff_ring& operator=(const ff_ring&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  bool try_push(T value) {
    assert(!(value == nil_) && "nil sentinel cannot be enqueued");
    auto& slot = slots_[ptail_ & mask_].value;
    if (slot.load(std::memory_order_acquire) != nil_) return false;  // full
    slot.store(value, std::memory_order_release);
    ++ptail_;
    return true;
  }

  std::optional<T> try_pop() {
    auto& slot = slots_[chead_ & mask_].value;
    T v = slot.load(std::memory_order_acquire);
    if (v == nil_) return std::nullopt;  // empty
    slot.store(nil_, std::memory_order_release);
    ++chead_;
    return v;
  }

 private:
  const std::size_t mask_;
  const T nil_;
  std::vector<padded<std::atomic<T>>> slots_;
  alignas(kCacheLine) std::size_t ptail_ = 0;  // producer-local
  alignas(kCacheLine) std::size_t chead_ = 0;  // consumer-local
};

}  // namespace hq
