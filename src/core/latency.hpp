// Streaming latency-percentile statistics (p50 / p99 / p99.9) over
// fixed-bucket logarithmic histograms.
//
// The service-scale story ("million-user simulation with latency SLOs",
// ROADMAP) needs tail percentiles, not means: a mean hides exactly the
// overload behavior budgets and admission policies exist to control. This
// module keeps them cheap and deterministic:
//
//  * record() is O(1): the bucket index is (octave, sub-bucket) derived from
//    the value's bit width — no floating point, no allocation, no locks;
//  * buckets are value-determined, so two histograms fed the same multiset
//    of samples are bit-identical regardless of arrival order or thread
//    interleaving — percentile curves from a seeded run reproduce exactly;
//  * merge() is element-wise addition, so per-worker histograms combine into
//    a run-wide one without synchronizing the record path.
//
// Resolution: kSubBits sub-buckets per power of two bounds the relative
// quantization error of any reported percentile by 2^-kSubBits (6.25% at the
// default 16 sub-buckets) — ample for SLO curves, where the signal is
// "p99 grew 10x under overload", not the fourth significant digit.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace hq::stats {

class latency_histogram {
 public:
  /// log2 of the sub-buckets per octave: relative error bound 2^-kSubBits.
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSub = 1u << kSubBits;
  /// Octaves 0..63 cover the full uint64 range (values in any unit; the
  /// histogram is unit-agnostic — callers pick ns, us, or virtual ticks).
  static constexpr unsigned kBuckets = 64 * kSub;

  /// Record one sample. O(1), allocation-free, not thread-safe — keep one
  /// histogram per worker and merge().
  void record(std::uint64_t value) noexcept {
    ++counts_[bucket_of(value)];
    ++total_;
    if (value > max_seen_) max_seen_ = value;
  }

  /// Element-wise accumulate `other` into this histogram.
  void merge(const latency_histogram& other) noexcept {
    for (unsigned i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    if (other.max_seen_ > max_seen_) max_seen_ = other.max_seen_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_seen_; }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample (so the true sample is <= the
  /// reported value, within one sub-bucket). 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // ceil without FP edge cases: rank in [1, total].
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (rank * 1.0 < q * static_cast<double>(total_)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        const std::uint64_t ub = bucket_upper(i);
        // Never report past the observed maximum (the last bucket's upper
        // bound can be far above it).
        return ub < max_seen_ ? ub : max_seen_;
      }
    }
    return max_seen_;
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return percentile(0.99); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return percentile(0.999); }

  /// Exact equality (used by determinism gates: same seed -> same histogram).
  [[nodiscard]] bool operator==(const latency_histogram& o) const noexcept {
    return total_ == o.total_ && max_seen_ == o.max_seen_ && counts_ == o.counts_;
  }

 private:
  /// Bucket index of `v`: values below kSub map linearly (exact); above, the
  /// top kSubBits+1 significant bits pick (octave, sub-bucket).
  static unsigned bucket_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<unsigned>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned sub =
        static_cast<unsigned>((v >> (msb - kSubBits)) & (kSub - 1));
    return msb * kSub + sub;
  }

  /// Largest value mapping into bucket `i` (inverse of bucket_of).
  static std::uint64_t bucket_upper(unsigned i) noexcept {
    if (i < kSub) return i;
    const unsigned msb = i / kSub;
    const unsigned sub = i % kSub;
    const std::uint64_t base = std::uint64_t{1} << msb;
    const std::uint64_t step = base >> kSubBits;
    return base + static_cast<std::uint64_t>(sub + 1) * step - 1;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_seen_ = 0;
};

}  // namespace hq::stats
