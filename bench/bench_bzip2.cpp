// Section 6.3 reproduction: bzip2 pipeline, hyperqueue vs the baseline task
// dataflow ("objects") implementation, plus the Section 5.4 loop-split
// ablation (queue growth under serial execution).
//
// The paper's claim: the hyperqueue version performs equivalently to the
// task-dataflow version once the loop-split idiom bounds queue growth.
// On this single-core host real times are throughput-equivalent by
// construction; the interesting measured quantity is the queue footprint,
// plus a virtual-time scaling comparison of the two models.
#include <cstdlib>
#include <string>
#include <thread>

#include "apps/bzip2/bzip2.hpp"
#include "calibrate.hpp"
#include "quick.hpp"
#include "sim/models.hpp"
#include "util/datagen.hpp"
#include "util/mbzip.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hq::apps::bzip2::config cfg;
  cfg.input_bytes = 4u << 20;
  if (const char* env = std::getenv("HQ_BZIP_MB")) {
    cfg.input_bytes = static_cast<std::size_t>(std::atol(env)) << 20;
  }
  if (hq::bench::quick_mode(argc, argv)) cfg.input_bytes = 1u << 20;
  cfg.threads = std::max(1u, std::thread::hardware_concurrency());
  auto input = hq::util::gen_text(cfg.input_bytes, cfg.seed);

  auto serial_r = hq::apps::bzip2::run_serial(cfg, input);
  auto obj_r = hq::apps::bzip2::run_objects(cfg, input);
  auto hq_r = hq::apps::bzip2::run_hyperqueue(cfg, input);
  auto split_r = hq::apps::bzip2::run_hyperqueue_split(cfg, input);

  auto verify = [&](const hq::apps::bzip2::result& r) {
    if (r.output != serial_r.output) return "NO";
    auto back = hq::util::mbzip_decompress(r.output.data(), r.output.size());
    return back == input ? "yes" : "NO";
  };

  hq::util::table table({"Variant", "Time (s)", "Peak queue segments",
                         "Output ok"});
  table.add_row({"serial", hq::util::table::cell(serial_r.seconds, 3), "-",
                 verify(serial_r)});
  table.add_row({"objects", hq::util::table::cell(obj_r.seconds, 3), "-",
                 verify(obj_r)});
  table.add_row({"hyperqueue", hq::util::table::cell(hq_r.seconds, 3),
                 hq::util::table::cell(
                     static_cast<std::uint64_t>(hq_r.peak_segments)),
                 verify(hq_r)});
  table.add_row({"hyperqueue+split(5.4)",
                 hq::util::table::cell(split_r.seconds, 3),
                 hq::util::table::cell(
                     static_cast<std::uint64_t>(split_r.peak_segments)),
                 verify(split_r)});
  table.print("bzip2 (Section 6.3), " + std::to_string(cfg.input_bytes >> 20) +
              " MiB input, " + std::to_string(cfg.threads) + " worker(s)");

  // Virtual-time scaling: hyperqueue vs objects on the 3-stage pipeline
  // (both overlap the read stage; Section 6.3 reports equal performance).
  auto t = hq::apps::bzip2::stage_times(cfg, input);
  const double blocks =
      static_cast<double>((input.size() + cfg.block_bytes - 1) / cfg.block_bytes);
  hq::sim::flat_spec spec;
  spec.stages = {{true, t[0] / blocks}, {false, t[1] / blocks},
                 {true, t[2] / blocks}};
  spec.items = static_cast<std::size_t>(blocks) * 8;  // longer stream
  spec.seed = cfg.seed;
  auto ov = hq::bench::calibrate_overheads();
  const double serial_v = hq::sim::serial_time_flat(spec);
  hq::util::table sweep({"Cores", "Objects", "Hyperqueue"});
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto m = hq::bench::paper_machine(p);
    sweep.add_row(
        {hq::util::table::cell(static_cast<std::uint64_t>(p)),
         hq::util::table::cell(
             serial_v / hq::sim::sim_flat_objects(spec, m, ov, true), 2),
         hq::util::table::cell(
             serial_v / hq::sim::sim_flat_hyperqueue(spec, m, ov), 2)});
  }
  sweep.print("bzip2 speedup, task dataflow vs hyperqueue (virtual time)");

  const bool ok = obj_r.output == serial_r.output &&
                  hq_r.output == serial_r.output &&
                  split_r.output == serial_r.output;
  return ok ? 0 : 1;
}
