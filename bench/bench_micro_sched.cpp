// Scheduler and dataflow-tracker microbenchmarks: spawn/sync overhead,
// recursive task trees, versioned-object dependence chains.
#include <benchmark/benchmark.h>

#include "hq.hpp"

namespace {

void BM_SpawnSyncFlat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    sched.run([&] {
      for (int i = 0; i < n; ++i) hq::spawn([] {});
      hq::sync();
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnSyncFlat)->Arg(1000)->Arg(10000);

long fib_serial(long n) { return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2); }

void fib_task(long n, long* out) {
  if (n < 10) {
    *out = fib_serial(n);
    return;
  }
  long a = 0, b = 0;
  hq::spawn(fib_task, n - 1, &a);
  hq::spawn(fib_task, n - 2, &b);
  hq::sync();
  *out = a + b;
}

void BM_FibTree(benchmark::State& state) {
  hq::scheduler sched(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    long out = 0;
    sched.run([&] { fib_task(24, &out); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FibTree)->Arg(1)->Arg(2)->Arg(4);

void BM_DataflowInoutChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    hq::versioned<long> acc(0);
    sched.run([&] {
      for (int i = 0; i < n; ++i) {
        hq::spawn([](hq::inoutdep<long> v) { *v += 1; }, (hq::inoutdep<long>)acc);
      }
      hq::sync();
    });
    benchmark::DoNotOptimize(acc.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataflowInoutChain)->Arg(1000);

void BM_DataflowRenamedProducers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hq::scheduler sched(2);
  for (auto _ : state) {
    hq::versioned<long> v(0);
    sched.run([&] {
      for (int i = 0; i < n; ++i) {
        hq::spawn([i](hq::outdep<long> o) { *o = i; }, (hq::outdep<long>)v);
      }
      hq::sync();
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DataflowRenamedProducers)->Arg(1000);

// Early head reduction cost vs spawn-tree depth (Section 4.5: O(depth)).
void deep_push(hq::pushdep<int> q, int depth) {
  if (depth == 0) {
    q.push(1);
    return;
  }
  hq::spawn(deep_push, q, depth - 1);
  hq::sync();
  q.push(1);  // empty user view here: triggers the early reduction walk
}

void BM_EarlyReductionDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(64);
      hq::spawn(deep_push, (hq::pushdep<int>)q, depth);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EarlyReductionDepth)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
