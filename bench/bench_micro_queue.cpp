// Hyperqueue microbenchmarks and design ablations:
//  * push/pop throughput vs segment length (Section 5.1 tuning),
//  * slice API vs element-wise push/pop (Section 5.2),
//  * producer -> consumer task handoff.
//
// Provides its own main(): emits a BENCH_queue.json trajectory record with
// a segment/attachment steady-state probe as the correctness gate (see
// bench_json.hpp; --json PATH overrides, --quick shrinks to smoke size).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "hq.hpp"

namespace {

// Section 5.1: segment-length sweep. One pushpop task in ring steady state.
void BM_PushPop_SegmentLength(benchmark::State& state) {
  const auto seglen = static_cast<std::size_t>(state.range(0));
  hq::scheduler sched(1);
  for (auto _ : state) {
    state.PauseTiming();
    long sum = 0;
    state.ResumeTiming();
    sched.run([&] {
      hq::hyperqueue<int> q(seglen);
      hq::spawn(
          [&sum](hq::pushpopdep<int> qq) {
            for (int i = 0; i < 20000; ++i) {
              qq.push(i);
              sum += qq.pop();
            }
          },
          (hq::pushpopdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PushPop_SegmentLength)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

// Section 5.2: slices amortize the per-element privilege lookup.
void BM_ElementWise(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 20000; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ElementWise);

void BM_Slices(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            int v = 0;
            while (v < 20000) {
              auto ws = qq.get_write_slice(256);
              for (std::size_t i = 0; i < ws.size(); ++i) ws.emplace(i, v++);
              ws.commit();
            }
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            for (;;) {
              auto rs = qq.get_read_slice(256);
              if (rs.empty()) break;
              for (int v : rs) sum += v;
              rs.release();
            }
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_Slices);

// Trivial-type batched transfer: write slices in, pop_bulk out (one memcpy
// per contiguous run on both sides).
void BM_PopBulk(benchmark::State& state) {
  hq::scheduler sched(1);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(1024);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            int v = 0;
            while (v < 20000) {
              auto ws = qq.get_write_slice(256);
              for (std::size_t i = 0; i < ws.size(); ++i) ws.emplace(i, v++);
              ws.commit();
            }
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            int buf[256];
            for (;;) {
              const std::size_t n = qq.pop_bulk(buf, 256);
              if (n == 0) break;
              for (std::size_t i = 0; i < n; ++i) sum += buf[i];
            }
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PopBulk);

// Parallel producers: the paper's scale-free claim (Section 4). A fixed
// 64k-element stream is split across 1/8/64 producer tasks pushing into one
// queue; with constant total work, ns_per_op across the arms measures the
// cost of multiplying producers directly (it should stay flat — the sharded
// scan list splices and closes shards without any shared lock).
void BM_ParallelProducers(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  constexpr int kTotal = 64000;
  const int per_leaf = kTotal / leaves;
  hq::scheduler sched(2);
  for (auto _ : state) {
    long sum = 0;
    sched.run([&] {
      hq::hyperqueue<int> q(256);
      for (int l = 0; l < leaves; ++l) {
        hq::spawn(
            [l, per_leaf](hq::pushdep<int> qq) {
              for (int i = 0; i < per_leaf; ++i) qq.push(l * per_leaf + i);
            },
            (hq::pushdep<int>)q);
      }
      hq::spawn(
          [&sum](hq::popdep<int> qq) {
            while (!qq.empty()) sum += qq.pop();
          },
          (hq::popdep<int>)q);
      hq::sync();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_ParallelProducers)->Arg(1)->Arg(8)->Arg(64);

/// Steady-state probe: a producer/consumer ring that stays in step must
/// recycle one segment and a bounded set of qattaches — no fresh segment or
/// attachment allocations once warm. This is the JSON correctness gate.
struct probe_result {
  hq::detail::seg_pool_stats segs;
  hq::detail::obj_pool::stats_t attaches;
  bool zero_alloc_steady_state = false;
  bool sum_ok = false;
  std::uint64_t mu_attach_push_burst = 0;  // mu acquisitions by push spawns
  bool zero_mutex_push_path = false;
  bool push_burst_sum_ok = false;
};

/// Zero-mutex-on-push gate: repeated wide producer-only bursts must never
/// touch queue_cb::mu. mu_attach counts pop-FIFO registrations only, so its
/// delta across a burst of push spawns pins the lock-free producer contract
/// (push, write_slice, push-privileged spawn and completion); mu_view must
/// stay 0 outright. The owner then drains and checks the serial-elision sum.
void run_push_probe(bool quick, probe_result& pr) {
  const int rounds = quick ? 4 : 16;
  const int producers = 64;
  const int per_leaf = 256;
  hq::scheduler sched(2);
  std::uint64_t mu_delta = 0;
  bool sums_ok = true;
  sched.run([&] {
    for (int r = 0; r < rounds; ++r) {
      hq::hyperqueue<int> q(256);
      const hq::data_path_stats before = q.data_stats();
      for (int l = 0; l < producers; ++l) {
        hq::spawn(
            [l, per_leaf](hq::pushdep<int> qq) {
              for (int i = 0; i < per_leaf; ++i) qq.push(l * per_leaf + i);
            },
            (hq::pushdep<int>)q);
      }
      q.sync_push();
      const hq::data_path_stats after = q.data_stats();
      mu_delta += (after.mu_attach - before.mu_attach) +
                  (after.mu_view - before.mu_view);
      long sum = 0;
      while (!q.empty()) sum += q.pop();
      const long n = static_cast<long>(producers) * per_leaf;
      sums_ok = sums_ok && sum == n * (n - 1) / 2;
    }
  });
  pr.mu_attach_push_burst = mu_delta;
  pr.zero_mutex_push_path = mu_delta == 0;
  pr.push_burst_sum_ok = sums_ok;
}

probe_result run_probe(bool quick) {
  probe_result pr;
  const int rounds = quick ? 10 : 50;
  const int per_round = 4096;
  hq::scheduler sched(2);
  long total = 0;
  hq::detail::seg_pool_stats seg_warm{}, seg_after{};
  hq::detail::obj_pool::stats_t at_warm{}, at_after{};
  sched.run([&] {
    hq::hyperqueue<int> q(256);
    auto round = [&q, &total] {
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < per_round; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::spawn(
          [&total](hq::popdep<int> qq) {
            long s = 0;
            while (!qq.empty()) s += qq.pop();
            total += s;  // pop tasks run FIFO: no race on total
          },
          (hq::popdep<int>)q);
      hq::sync();
    };
    for (int r = 0; r < rounds; ++r) round();
    seg_warm = q.pool_stats();
    at_warm = sched.attach_pool_stats();
    for (int r = 0; r < rounds; ++r) round();
    seg_after = q.pool_stats();
    at_after = sched.attach_pool_stats();
  });
  pr.segs = seg_after;
  pr.attaches = at_after;
  // Gate with worst-case-derived tolerances so CI-runner preemption cannot
  // fail the job spuriously: a fully unconsumed push burst needs at most
  // ceil(per_round / 256) + 1 segments beyond the warm-up peak, and each
  // measured round can catch at most its two attachments in cross-worker
  // flight. A real leak grows with every round and sails past both bounds.
  const std::uint64_t seg_slack = per_round / 256 + 2;
  const std::uint64_t at_slack = 2u * static_cast<std::uint64_t>(rounds);
  pr.zero_alloc_steady_state =
      seg_after.allocated <= seg_warm.allocated + seg_slack &&
      seg_after.recycled > seg_warm.recycled &&
      at_after.allocated <= at_warm.allocated + at_slack &&
      at_after.recycled > at_warm.recycled;
  pr.sum_ok =
      total == 2L * rounds * (static_cast<long>(per_round) * (per_round - 1) / 2);
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  const auto opt =
      hq::bench::parse_micro_args(argc, argv, "BENCH_queue.json", args);
  benchmark::Initialize(&argc, args.data());
  hq::bench::collecting_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  probe_result pr = run_probe(opt.quick);
  run_push_probe(opt.quick, pr);

  // Scale-free gate (machine-independent, so it can run on any CI host):
  // BM_ParallelProducers pushes the same 64k-element stream at every leaf
  // count, so 64 producers may cost at most kScaleFreeBound x the
  // single-producer time. A producer-side serialization bug shows up here
  // as a leaf-count-proportional blowup.
  constexpr double kScaleFreeBound = 8.0;
  double ns_1 = 0, ns_64 = 0;
  for (const auto& row : reporter.rows) {
    if (row.name == "BM_ParallelProducers/1") ns_1 = row.ns_per_op;
    if (row.name == "BM_ParallelProducers/64") ns_64 = row.ns_per_op;
  }
  const double scale_ratio = ns_1 > 0 ? ns_64 / ns_1 : -1.0;
  const bool scale_free = scale_ratio > 0 && scale_ratio <= kScaleFreeBound;
  if (!scale_free) {
    std::fprintf(stderr,
                 "FAIL: BM_ParallelProducers/64 is %.2fx the single-producer "
                 "time for the same total work (bound: %.1fx)\n",
                 scale_ratio, kScaleFreeBound);
  }

  if (!pr.zero_alloc_steady_state) {
    std::fprintf(stderr,
                 "FAIL: segment/attachment pools kept allocating in steady "
                 "state\n");
  }
  if (!pr.sum_ok) std::fprintf(stderr, "FAIL: probe checksum mismatch\n");
  if (!pr.zero_mutex_push_path) {
    std::fprintf(stderr,
                 "FAIL: producer path acquired queue_cb::mu %llu times "
                 "(contract: zero)\n",
                 static_cast<unsigned long long>(pr.mu_attach_push_burst));
  }
  if (!pr.push_burst_sum_ok) {
    std::fprintf(stderr, "FAIL: push-burst checksum mismatch\n");
  }

  const bool all_ok = pr.zero_alloc_steady_state && pr.sum_ok &&
                      pr.zero_mutex_push_path && pr.push_burst_sum_ok &&
                      scale_free && !reporter.rows.empty();
  const bool wrote = hq::bench::write_micro_json(
      opt, "micro_queue", reporter.rows, all_ok, [&](FILE* f) {
        std::fprintf(f, "  \"probe\": {\n");
        std::fprintf(f,
                     "    \"segment_pool\": {\"allocated\": %llu, \"recycled\": "
                     "%llu, \"high_water\": %llu},\n",
                     static_cast<unsigned long long>(pr.segs.allocated),
                     static_cast<unsigned long long>(pr.segs.recycled),
                     static_cast<unsigned long long>(pr.segs.high_water));
        hq::bench::emit_pool_json(f, "attach_pool", pr.attaches);
        std::fprintf(f, "    \"zero_alloc_steady_state\": %s,\n",
                     pr.zero_alloc_steady_state ? "true" : "false");
        std::fprintf(f, "    \"mu_attach_push_burst\": %llu,\n",
                     static_cast<unsigned long long>(pr.mu_attach_push_burst));
        std::fprintf(f, "    \"zero_mutex_push_path\": %s,\n",
                     pr.zero_mutex_push_path ? "true" : "false");
        std::fprintf(f, "    \"parallel_producers_64_vs_1\": %.3f,\n",
                     scale_ratio);
        std::fprintf(f, "    \"scale_free\": %s\n  },\n",
                     scale_free ? "true" : "false");
      });
  return all_ok && wrote ? 0 : 1;
}
