// Deterministic greedy hypergraph partitioning for topology-aware queue
// placement.
//
// A pipeline's static structure is a hypergraph: vertices are the stages
// (task roles / producer shards), and every hyperqueue is a hyperedge over
// the stages that touch it (its producers plus its consumer). Assigning
// stages to NUMA nodes so that hot queues stay node-internal is exactly
// balanced hypergraph partitioning with connectivity minimization; the
// deterministic-parallel HGP line of work (Gottesbüren; Krause et al.,
// PAPERS.md) shows determinism and quality can coexist, and determinism is
// non-negotiable here — the placement feeds arena allocation and worker
// pinning, and the runtime's byte-identical-output gates must hold for any
// placement, reproducibly.
//
// The heuristic is greedy hypergraph growing: visit vertices by descending
// incident weight (ties broken by a seeded splitmix64 hash, so the whole
// partition is replayable from the seed alone) and put each on the block
// where it has the most already-placed neighbors, subject to a balance
// cap. Pure function of (graph, k, seed): no iteration-order or pointer
// dependence anywhere.
#pragma once

#include <cstdint>
#include <vector>

namespace hq {

struct hypergraph {
  unsigned num_vertices = 0;
  /// Vertex weights (balance constraint); empty = all 1.
  std::vector<double> vertex_weight;
  struct edge {
    std::vector<unsigned> pins;  ///< vertices the hyperedge connects
    double weight = 1.0;         ///< traffic carried (cut objective)
  };
  std::vector<edge> edges;
};

struct partition_result {
  std::vector<unsigned> assignment;  ///< vertex -> block in [0, k)
  double cut_weight = 0;       ///< total weight of edges spanning >1 block
  double max_block_weight = 0; ///< heaviest block (balance check)
};

/// Partition `g` into `k` blocks. `eps` is the allowed imbalance: no block
/// exceeds ceil(total/k) * (1+eps) unless a vertex alone does. Identical
/// inputs (including `seed`) produce identical output on every run and
/// platform.
[[nodiscard]] partition_result partition_greedy(const hypergraph& g, unsigned k,
                                                std::uint64_t seed,
                                                double eps = 0.2);

/// Static producer -> consumer attachment graph of a pipeline: the input
/// the runtime actually has at queue-creation time.
struct queue_graph {
  unsigned num_stages = 0;
  struct queue_desc {
    std::vector<unsigned> producers;  ///< stages holding push attachments
    unsigned consumer = 0;            ///< the (single) popping stage
    double traffic = 1.0;             ///< relative element volume
  };
  std::vector<queue_desc> queues;
};

struct queue_plan {
  std::vector<unsigned> stage_node;  ///< stage -> NUMA node
  std::vector<int> queue_node;       ///< queue -> arena node (consumer's node)
  double cut_weight = 0;             ///< traffic crossing nodes
};

/// Map a pipeline's stages and queue arenas onto `num_nodes` NUMA nodes.
/// Each queue's arena follows its consumer (the consumer's scan walks every
/// segment; producers touch only their own tail lines). Replayable from
/// `seed`; single-node machines trivially map everything to node 0.
[[nodiscard]] queue_plan plan_queue_placement(const queue_graph& g,
                                              unsigned num_nodes,
                                              std::uint64_t seed);

}  // namespace hq
