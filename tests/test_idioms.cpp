// Tests for the programming idioms of paper Section 5: segment-length
// tuning (5.1), queue slices (5.2), loop split & interchange (5.4), and
// selective sync (5.5).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "hq.hpp"

namespace {

class IdiomParam : public ::testing::TestWithParam<unsigned> {};

// ------------------------------------------------- 5.1 segment length tuning

TEST_P(IdiomParam, SegmentLengthIsRespected) {
  hq::scheduler sched(GetParam());
  sched.run([&] {
    // Leaf tasks produce exactly 64 values; with segment length 64 the
    // producer side allocates one segment per leaf and never chains.
    hq::hyperqueue<int> queue(64);
    for (int leaf = 0; leaf < 8; ++leaf) {
      hq::spawn(
          [leaf](hq::pushdep<int> q) {
            for (int i = 0; i < 64; ++i) q.push(leaf * 64 + i);
          },
          (hq::pushdep<int>)queue);
    }
    hq::spawn(
        [](hq::popdep<int> q) {
          int expect = 0;
          while (!q.empty()) ASSERT_EQ(q.pop(), expect++);
        },
        (hq::popdep<int>)queue);
    hq::sync();
  });
}

TEST(Idioms, TinySegmentsStillCorrect) {
  // Degenerate segment length (2) maximizes chaining; order must hold.
  hq::scheduler sched(4);
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue(2);
    for (int b = 0; b < 10; ++b) {
      hq::spawn(
          [b](hq::pushdep<int> q) {
            for (int i = 0; i < 17; ++i) q.push(b * 17 + i);
          },
          (hq::pushdep<int>)queue);
    }
    hq::spawn(
        [&got](hq::popdep<int> q) {
          while (!q.empty()) got.push_back(q.pop());
        },
        (hq::popdep<int>)queue);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 170u);
  for (int i = 0; i < 170; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

// ----------------------------------------------------------- 5.2 queue slices

TEST_P(IdiomParam, WriteSliceRoundtrip) {
  hq::scheduler sched(GetParam());
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue(128);
    hq::spawn(
        [](hq::pushdep<int> q) {
          // Slices may be granted short (e.g. at a ring wrap point), so the
          // producer loop is grant-driven: ask for up to 25 and advance by
          // whatever came back.
          int v = 0;
          while (v < 500) {
            auto ws = q.get_write_slice(std::min<std::size_t>(
                25, static_cast<std::size_t>(500 - v)));
            ASSERT_GE(ws.size(), 1u);
            for (std::size_t i = 0; i < ws.size(); ++i) ws.emplace(i, v++);
            ws.commit();
          }
        },
        (hq::pushdep<int>)queue);
    hq::spawn(
        [&got](hq::popdep<int> q) {
          while (!q.empty()) got.push_back(q.pop());
        },
        (hq::popdep<int>)queue);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 500u);
  for (int i = 0; i < 500; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(IdiomParam, ReadSliceRoundtrip) {
  hq::scheduler sched(GetParam());
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> queue(64);
    hq::spawn(
        [](hq::pushdep<int> q) {
          for (int i = 0; i < 300; ++i) q.push(i);
        },
        (hq::pushdep<int>)queue);
    hq::spawn(
        [&got](hq::popdep<int> q) {
          for (;;) {
            auto rs = q.get_read_slice(40);
            if (rs.empty()) break;  // definitive end
            for (const int& v : rs) got.push_back(v);
            rs.release();
          }
        },
        (hq::popdep<int>)queue);
    hq::sync();
  });
  ASSERT_EQ(got.size(), 300u);
  for (int i = 0; i < 300; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(Idioms, SliceGrantsAreBoundedBySegment) {
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> queue(16);
    hq::spawn(
        [](hq::pushdep<int> q) {
          auto ws = q.get_write_slice(100);  // > segment length
          EXPECT_LE(ws.size(), 16u) << "slice must fit one segment";
          for (std::size_t i = 0; i < ws.size(); ++i) {
            ws.emplace(i, static_cast<int>(i));
          }
          ws.commit();
        },
        (hq::pushdep<int>)queue);
    hq::sync();
    while (!queue.empty()) queue.pop();
  });
}

// ----------------------------------------- 5.4 queue loop split & interchange

bool split_producer(hq::pushdep<int> q, int base, int block) {
  for (int i = 0; i < block; ++i) q.push(base + i);
  return base + block < 200;  // more work to do?
}

TEST_P(IdiomParam, LoopSplitFigure5) {
  // Figure 5: the main iteration loop is moved outside the tasks; memory
  // growth is bounded by one block per iteration under serial execution.
  hq::scheduler sched(GetParam());
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  sched.run([&] {
    hq::hyperqueue<int> queue(16);
    int base = 0;
    // NOTE: the owner produces (it has push privileges) and spawns one
    // consumer per block, exactly as in the paper's Figure 5.
    while (split_producer((hq::pushdep<int>)queue, base, 10)) {
      base += 10;
      hq::spawn(
          [&](hq::popdep<int> q) {
            while (!q.empty()) {
              sum.fetch_add(q.pop());
              count.fetch_add(1);
            }
          },
          (hq::popdep<int>)queue);
    }
    hq::sync();
    // Drain the final block (the last spawned consumer may have finished
    // before the last producer call in serial order — values pushed after
    // a consumer's spawn are invisible to it).
    while (!queue.empty()) {
      sum.fetch_add(queue.pop());
      count.fetch_add(1);
    }
  });
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(sum.load(), 200L * 199 / 2);
}

// --------------------------------------------------------- 5.5 selective sync

TEST_P(IdiomParam, SelectiveSyncFigure6) {
  // Figure 6: producer / consumer / producer; the owner then pops. sync_pop
  // suspends until the consumer is done, so the owner's empty()/pop() do not
  // block the worker.
  hq::scheduler sched(GetParam());
  sched.run([&] {
    hq::hyperqueue<int> queue;
    hq::spawn(
        [](hq::pushdep<int> q) {
          for (int i = 0; i < 10; ++i) q.push(i);
        },
        (hq::pushdep<int>)queue);
    hq::spawn(
        [](hq::popdep<int> q) {
          for (int i = 0; i < 5; ++i) {
            ASSERT_FALSE(q.empty());
            ASSERT_EQ(q.pop(), i);
          }
        },
        (hq::popdep<int>)queue);
    hq::spawn(
        [](hq::pushdep<int> q) {
          for (int i = 100; i < 103; ++i) q.push(i);
        },
        (hq::pushdep<int>)queue);
    queue.sync_pop();  // paper: "sync (popdep<int>)queue;"
    // The consumer left 5..9, then the second producer's 100..102 follow.
    const int expect[] = {5, 6, 7, 8, 9, 100, 101, 102};
    for (int e : expect) {
      ASSERT_FALSE(queue.empty());
      ASSERT_EQ(queue.pop(), e);
    }
    EXPECT_TRUE(queue.empty());
    hq::sync();
  });
}

TEST_P(IdiomParam, SyncQueueWaitsForAllModes) {
  hq::scheduler sched(GetParam());
  std::atomic<int> done{0};
  sched.run([&] {
    hq::hyperqueue<int> queue;
    hq::spawn(
        [&done](hq::pushdep<int> q) {
          for (int i = 0; i < 100; ++i) q.push(i);
          done.fetch_add(1);
        },
        (hq::pushdep<int>)queue);
    hq::spawn(
        [&done](hq::popdep<int> q) {
          while (!q.empty()) q.pop();
          done.fetch_add(1);
        },
        (hq::popdep<int>)queue);
    queue.sync_queue();  // Swan's "sync queue;"
    EXPECT_EQ(done.load(), 2);
    hq::sync();
  });
}

INSTANTIATE_TEST_SUITE_P(Workers, IdiomParam, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
