// LZ77-style byte compressor ("lzw77") — the Compress kernel of dedup.
//
// Greedy hash-chain matcher over a 64 KiB window emitting a token stream of
// literal runs and (length, distance) matches, varint-encoded. Self-
// contained and deterministic; the decompressor round-trips exactly.
// Compression throughput is in the tens of MB/s — deliberately CPU-bound,
// like PARSEC dedup's gzip stage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hq::util {

/// Compress `len` bytes. Output layout: varint(orig_len) then tokens.
/// `effort` bounds the match-search chain length (32 ≈ fast; 256+ ≈ the
/// gzip-9-like effort dedup's Compress stage uses).
std::vector<std::uint8_t> lz77_compress(const std::uint8_t* data, std::size_t len,
                                        unsigned effort = 32);

/// Decompress a buffer produced by lz77_compress. Returns the original
/// bytes; throws std::runtime_error on malformed input.
std::vector<std::uint8_t> lz77_decompress(const std::uint8_t* data, std::size_t len);

}  // namespace hq::util
