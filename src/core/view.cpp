#include "core/view.hpp"

#include <cassert>

namespace hq::detail {

std::pair<view, view> split(view v, std::uint64_t nl_id) noexcept {
  assert(v.present && v.head_local() && v.tail_local() && v.head == v.tail &&
         "split is defined on local single-segment views");
  assert(nl_id != 0);
  view head_only;
  head_only.head = v.head;
  head_only.tail = nullptr;
  head_only.tail_nl = nl_id;
  head_only.present = true;

  view tail_only;
  tail_only.head = nullptr;
  tail_only.head_nl = nl_id;
  tail_only.tail = v.tail;
  tail_only.present = true;
  return {head_only, tail_only};
}

void reduce_into(view& left, view&& right) noexcept {
  if (right.empty()) return;  // reduce(v, ε) = v ; reduce(ε, ε) = ε
  if (left.empty()) {
    left = right;
    right = view{};
    return;
  }
  if (left.tail_nl == 0 && right.head_nl == 0) {
    // Case 1: both local — concatenate the segment chains.
    assert(left.tail != nullptr && right.head != nullptr);
    assert(left.tail->next.load(std::memory_order_relaxed) == nullptr &&
           "left view's tail must be the end of its chain (invariant 5)");
    left.tail->next.store(right.head, std::memory_order_release);
  } else {
    // Case 2: both non-local — they must be the matching pair created by one
    // split; the segments are already physically joined.
    assert(left.tail_nl != 0 && right.head_nl != 0 &&
           "mixed local/non-local adjacency cannot occur");
    assert(left.tail_nl == right.head_nl && "non-local pointers must match");
  }
  left.tail = right.tail;
  left.tail_nl = right.tail_nl;
  right = view{};
}

}  // namespace hq::detail
