// bzip2-like block compression utility over the mbzip kernel (paper
// Section 6.3): a 3-stage pipeline — serial read, parallel per-block
// compression, serial in-order write.
//
// Variants: serial, pthreads, tbb, task dataflow ("objects", the structure
// of prior work [7] the paper compares against), hyperqueue, and the
// hyperqueue version with the loop-split idiom of Section 5.4 that bounds
// queue growth under serial execution.
#pragma once

#include <cstdint>
#include <vector>

namespace hq::pipe {
class graph;
}

namespace hq::apps::bzip2 {

struct config {
  std::size_t input_bytes = 4u << 20;
  std::size_t block_bytes = 128u << 10;
  unsigned threads = 1;
  std::uint64_t seed = 99;
  std::size_t split_batch = 8;   // blocks per batch in the loop-split variant
  std::size_t split_window = 4;  // batches in flight before a selective sync
  std::size_t slice_batch = 16;  // blocks moved per queue slice (Section 5.2)
};

struct result {
  std::vector<std::uint8_t> output;  // mbzip stream (decompressible)
  double seconds = 0;
  std::size_t blocks = 0;
  std::size_t peak_segments = 0;  // hyperqueue variants: memory footprint probe
  // Segment-pool counters summed over the pipeline's queues (hyperqueue
  // variants): fresh allocations, pool reuses, peak segments in use.
  std::size_t seg_allocated = 0;
  std::size_t seg_recycled = 0;
  std::size_t seg_high_water = 0;
};

result run_serial(const config& cfg, const std::vector<std::uint8_t>& input);
/// Declarative 3-stage description (pipeline/builder.hpp): serial read ->
/// parallel compress -> in-order write. The pthreads/tbb/hyperqueue
/// variants below all execute this one graph; `cfg`, `input` and `r` must
/// outlive the built graph.
void describe_pipeline(const config& cfg, const std::vector<std::uint8_t>& input,
                       result* r, pipe::graph& g);
result run_pthreads(const config& cfg, const std::vector<std::uint8_t>& input);
result run_tbb(const config& cfg, const std::vector<std::uint8_t>& input);
result run_objects(const config& cfg, const std::vector<std::uint8_t>& input);
/// Slice-based hyperqueue pipeline (the default; Section 5.2 batching).
result run_hyperqueue(const config& cfg, const std::vector<std::uint8_t>& input);
/// Element-at-a-time hyperqueue pipeline (baseline for the slice bench).
result run_hyperqueue_element(const config& cfg,
                              const std::vector<std::uint8_t>& input);
result run_hyperqueue_split(const config& cfg,
                            const std::vector<std::uint8_t>& input);

/// Serial per-stage seconds {read, compress, write}.
std::vector<double> stage_times(const config& cfg,
                                const std::vector<std::uint8_t>& input);

}  // namespace hq::apps::bzip2
