#include "pipeline/builder.hpp"

#include <chrono>

#include "conc/backoff.hpp"
#include "sched/scheduler.hpp"

namespace hq::pipe {

namespace detail {

bool admission_ctl::admit() {
  if (opts.policy == admission_policy::none) {
    admitted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (in_flight() < opts.window) {
    admitted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (opts.policy == admission_policy::shed ||
      cancelled.load(std::memory_order_acquire)) {
    shed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (wedged.load(std::memory_order_relaxed)) {
    // A previous wait proved the sink cannot currently run; don't re-pay
    // the patience wait per token. Re-arm enforcement once it completes
    // something again.
    if (completed.load(std::memory_order_acquire) ==
        wedge_done.load(std::memory_order_relaxed)) {
      admitted.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    wedged.store(false, std::memory_order_relaxed);
  }
  // block / bounded_wait: park the source until the sink opens the window.
  // Pause-only, never help-first: helping from the blocked source can nest
  // the sink on this very stack, where it blocks forever on the source's
  // open shard (the same producer-side hazard queue_cb::budget_wait
  // documents). When sink completions stop arriving entirely — a schedule
  // that cannot interleave the sink at all — the wait escapes by admitting
  // over the window rather than wedging; a block window degrades to a soft
  // one only where a hard one is impossible. cancel() and scheduler
  // cancellation both unblock as a shed so failure teardown never hangs.
  scheduler* sc = scheduler::current();
  const auto t0 = std::chrono::steady_clock::now();
  backoff bo;
  std::uint64_t last_done = completed.load(std::memory_order_acquire);
  std::uint32_t stalled_iters = 0;
  constexpr std::uint32_t kPatience = 1024;
  bool ok;
  for (;;) {
    if (in_flight() < opts.window) {
      admitted.fetch_add(1, std::memory_order_relaxed);
      ok = true;
      break;
    }
    if (cancelled.load(std::memory_order_acquire) ||
        (sc != nullptr && sc->cancelled())) {
      shed.fetch_add(1, std::memory_order_relaxed);
      ok = false;
      break;
    }
    const auto waited = std::chrono::steady_clock::now() - t0;
    if (opts.policy == admission_policy::bounded_wait &&
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                .count()) >= opts.max_wait_ns) {
      shed.fetch_add(1, std::memory_order_relaxed);
      ok = false;
      break;
    }
    const std::uint64_t done = completed.load(std::memory_order_acquire);
    if (done != last_done) {
      last_done = done;
      stalled_iters = 0;
      bo.reset();
    } else if (bo.is_yielding() && ++stalled_iters > kPatience) {
      wedge_done.store(done, std::memory_order_relaxed);
      wedged.store(true, std::memory_order_relaxed);
      admitted.fetch_add(1, std::memory_order_relaxed);
      ok = true;
      break;
    }
    bo.pause();
  }
  wait_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  return ok;
}

}  // namespace detail

const char* to_string(stage_kind k) noexcept {
  switch (k) {
    case stage_kind::serial_in_order:
      return "serial_in_order";
    case stage_kind::serial:
      return "serial";
    case stage_kind::parallel:
      return "parallel";
  }
  return "?";
}

void graph::connect(stage_id from, stage_id to, edge_opts opts) {
  if (from >= stages_.size() || to >= stages_.size())
    throw graph_error("pipe::connect: stage id out of range");
  auto& src = stages_[from];
  auto& dst = stages_[to];
  if (src.is_sink)
    throw graph_error("pipe::connect: cannot connect from sink stage '" +
                      src.name + "'");
  if (dst.is_source)
    throw graph_error("pipe::connect: cannot connect into source stage '" +
                      dst.name + "'");
  if (src.out_type != dst.in_type)
    throw graph_error("pipe::connect: type mismatch on edge '" + src.name +
                      "' -> '" + dst.name + "': produces " +
                      src.out_type_name + ", consumes " + dst.in_type_name);
  if (src.out_edge != -1)
    throw graph_error("pipe::connect: output of stage '" + src.name +
                      "' already connected");
  if (dst.in_edge != -1)
    throw graph_error("pipe::connect: input of stage '" + dst.name +
                      "' already connected");

  detail::edge_rec e;
  e.from = from;
  e.to = to;
  e.opts = opts;
  e.type = src.out_type;
  src.out_edge = static_cast<int>(edges_.size());
  dst.in_edge = static_cast<int>(edges_.size());
  edges_.push_back(std::move(e));
}

graph::plan graph::compile() const {
  if (stages_.empty()) throw graph_error("pipe::compile: empty graph");

  std::size_t src = stages_.size();
  std::size_t snk = stages_.size();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].is_source) {
      if (src != stages_.size())
        throw graph_error("pipe::compile: more than one source stage");
      src = i;
    }
    if (stages_[i].is_sink) {
      if (snk != stages_.size())
        throw graph_error("pipe::compile: more than one sink stage");
      snk = i;
    }
  }
  if (src == stages_.size())
    throw graph_error("pipe::compile: no source stage declared");
  if (snk == stages_.size())
    throw graph_error("pipe::compile: no sink stage declared");
  if (stages_[snk].kind == stage_kind::parallel)
    throw graph_error(
        "pipe::compile: sink stage '" + stages_[snk].name +
        "' is parallel; sinks must be serial or serial_in_order");

  plan p;
  // Walk the chain from the source; every stage must be reachable.
  std::size_t cur = src;
  unsigned depth = 0;  // reorder-path depth of tokens *entering* cur
  for (;;) {
    p.order.push_back(cur);
    const auto& s = stages_[cur];
    if (s.is_sink) break;
    if (s.out_edge < 0)
      throw graph_error("pipe::compile: stage '" + s.name +
                        "' has no outgoing edge");
    // Depth of the tokens this stage emits: an in-order stage restarts
    // sequence numbering (its output is a fresh totally-ordered stream);
    // other kinds tag outputs relative to their input's position. An
    // expand stage appends one sub-sequence level either way.
    unsigned out_depth =
        (s.kind == stage_kind::serial_in_order || s.is_source) ? 1 : depth;
    if (s.multi_out) ++out_depth;
    if (out_depth > kMaxDepth)
      throw graph_error("pipe::compile: fan-out nesting exceeds kMaxDepth at '" +
                        s.name + "'");
    p.edges.push_back(static_cast<std::size_t>(s.out_edge));
    p.edge_depth.push_back(out_depth);
    depth = out_depth;
    cur = edges_[static_cast<std::size_t>(s.out_edge)].to;
  }

  if (p.order.size() != stages_.size()) {
    // Some declared stage was never reached from the source.
    std::vector<bool> seen(stages_.size(), false);
    for (auto i : p.order) seen[i] = true;
    for (std::size_t i = 0; i < stages_.size(); ++i)
      if (!seen[i])
        throw graph_error("pipe::compile: stage '" + stages_[i].name +
                          "' is not attached to the source->sink chain");
  }
  return p;
}

hq::queue_graph graph::build_queue_graph() const {
  plan p = compile();
  hq::queue_graph g;
  g.num_stages = static_cast<unsigned>(p.order.size());
  g.queues.reserve(p.edges.size());
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    hq::queue_graph::queue_desc q;
    q.producers = {static_cast<unsigned>(i)};
    q.consumer = static_cast<unsigned>(i + 1);
    q.traffic = edges_[p.edges[i]].opts.traffic;
    g.queues.push_back(std::move(q));
  }
  return g;
}

}  // namespace hq::pipe
