// Integration tests: every implementation of every evaluation application
// must produce output identical to its serial version (ferret: checksum;
// dedup / bzip2: byte-identical streams) and the compressed outputs must
// reassemble to the original input.
#include <gtest/gtest.h>

#include "apps/bzip2/bzip2.hpp"
#include "apps/dedup/dedup.hpp"
#include "apps/ferret/ferret.hpp"
#include "util/datagen.hpp"
#include "util/mbzip.hpp"

namespace {

class AppParam : public ::testing::TestWithParam<unsigned> {};

// ------------------------------------------------------------------ ferret

hq::apps::ferret::config small_ferret(unsigned threads) {
  hq::apps::ferret::config cfg;
  cfg.num_images = 48;
  cfg.image_wh = 16;
  cfg.db_entries = 256;
  cfg.dims = 32;
  cfg.topk = 8;
  cfg.threads = threads;
  return cfg;
}

TEST(FerretApp, SerialIsDeterministic) {
  auto cfg = small_ferret(1);
  auto r1 = hq::apps::ferret::run_serial(cfg);
  auto r2 = hq::apps::ferret::run_serial(cfg);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_NE(r1.checksum, 0u);
}

TEST_P(AppParam, FerretPthreadsMatchesSerial) {
  auto cfg = small_ferret(GetParam());
  EXPECT_EQ(hq::apps::ferret::run_pthreads(cfg).checksum,
            hq::apps::ferret::run_serial(cfg).checksum);
}

TEST_P(AppParam, FerretTbbMatchesSerial) {
  auto cfg = small_ferret(GetParam());
  EXPECT_EQ(hq::apps::ferret::run_tbb(cfg).checksum,
            hq::apps::ferret::run_serial(cfg).checksum);
}

TEST_P(AppParam, FerretObjectsMatchesSerial) {
  auto cfg = small_ferret(GetParam());
  EXPECT_EQ(hq::apps::ferret::run_objects(cfg).checksum,
            hq::apps::ferret::run_serial(cfg).checksum);
}

TEST_P(AppParam, FerretHyperqueueMatchesSerial) {
  auto cfg = small_ferret(GetParam());
  EXPECT_EQ(hq::apps::ferret::run_hyperqueue(cfg).checksum,
            hq::apps::ferret::run_serial(cfg).checksum);
}

TEST(FerretApp, StageTimesCoverSixStages) {
  auto cfg = small_ferret(1);
  auto t = hq::apps::ferret::stage_times(cfg);
  ASSERT_EQ(t.size(), 6u);
  for (double s : t) EXPECT_GE(s, 0.0);
  // Ranking must dominate (Table 1 shape).
  EXPECT_GT(t[4], t[2]) << "rank must cost more than extract";
}

// ------------------------------------------------------------------- dedup

hq::apps::dedup::config small_dedup(unsigned threads) {
  hq::apps::dedup::config cfg;
  cfg.input_bytes = 1u << 20;
  cfg.coarse_bytes = 64u << 10;
  cfg.fine_avg_log2 = 11;
  cfg.fine_min = 256;
  cfg.fine_max = 8u << 10;
  cfg.threads = threads;
  return cfg;
}

TEST(DedupApp, SerialRoundtrip) {
  auto cfg = small_dedup(1);
  auto input = hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  auto r = hq::apps::dedup::run_serial(cfg, input);
  EXPECT_GT(r.total_chunks, 10u);
  EXPECT_LT(r.unique_chunks, r.total_chunks) << "duplicates must exist";
  EXPECT_LT(r.output.size(), input.size()) << "dedup+compress must shrink";
  auto back = hq::apps::dedup::reassemble(r.output.data(), r.output.size());
  EXPECT_EQ(back, input);
}

TEST_P(AppParam, DedupPthreadsMatchesSerial) {
  auto cfg = small_dedup(GetParam());
  auto input = hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  auto serial = hq::apps::dedup::run_serial(cfg, input);
  auto par = hq::apps::dedup::run_pthreads(cfg, input);
  EXPECT_EQ(par.output, serial.output);
  EXPECT_EQ(par.total_chunks, serial.total_chunks);
}

TEST_P(AppParam, DedupTbbMatchesSerial) {
  auto cfg = small_dedup(GetParam());
  auto input = hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  EXPECT_EQ(hq::apps::dedup::run_tbb(cfg, input).output,
            hq::apps::dedup::run_serial(cfg, input).output);
}

TEST_P(AppParam, DedupObjectsMatchesSerial) {
  auto cfg = small_dedup(GetParam());
  auto input = hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  EXPECT_EQ(hq::apps::dedup::run_objects(cfg, input).output,
            hq::apps::dedup::run_serial(cfg, input).output);
}

TEST_P(AppParam, DedupHyperqueueMatchesSerial) {
  auto cfg = small_dedup(GetParam());
  auto input = hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  auto serial = hq::apps::dedup::run_serial(cfg, input);
  auto par = hq::apps::dedup::run_hyperqueue(cfg, input);
  EXPECT_EQ(par.output, serial.output);
  auto back = hq::apps::dedup::reassemble(par.output.data(), par.output.size());
  EXPECT_EQ(back, input);
}

TEST(DedupApp, CharacterizationCountsAreConsistent) {
  auto cfg = small_dedup(1);
  auto input = hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  auto ch = hq::apps::dedup::stage_times(cfg, input);
  EXPECT_EQ(ch.iterations[0], ch.iterations[1]) << "fragment/refine both per-coarse";
  EXPECT_GT(ch.iterations[2], ch.iterations[0]) << "refine amplifies";
  EXPECT_LT(ch.iterations[3], ch.iterations[2]) << "compression skips duplicates";
  EXPECT_EQ(ch.iterations[4], ch.iterations[2]) << "output sees all chunks";
}

TEST(DedupApp, HigherDupFractionShrinksOutput) {
  auto cfg = small_dedup(1);
  auto low = hq::util::gen_archive(cfg.input_bytes, 0.1, cfg.seed);
  auto high = hq::util::gen_archive(cfg.input_bytes, 0.7, cfg.seed);
  auto r_low = hq::apps::dedup::run_serial(cfg, low);
  auto r_high = hq::apps::dedup::run_serial(cfg, high);
  EXPECT_LT(r_high.output.size(), r_low.output.size());
}

// ------------------------------------------------------------------- bzip2

hq::apps::bzip2::config small_bzip(unsigned threads) {
  hq::apps::bzip2::config cfg;
  cfg.input_bytes = 512u << 10;
  cfg.block_bytes = 32u << 10;
  cfg.threads = threads;
  return cfg;
}

TEST(BzipApp, SerialRoundtrip) {
  auto cfg = small_bzip(1);
  auto input = hq::util::gen_text(cfg.input_bytes, cfg.seed);
  auto r = hq::apps::bzip2::run_serial(cfg, input);
  EXPECT_LT(r.output.size(), input.size());
  auto back = hq::util::mbzip_decompress(r.output.data(), r.output.size());
  EXPECT_EQ(back, input);
}

TEST_P(AppParam, BzipAllVariantsMatchSerial) {
  auto cfg = small_bzip(GetParam());
  auto input = hq::util::gen_text(cfg.input_bytes, cfg.seed);
  auto serial = hq::apps::bzip2::run_serial(cfg, input);
  EXPECT_EQ(hq::apps::bzip2::run_pthreads(cfg, input).output, serial.output);
  EXPECT_EQ(hq::apps::bzip2::run_tbb(cfg, input).output, serial.output);
  EXPECT_EQ(hq::apps::bzip2::run_objects(cfg, input).output, serial.output);
  EXPECT_EQ(hq::apps::bzip2::run_hyperqueue(cfg, input).output, serial.output);
  EXPECT_EQ(hq::apps::bzip2::run_hyperqueue_split(cfg, input).output,
            serial.output);
}

TEST(BzipApp, LoopSplitBoundsQueueGrowth) {
  // Section 5.4: under serial execution (1 worker) the unsplit version
  // buffers every block, so its peak segment demand grows with the input;
  // the split version bounds the batches in flight (split_batch x
  // split_window) and its demand stays constant. Use many small blocks so
  // the difference is visible in whole segments.
  auto cfg = small_bzip(1);
  cfg.block_bytes = 4u << 10;  // 128 blocks
  cfg.split_batch = 4;
  cfg.split_window = 2;
  auto input = hq::util::gen_text(cfg.input_bytes, cfg.seed);
  auto unsplit = hq::apps::bzip2::run_hyperqueue(cfg, input);
  auto split = hq::apps::bzip2::run_hyperqueue_split(cfg, input);
  EXPECT_EQ(unsplit.output, split.output);
  EXPECT_LE(split.seg_high_water, unsplit.seg_high_water)
      << "loop split must not increase peak queue footprint";
  // The paper's point: the split footprint is a function of the knobs, not
  // of the input length — doubling the input must not move the high-water
  // mark, while the unsplit version keeps buffering more.
  auto cfg2 = cfg;
  cfg2.input_bytes *= 2;
  auto input2 = hq::util::gen_text(cfg2.input_bytes, cfg2.seed);
  auto split2 = hq::apps::bzip2::run_hyperqueue_split(cfg2, input2);
  EXPECT_LE(split2.seg_high_water, split.seg_high_water)
      << "split footprint must be independent of the input length";
}

INSTANTIATE_TEST_SUITE_P(Workers, AppParam, ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
