// SLO service benchmark: tail latency vs offered load through the real
// hyperqueue pipeline under per-queue memory budgets and admission control
// (sim/service.hpp). Sweeps offered load x admission policy, runs every
// point at two worker counts, and emits a BENCH_service.json trajectory
// record (override with --json PATH).
//
// The process exits nonzero — which is what CI keys on — unless:
//   * every point's percentile curve (p50/p99/p99.9), admitted/shed split,
//     and transport checksum are identical across worker counts (the
//     determinism gate of the virtual-time model);
//   * at 2x offered load the shed policy keeps admitted-request p99 below
//     the no-admission p99 AND below an absolute SLO bound, with the
//     in-system population capped at the window;
//   * the real transport respects its per-queue byte budget whenever the
//     run completed without a counted escape (pool.budget_overruns == 0).
//
// Knobs: --quick (smoke sizes), --json PATH.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/service.hpp"

namespace {

using hq::pipe::admission_policy;
using hq::sim::service_result;
using hq::sim::service_spec;

struct policy_def {
  admission_policy policy;
  const char* name;
};

constexpr policy_def kPolicies[] = {
    {admission_policy::none, "none"},
    {admission_policy::block, "block"},
    {admission_policy::shed, "shed"},
    {admission_policy::bounded_wait, "bounded_wait"},
};

constexpr double kLoads[] = {0.5, 0.9, 1.5, 2.0};

struct point_record {
  double load = 0;
  std::string policy;
  service_result res;        // from the first worker count
  double seconds_alt = 0;    // wall time at the second worker count
  bool deterministic = false;
  bool budget_ok = false;
};

bool same_curves(const service_result& a, const service_result& b) {
  return a.latency == b.latency && a.admitted == b.admitted &&
         a.shed == b.shed && a.checksum == b.checksum &&
         a.peak_in_system == b.peak_in_system;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[i + 1];
  }

  service_spec base;
  base.requests = quick ? 4000 : 50000;
  base.servers = 4;
  base.service_mean = 1.0e-3;
  base.service_sigma = 0.5;
  base.seed = 42;
  base.window = 256;
  base.max_wait = 10.0e-3;
  // Tight enough that the transport actually throttles at these request
  // counts, roomy enough that a budget-respecting run is the common case.
  base.memory_budget = 64 * 1024;
  const unsigned w_lo = 1;
  const unsigned w_hi = quick ? 2 : 4;

  // With in-system capped at `window`, an admitted request waits behind at
  // most window predecessors on `servers` servers; the factor-4 headroom
  // covers the lognormal service tail.
  const double slo_bound_ns =
      4.0 * (static_cast<double>(base.window) / base.servers + 1.0) *
      base.service_mean * 1e9;

  std::vector<point_record> points;
  bool all_ok = true;

  std::printf("%-6s %-13s %10s %10s %10s %9s %9s %6s %5s\n", "load", "policy",
              "p50_us", "p99_us", "p999_us", "admitted", "shed", "det",
              "inmax");
  for (double load : kLoads) {
    for (const policy_def& pd : kPolicies) {
      service_spec spec = base;
      spec.offered_load = load;
      spec.policy = pd.policy;

      spec.workers = w_lo;
      service_result lo = hq::sim::run_service(spec);
      spec.workers = w_hi;
      service_result hi = hq::sim::run_service(spec);

      point_record pt;
      pt.load = load;
      pt.policy = pd.name;
      pt.deterministic = same_curves(lo, hi);
      // Only the escape-free runs promise a hard cap; a counted overrun
      // (single-worker schedules that cannot interleave the consumer)
      // reports itself instead of deadlocking. exec.pool sums both edge
      // queues (budget_bytes = 2x the per-queue budget) and reports the
      // exact structural slack for the run's shard high-water mark.
      auto capped = [&](const hq::seg_pool_stats& pool) {
        return spec.memory_budget == 0 || pool.budget_overruns != 0 ||
               pool.peak_bytes <= pool.budget_bytes + pool.exempt_peak_bytes;
      };
      pt.budget_ok = capped(lo.exec.pool) && capped(hi.exec.pool);
      pt.seconds_alt = hi.exec.seconds;
      pt.res = lo;
      all_ok = all_ok && pt.deterministic && pt.budget_ok;

      std::printf("%-6.2f %-13s %10.1f %10.1f %10.1f %9llu %9llu %6s %5zu\n",
                  load, pd.name, pt.res.latency.p50() / 1e3,
                  pt.res.latency.p99() / 1e3, pt.res.latency.p999() / 1e3,
                  static_cast<unsigned long long>(pt.res.admitted),
                  static_cast<unsigned long long>(pt.res.shed),
                  pt.deterministic ? "ok" : "FAIL", pt.res.peak_in_system);
      points.push_back(std::move(pt));
    }
  }

  // The SLO claim: at 2x offered load, shedding keeps the admitted tail
  // bounded while the unadmitted policy's tail diverges.
  const point_record* none_2x = nullptr;
  const point_record* shed_2x = nullptr;
  for (const auto& pt : points) {
    if (pt.load == 2.0 && pt.policy == "none") none_2x = &pt;
    if (pt.load == 2.0 && pt.policy == "shed") shed_2x = &pt;
  }
  bool slo_ok = none_2x != nullptr && shed_2x != nullptr;
  if (slo_ok) {
    const double shed_p99 = static_cast<double>(shed_2x->res.latency.p99());
    slo_ok = shed_p99 <= slo_bound_ns &&
             shed_p99 < static_cast<double>(none_2x->res.latency.p99()) &&
             shed_2x->res.peak_in_system <= base.window;
    std::printf(
        "\nSLO at 2.0x load: shed p99 %.1f us (bound %.1f us), none p99 "
        "%.1f us, shed in-system max %zu (window %zu): %s\n",
        shed_p99 / 1e3, slo_bound_ns / 1e3,
        none_2x->res.latency.p99() / 1e3, shed_2x->res.peak_in_system,
        base.window, slo_ok ? "ok" : "FAIL");
  }
  all_ok = all_ok && slo_ok;

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"service\",\n  \"quick\": %s,\n",
                 quick ? "true" : "false");
    std::fprintf(f,
                 "  \"requests\": %zu,\n  \"servers\": %u,\n"
                 "  \"service_mean_s\": %g,\n  \"window\": %zu,\n"
                 "  \"memory_budget\": %llu,\n  \"workers\": [%u, %u],\n",
                 base.requests, base.servers, base.service_mean, base.window,
                 static_cast<unsigned long long>(base.memory_budget), w_lo,
                 w_hi);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const point_record& pt = points[i];
      const auto& pool = pt.res.exec.pool;
      std::fprintf(
          f,
          "    {\"load\": %.2f, \"policy\": \"%s\", \"p50_ns\": %llu, "
          "\"p99_ns\": %llu, \"p999_ns\": %llu, \"admitted\": %llu, "
          "\"shed\": %llu, \"peak_in_system\": %zu, "
          "\"deterministic\": %s, \"budget_ok\": %s, "
          "\"pool_peak_bytes\": %llu, \"pool_budget_bytes\": %llu, "
          "\"throttle_waits\": %llu, \"budget_overruns\": %llu, "
          "\"seconds\": %.6f, \"seconds_alt\": %.6f}%s\n",
          pt.load, pt.policy.c_str(),
          static_cast<unsigned long long>(pt.res.latency.p50()),
          static_cast<unsigned long long>(pt.res.latency.p99()),
          static_cast<unsigned long long>(pt.res.latency.p999()),
          static_cast<unsigned long long>(pt.res.admitted),
          static_cast<unsigned long long>(pt.res.shed), pt.res.peak_in_system,
          pt.deterministic ? "true" : "false",
          pt.budget_ok ? "true" : "false",
          static_cast<unsigned long long>(pool.peak_bytes),
          static_cast<unsigned long long>(pool.budget_bytes),
          static_cast<unsigned long long>(pool.throttle_waits),
          static_cast<unsigned long long>(pool.budget_overruns),
          pt.res.exec.seconds, pt.seconds_alt,
          i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"all_ok\": %s\n}\n", all_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s (%zu points), all_ok=%s\n", json_path.c_str(),
                points.size(), all_ok ? "true" : "false");
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", json_path.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
