// Tests for the discrete-event engine and the four scheduling models:
// sanity (1 core ≈ serial), monotonic scaling, serial-stage throughput
// bounds, and the paper-shape properties (objects plateau, nested-pipeline
// gap, FPU-pairing dip).
#include <gtest/gtest.h>

#include "sim/models.hpp"

namespace {

using namespace hq::sim;

overheads no_overheads() {
  overheads ov;
  ov.task_spawn = ov.hq_queue_op = ov.pth_queue_op = ov.tbb_token = 0;
  return ov;
}

// ------------------------------------------------------------------ engine

TEST(DesEngine, SingleCoreSerializes) {
  engine eng({1, 0, 0});
  int done = 0;
  eng.submit(1.0, [&] { ++done; });
  eng.submit(2.0, [&] { ++done; });
  EXPECT_DOUBLE_EQ(eng.run(), 3.0);
  EXPECT_EQ(done, 2);
}

TEST(DesEngine, TwoCoresOverlap) {
  engine eng({2, 0, 0});
  eng.submit(1.0, [] {});
  eng.submit(2.0, [] {});
  EXPECT_DOUBLE_EQ(eng.run(), 2.0);
}

TEST(DesEngine, CompletionCanSubmitMore) {
  engine eng({1, 0, 0});
  double second_done = 0;
  eng.submit(1.0, [&] {
    eng.submit(0.5, [&] { second_done = eng.now(); });
  });
  EXPECT_DOUBLE_EQ(eng.run(), 1.5);
  EXPECT_DOUBLE_EQ(second_done, 1.5);
}

TEST(DesEngine, FpuPenaltyStretchesAtHighOccupancy) {
  engine base({4, 2, 1.0});
  // With 2 busy cores: no penalty.
  base.submit(1.0, [] {});
  base.submit(1.0, [] {});
  EXPECT_DOUBLE_EQ(base.run(), 1.0);
  engine crowded({4, 2, 1.0});
  for (int i = 0; i < 4; ++i) crowded.submit(1.0, [] {});
  EXPECT_GT(crowded.run(), 1.0) << "4 busy cores on 2 FPU pairs must slow down";
}

TEST(DesEngine, TimerEventsFire) {
  engine eng({1, 0, 0});
  double fired = -1;
  eng.submit_after(2.5, [&] { fired = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(fired, 2.5);
}

// ------------------------------------------------------------- flat models

flat_spec ferret_like() {
  // input 4.5%, seg 3.6%, extract 0.35%, vector 16.2%, rank 75.3%, out 0.1%
  flat_spec spec;
  spec.stages = {{true, 4.5e-4}, {false, 3.6e-4}, {false, 0.35e-4},
                 {false, 16.2e-4}, {false, 75.3e-4}, {true, 0.1e-4}};
  spec.items = 400;
  spec.jitter = 0.1;
  spec.seed = 5;
  return spec;
}

class FlatModels : public ::testing::Test {
 protected:
  flat_spec spec = ferret_like();
  overheads ov = no_overheads();
};

TEST_F(FlatModels, OneCoreMatchesSerial) {
  const double serial = serial_time_flat(spec);
  const machine m{1, 0, 0};
  EXPECT_NEAR(sim_flat_hyperqueue(spec, m, ov), serial, serial * 0.01);
  EXPECT_NEAR(sim_flat_objects(spec, m, ov, false), serial, serial * 0.01);
  EXPECT_NEAR(sim_flat_tbb(spec, m, ov, 8), serial, serial * 0.01);
  EXPECT_NEAR(sim_flat_pthreads(spec, m, ov, 1), serial, serial * 0.01);
}

TEST_F(FlatModels, SpeedupMonotonicInCores) {
  const double serial = serial_time_flat(spec);
  double prev = 0;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    const double sp = serial / sim_flat_hyperqueue(spec, {p, 0, 0}, ov);
    EXPECT_GE(sp, prev * 0.98) << "speedup must not collapse as cores grow";
    prev = sp;
  }
  EXPECT_GT(prev, 8.0) << "16 cores must give substantial speedup";
}

TEST_F(FlatModels, SerialStageBoundsThroughput) {
  // With a dominant serial stage, speedup caps near total/serial_stage share.
  flat_spec s2 = spec;
  s2.stages[0].cost = 20e-4;  // serial input ~20% of work
  const double serial = serial_time_flat(s2);
  const double t32 = sim_flat_hyperqueue(s2, {32, 0, 0}, ov);
  const double cap = serial / (20e-4 * static_cast<double>(s2.items));
  EXPECT_LT(serial / t32, cap * 1.05);
}

TEST_F(FlatModels, ObjectsInputNonOverlapPlateaus) {
  // The paper's Figure 8 "objects" curve: not overlapping the 4.5% input
  // stage costs roughly a 1/(s + (1-s)/P) Amdahl plateau.
  const double serial = serial_time_flat(spec);
  const machine m{32, 0, 0};
  const double sp_objects = serial / sim_flat_objects(spec, m, ov, false);
  const double sp_hq = serial / sim_flat_hyperqueue(spec, m, ov);
  EXPECT_LT(sp_objects, sp_hq * 0.65)
      << "objects must trail hyperqueue distinctly at 32 cores";
  EXPECT_GT(sp_hq, 18.0);
  EXPECT_LT(sp_objects, 16.0);
}

TEST_F(FlatModels, FpuPairingCausesDip) {
  // Figure 8's slope change past 16 cores on the 16-module Bulldozer.
  const double serial = serial_time_flat(spec);
  const machine flat24{24, 16, 0.4};
  const machine flat16{16, 16, 0.4};
  const double sp16 = serial / sim_flat_hyperqueue(spec, flat16, ov);
  const double sp24 = serial / sim_flat_hyperqueue(spec, flat24, ov);
  const double slope = (sp24 - sp16) / 8.0;
  EXPECT_LT(slope, (sp16 / 16.0) * 0.9)
      << "per-core gains must flatten once FPU pairs are shared";
}

TEST_F(FlatModels, TokenStarvationHurtsTbb) {
  // Too few tokens bound concurrency.
  const double serial = serial_time_flat(spec);
  const machine m{16, 0, 0};
  const double sp2 = serial / sim_flat_tbb(spec, m, ov, 2);
  const double sp64 = serial / sim_flat_tbb(spec, m, ov, 64);
  EXPECT_LT(sp2, 3.0);
  EXPECT_GT(sp64, sp2 * 3);
}

TEST_F(FlatModels, PthreadsNeedsThreadTuning) {
  // One thread per parallel stage cannot exploit 16 cores on a
  // rank-dominated pipeline; many threads per stage can (the core-count
  // tuning the paper criticizes).
  const double serial = serial_time_flat(spec);
  const machine m{16, 0, 0};
  const double sp1 = serial / sim_flat_pthreads(spec, m, ov, 1);
  const double sp16 = serial / sim_flat_pthreads(spec, m, ov, 16);
  EXPECT_LT(sp1, 3.0);
  EXPECT_GT(sp16, sp1 * 3);
}

// ----------------------------------------------------------- nested models

nested_spec dedup_like() {
  // Table 2 shape: compress-dominated, ~8% serial output, ~1100 fine/coarse
  // scaled down for test speed.
  nested_spec spec;
  spec.coarse = 48;
  spec.fine_per_coarse = 40;
  spec.fragment_cost = 80e-6;
  spec.refine_cost = 160e-6;
  spec.dedup_cost = 2.7e-6;
  spec.compress_cost = 56e-6;
  spec.unique_fraction = 0.45;
  spec.output_cost = 2.8e-6;
  spec.seed = 77;
  return spec;
}

class NestedModels : public ::testing::Test {
 protected:
  nested_spec spec = dedup_like();
  overheads ov = no_overheads();
};

TEST_F(NestedModels, OneCoreMatchesSerial) {
  const double serial = serial_time_nested(spec);
  const machine m{1, 0, 0};
  EXPECT_NEAR(sim_nested_hyperqueue(spec, m, ov), serial, serial * 0.01);
  EXPECT_NEAR(sim_nested_objects(spec, m, ov), serial, serial * 0.01);
  EXPECT_NEAR(sim_nested_tbb(spec, m, ov, 8), serial, serial * 0.01);
  EXPECT_NEAR(sim_nested_pthreads(spec, m, ov, 1), serial, serial * 0.01);
}

TEST_F(NestedModels, HyperqueueStreamsPastListGathering) {
  // Figure 11's midrange: the hyperqueue's fine-grained streaming output
  // beats the gather-whole-list structure of the nested-pipeline versions.
  const double serial = serial_time_nested(spec);
  const machine m{8, 0, 0};
  const double sp_hq = serial / sim_nested_hyperqueue(spec, m, ov);
  const double sp_tbb = serial / sim_nested_tbb(spec, m, ov, 4 * 8);
  EXPECT_GT(sp_hq, sp_tbb) << "hyperqueue must beat the TBB nested pipeline";
}

TEST_F(NestedModels, SpeedupMonotonicHyperqueue) {
  const double serial = serial_time_nested(spec);
  double prev = 0;
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const double sp = serial / sim_nested_hyperqueue(spec, {p, 0, 0}, ov);
    EXPECT_GE(sp, prev * 0.98);
    prev = sp;
  }
}

TEST_F(NestedModels, SerialOutputBoundsAllModels) {
  // Table 2: output ≈ 8% serial caps dedup speedup around 12-13.
  nested_spec s2 = spec;
  const double serial = serial_time_nested(s2);
  const double total_output =
      serial * 0.08 / (s2.output_cost > 0 ? 1.0 : 1.0);  // approx via spec
  (void)total_output;
  const machine m{32, 0, 0};
  const double sp = serial / sim_nested_hyperqueue(s2, m, ov);
  EXPECT_LT(sp, 20.0) << "serial output stage must bound scaling";
}

}  // namespace
