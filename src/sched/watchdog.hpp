// Stall watchdog: turns a hung run into a diagnostic, not a CI timeout.
//
// A monitor thread snapshots the scheduler's per-worker stats counters once
// per interval. Progress = tasks spawned + executed across all workers; an
// interval where that sum does not move means every worker is either parked
// or spinning in a wait that will never be satisfied. On the first such
// interval the watchdog records a hq::stall_error (carrying the per-worker
// dump: cpu/node/pinned, counter deltas, deque depths, injector depth,
// parked count) into the scheduler's failure slot — flipping the
// cancellation epoch, which unwinds every cancellable wait and lets run()
// rethrow the diagnostic on the calling thread. If cancellation itself makes
// no progress for `grace_intervals` further intervals (a wait that does not
// poll, i.e. a real runtime bug), the dump goes to stderr and the process
// aborts: a report either way, never a hang.
//
// The scheduler arms this per run when HQ_WATCHDOG_MS (or set_watchdog) is
// nonzero; the monitor thread lives only for the duration of that run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace hq {

class scheduler;

/// The failure a stalled run surfaces from scheduler::run(). what() is the
/// full per-worker diagnostic dump.
class stall_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class watchdog {
 public:
  struct options {
    std::chrono::milliseconds interval{1000};
    /// No-progress intervals tolerated *after* cancellation before the
    /// watchdog gives up on cooperative unwind and aborts.
    unsigned grace_intervals = 8;
    /// Disabled only in the watchdog's own tests (an abort is not
    /// observable from gtest).
    bool hard_abort = true;
  };

  watchdog(scheduler& s, options o);
  ~watchdog();

  watchdog(const watchdog&) = delete;
  watchdog& operator=(const watchdog&) = delete;

  /// True once a stall was detected (and the run cancelled).
  [[nodiscard]] bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

 private:
  void monitor();
  [[nodiscard]] std::uint64_t progress() const;
  [[nodiscard]] std::string report(std::uint64_t last_progress) const;

  scheduler& sched_;
  options opt_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace hq
