#include "sim/service.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace hq::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t to_ns(double seconds) noexcept {
  return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

std::vector<request> generate_requests(const service_spec& spec) {
  util::xoshiro256 rng(spec.seed);
  const double sigma = spec.service_sigma;
  const double mu = std::log(spec.service_mean) - 0.5 * sigma * sigma;
  const double rate = spec.offered_load * spec.servers / spec.service_mean;
  std::vector<request> rs(spec.requests);
  double t = 0;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    // Exponential interarrival; uniform() < 1 so log1p stays finite.
    t += -std::log1p(-rng.uniform()) / rate;
    // Box-Muller lognormal; 1-u1 in (0,1] keeps the log finite.
    const double u1 = rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log1p(-u1)) * std::cos(kTwoPi * u2);
    rs[i].id = i;
    rs[i].arrival = t;
    rs[i].service = std::exp(mu + sigma * z);
  }
  return rs;
}

service_model::service_model(const service_spec& spec) : spec_(spec) {
  const unsigned c = spec.servers ? spec.servers : 1;
  for (unsigned i = 0; i < c; ++i) free_.push(0.0);
}

void service_model::drain(double now) {
  while (!in_system_.empty() && in_system_.top() <= now) in_system_.pop();
}

bool service_model::offer(const request& r) {
  using pipe::admission_policy;
  // block: arrivals queue behind the gate, so each enters no earlier than
  // its predecessor's admission instant.
  double enter =
      spec_.policy == admission_policy::block ? std::max(r.arrival, gate_)
                                              : r.arrival;
  drain(enter);
  switch (spec_.policy) {
    case admission_policy::none:
      break;
    case admission_policy::block:
      // Stall the stream until a window slot opens: admission happens at
      // the departure that frees it.
      while (in_system_.size() >= spec_.window) {
        enter = std::max(enter, in_system_.top());
        in_system_.pop();
      }
      gate_ = enter;
      break;
    case admission_policy::shed:
      if (in_system_.size() >= spec_.window) {
        ++shed_;
        return false;
      }
      break;
    case admission_policy::bounded_wait: {
      const double start = std::max(enter, free_.top());
      if (start - r.arrival > spec_.max_wait) {
        ++shed_;
        return false;
      }
      break;
    }
  }
  const double start = std::max(enter, free_.top());
  free_.pop();
  const double depart = start + r.service;
  free_.push(depart);
  in_system_.push(depart);
  peak_in_system_ = std::max(peak_in_system_, in_system_.size());
  makespan_ = std::max(makespan_, depart);
  // Sojourn from the *original* arrival: under block the gate wait counts,
  // which is exactly why its tail diverges under overload while shed's
  // stays flat.
  hist_.record(to_ns(depart - r.arrival));
  ++admitted_;
  return true;
}

service_result run_service(const service_spec& spec) {
  const std::vector<request> reqs = generate_requests(spec);
  service_model model(spec);
  std::uint64_t checksum = 0;
  std::uint64_t order = 0;

  pipe::graph g;
  auto src = g.source<request>("arrivals", [&reqs](pipe::emit<request> out) {
    for (const request& r : reqs) out(request{r});
  });
  // A real parallel hop between source and sink so records actually cross
  // two queues (segment churn on both edges) and the in-order sink has
  // reordering to undo at worker counts > 1.
  auto svc = g.stage<request, request>(
      "service", pipe::stage_kind::parallel,
      [](request&& r, pipe::emit<request> out) {
        r.id = (r.id & 0xffffffffull) | (mix64(r.id & 0xffffffffull) << 32);
        out(std::move(r));
      });
  auto snk = g.sink<request>(
      "retire", pipe::stage_kind::serial_in_order,
      [&model, &checksum, &order](request&& r) {
        checksum ^= mix64(r.id + 0x9e3779b97f4a7c15ull * ++order);
        r.id &= 0xffffffffull;
        model.offer(r);
      });
  pipe::edge_opts eo;
  eo.memory_budget = spec.memory_budget;
  g.connect(src, svc, eo);
  g.connect(svc, snk, eo);

  pipe::exec_options opt;
  opt.workers = spec.workers;

  service_result res;
  res.exec = pipe::execute(g, spec.transport, opt);
  res.latency = model.latency();
  res.admitted = model.admitted();
  res.shed = model.shed();
  res.makespan = model.makespan();
  res.peak_in_system = model.peak_in_system();
  res.checksum = checksum;
  return res;
}

}  // namespace hq::sim
