// Hyperqueue control block: the non-templated runtime state of one
// hyperqueue (paper Sections 3 and 4).
//
// Responsibilities:
//  * per-task, per-queue view sets ("attachments"): user / children / right /
//    queue views plus spawn-tree links (Section 4);
//  * view transfer at spawn, early head reduction on new segments
//    (Section 4.1), and the completion-time reduction cascade (Section 4.2);
//  * the push / pop / empty operations with the paper's deterministic
//    visibility contract: a consumer observes exactly the serial-elision
//    value sequence, and empty() returns true only when no task earlier in
//    program order can still produce (realized with live-producer subtree
//    counters — the attachment-granularity equivalent of the per-segment
//    producing flag);
//  * scheduling rules 1–4 (Section 2.3): pop-privileged tasks are serialized
//    FIFO per parent via task dependences; push tasks are never delayed.
//
// Locking: `mu` guards the attachment/view structure (spawn, completion,
// early head reduction). Element transfers on segments are lock-free SPSC
// fast paths, and the definitive-empty check is gated lock-free: a starving
// consumer takes `mu` for the exact older-pushers walk at most once per
// push-privileged completion event (`pusher_completions_` epoch), and not at
// all once the queue-wide live-pusher count (`live_pushers_`, an upper bound
// on any consumer's older_pushers) has reached zero.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "conc/spinlock.hpp"
#include "core/segment.hpp"
#include "core/view.hpp"
#include "sched/task.hpp"

namespace hq::detail {

inline constexpr std::uint8_t kPrivPush = 1;
inline constexpr std::uint8_t kPrivPop = 2;

struct queue_cb;

/// Segment-pool counters (tests / benches): with a well-behaved pipeline the
/// pool reaches steady state — `allocated` plateaus at `high_water` and every
/// further segment demand is served by `recycled`.
struct seg_pool_stats {
  std::uint64_t allocated = 0;   ///< fresh heap allocations, ever
  std::uint64_t recycled = 0;    ///< allocation requests served by the pool
  std::uint64_t high_water = 0;  ///< peak segments simultaneously in use
  std::uint64_t live = 0;        ///< currently allocated (in use + pooled)

  /// Aggregate over a pipeline's queues (field-wise sum; high_water becomes
  /// the sum of per-queue peaks, an upper bound on the combined peak).
  friend seg_pool_stats operator+(const seg_pool_stats& a,
                                  const seg_pool_stats& b) {
    return {a.allocated + b.allocated, a.recycled + b.recycled,
            a.high_water + b.high_water, a.live + b.live};
  }
};

/// Data-path slow-event snapshot (tests / benches): the element fast path
/// increments none of these. In a steady-state producer/consumer pair the
/// reload counts grow at most once per segment-capacity of elements and the
/// mu counts stay bounded by the number of attachments.
struct data_path_stats {
  std::uint64_t head_reloads = 0;   ///< producer re-read the consumer's head
  std::uint64_t tail_reloads = 0;   ///< consumer re-read the producer's tail
  std::uint64_t mu_data = 0;        ///< wait_data took mu (older-pushers walk)
  std::uint64_t mu_view = 0;        ///< push side took mu (new-view reduction)
  std::uint64_t seg_cache_hits = 0; ///< segment allocs served lock-free
};

/// Per-(task, queue) bookkeeping. Owned by the queue control block; lives
/// from the task's spawn until its completion (the owner attachment lives
/// until queue destruction). All fields are guarded by queue_cb::mu except
/// the view fast paths noted below.
struct qattach {
  queue_cb* q = nullptr;
  task_frame* frame = nullptr;  // null once completed
  qattach* parent = nullptr;    // attachment of the spawning task
  std::uint8_t priv = 0;

  /// Recycling bookkeeping: attachments come from the scheduler's per-worker
  /// attach pool (sched/obj_pool.hpp). Null pool_sched means plain heap
  /// (allocation happened outside any worker — not expected, but safe).
  scheduler* pool_sched = nullptr;
  unsigned pool_owner = ~0u;

  // Live-sibling chain under `parent`, youngest at parent->last_child.
  qattach* left = nullptr;
  qattach* right_sib = nullptr;
  qattach* last_child = nullptr;

  /// Pop-privileged FIFO per parent (scheduling rule 3): the most recent
  /// live pop-privileged child.
  qattach* last_pop_child = nullptr;

  /// Live push-privileged spawned tasks in this attachment's subtree
  /// (including this task itself if push-privileged and spawned). Zero is
  /// absorbing: children complete before parents.
  long subtree_pushers = 0;

  /// Live child attachments (for selective sync, Section 5.5).
  long live_children = 0;

  /// Live pop-privileged children. Written under queue_cb::mu; additionally
  /// read lock-free by the owning task on the consumer fast path (see
  /// ensure_queue_view): the release store in on_task_complete pairs with an
  /// acquire load, so observing zero implies the completed child's queue
  /// view hand-back is visible.
  std::atomic<long> live_pop_children{0};

  /// Live push-privileged children (O(1) sync_children(kPrivPush), Section
  /// 5.5). Written under queue_cb::mu, mirroring live_pop_children.
  std::atomic<long> live_push_children{0};

  // ---- consumer-local fast-path state (owning task only, no lock) --------

  static constexpr std::uint64_t kNeverWalked = ~std::uint64_t{0};

  /// Definitive-empty memo: once no producer older in program order is live,
  /// none can appear except by this task spawning one itself (any *other*
  /// spawner of a push child is itself push-privileged, hence was counted
  /// while live). attach_spawn therefore resets the memo when this
  /// attachment spawns a push-privileged child; between such spawns the
  /// decision is monotonic and wait_data never walks again.
  bool no_older_pushers = false;

  /// queue_cb::pusher_completions_ at the last exact walk that found live
  /// older pushers (kNeverWalked = never walked): the walk result can only
  /// change when a pusher completes, so wait_data re-walks only after the
  /// epoch moves (or after the memo reset described above).
  std::uint64_t walk_epoch = kNeverWalked;

  /// Ready-segment hint from the last successful wait_data. Lets the
  /// Figure-2 `while (!q.empty()) q.pop();` idiom run wait_data once per
  /// element: pop()/read_slice() reuse the segment found by empty() when it
  /// is still the queue-view head with readable data.
  segment* ready_seg = nullptr;

  // Views. `user` and `queue` are accessed lock-free by the owning task
  // between its start and completion; transfers at spawn/steal/completion
  // points happen under queue_cb::mu. `children` and `right_view` are only
  // ever touched under queue_cb::mu (they are written by other tasks).
  view user;
  view children;
  view right_view;
  view queue;
};

/// Control block shared by a hyperqueue<T> and all wrappers referencing it.
struct queue_cb {
  queue_cb(element_ops o, std::uint64_t segment_capacity);
  ~queue_cb();

  queue_cb(const queue_cb&) = delete;
  queue_cb& operator=(const queue_cb&) = delete;

  // ---- lifetime ----------------------------------------------------------
  void add_ref() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }
  // Out of line: an inlined `delete this` trips GCC's -Wuse-after-free
  // interprocedural analysis at wrapper destruction sites.
  void release() noexcept;

  /// Create the owner attachment on the constructing task's frame and build
  /// the initial segment + (queue, user) view pair.
  void attach_owner(task_frame* owner_frame);

  /// Tear down from the owner task: waits (helping) until all spawned tasks
  /// on this queue completed, then destroys remaining elements and segments.
  void detach_owner();

  // ---- spawn / completion protocol ---------------------------------------

  /// Called during spawn-argument resolution on the spawning task's thread:
  /// creates the child attachment, transfers views, registers scheduling
  /// dependences (pop FIFO), and installs the completion hook.
  qattach* attach_spawn(task_frame* child, std::uint8_t priv);

  /// Completion-time protocol (runs as a frame completion hook).
  void on_task_complete(qattach* a);

  // ---- producer / consumer operations (element_ops-typed payloads) -------

  /// Append one element (move-constructs from src; src is left moved-from).
  void push(void* src);

  /// Paper semantics: false when a value is available to this task; true
  /// only when no older-in-program-order producer can still push. Blocks
  /// (helping the scheduler) until one of the two is certain.
  bool empty();

  /// Move the next value into dst. Aborts if the queue is definitively
  /// empty — popping from an empty hyperqueue is a program error.
  void pop(void* dst);

  /// Batched pop: relocate up to `max` elements into the contiguous
  /// uninitialized array at `dst`. Returns the number transferred; 0 only
  /// when the queue is definitively empty. Blocks like pop.
  std::uint64_t pop_n(void* dst, std::uint64_t max);

  /// Contiguous write window (Section 5.2). Returns the slot pointer and
  /// sets *count to the granted length (>=1; may be less than wanted).
  /// Elements must be move-constructed into the slots, then committed.
  void* write_slice(std::uint64_t want, std::uint64_t* count);
  void commit_write(std::uint64_t produced);

  /// Contiguous read window of up to `want` ready elements. Sets *count to
  /// the granted length; returns null with *count==0 when the queue is
  /// definitively empty. Blocks until data or definitive emptiness.
  void* read_slice(std::uint64_t want, std::uint64_t* count);
  void commit_read(std::uint64_t consumed);

  // ---- selective sync (Section 5.5) --------------------------------------
  void sync_children(std::uint8_t priv_filter);

  // ---- introspection (tests / benches) ------------------------------------
  [[nodiscard]] std::uint64_t segments_allocated() const {
    return seg_live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] seg_pool_stats pool_stats() const {
    seg_pool_stats st;
    st.allocated = seg_fresh.load(std::memory_order_relaxed);
    st.recycled = seg_recycled.load(std::memory_order_relaxed);
    st.high_water = seg_high_water.load(std::memory_order_relaxed);
    st.live = seg_live.load(std::memory_order_relaxed);
    return st;
  }
  [[nodiscard]] data_path_stats data_stats() const {
    data_path_stats st;
    st.head_reloads = dp_.head_reloads.load(std::memory_order_relaxed);
    st.tail_reloads = dp_.tail_reloads.load(std::memory_order_relaxed);
    st.mu_data = dp_.mu_data.load(std::memory_order_relaxed);
    st.mu_view = dp_.mu_view.load(std::memory_order_relaxed);
    st.seg_cache_hits = dp_.seg_cache_hits.load(std::memory_order_relaxed);
    return st;
  }
  [[nodiscard]] qattach* owner_attachment() { return owner; }
  /// Attachment of the calling task (current frame), requiring `need` privs.
  qattach* my_attachment(std::uint8_t need);

  element_ops ops;
  const std::uint64_t seg_capacity;

 private:
  friend struct qattach;

  segment* alloc_segment();
  void recycle_segment(segment* s);

  /// Early head reduction (Section 4.1): merge the head-only view `tmp`
  /// with the view immediately preceding `a`'s user view in program order.
  /// Caller holds mu.
  void merge_left_early(qattach* a, view tmp);

  /// Live push-privileged tasks earlier in program order than consumer `a`.
  /// Caller holds mu.
  long older_pushers(const qattach* a) const;

  /// Make sure `a` holds the queue view, claiming it from ancestors (it is
  /// in flight back to an ancestor after an older consumer completed).
  void ensure_queue_view(qattach* a);

  /// Advance the queue view over drained segments; returns the head segment
  /// if it has readable data, null otherwise.
  segment* poll_chain(qattach* a);

  /// Block (helping) until data is readable (returns segment) or emptiness
  /// is definitive (returns null). Caches the result in a->ready_seg.
  segment* wait_data(qattach* a);

  /// Consumer entry point shared by empty/pop/read_slice: the lock-free
  /// ready-segment fast path, falling back to wait_data. Force-inlined into
  /// the per-element entry points — a call here costs as much as the hint
  /// saves.
  [[gnu::always_inline]] inline segment* consumer_ready(qattach* a) {
    segment* s = a->ready_seg;
    // The hint is only a short-circuit: it must still be the queue-view head
    // (acquire on live_pop_children pairs with the completion hand-back) and
    // still hold readable data. Anything else re-runs the full path.
    if (s != nullptr && a->live_pop_children.load(std::memory_order_acquire) == 0 &&
        a->queue.present && s == a->queue.head && s->readable()) [[likely]] {
      return s;
    }
    return wait_data(a);
  }

  std::atomic<long> refs{1};
  std::mutex mu;
  qattach* owner = nullptr;
  std::uint64_t next_nl_id = 1;

  /// Live spawned push-privileged attachments: an upper bound on any
  /// consumer's older_pushers. Incremented under mu at spawn; decremented
  /// with release after the completion cascade, so a consumer that observes
  /// zero with acquire also observes every segment link the cascades made.
  std::atomic<long> live_pushers_{0};

  /// Monotonic count of push-privileged completions. older_pushers(a) can
  /// only drop to zero when this advances, so consumers re-walk only then.
  std::atomic<std::uint64_t> pusher_completions_{0};

  spinlock free_mu;
  segment* free_list = nullptr;  // chained through segment::next
  /// One-slot lock-free front of the segment pool: the steady-state ring
  /// recycle (consumer drains -> recycles, producer allocates next wrap)
  /// exchanges through this cell and never touches free_mu.
  std::atomic<segment*> seg_cache_{nullptr};
  std::atomic<std::uint64_t> seg_live{0};

  // Pool statistics (relaxed: monitoring only, never load-bearing).
  std::atomic<std::uint64_t> seg_fresh{0};
  std::atomic<std::uint64_t> seg_recycled{0};
  std::atomic<std::uint64_t> seg_in_use{0};
  std::atomic<std::uint64_t> seg_high_water{0};

  /// Slow-event counters (see data_path_stats); segments hold a pointer.
  mutable data_path_counters dp_;
};

}  // namespace hq::detail
