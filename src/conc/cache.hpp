// Cache-line geometry and padding helpers used throughout the runtime.
//
// Shared mutable runtime state (deque ends, queue indices, worker flags) is
// padded to avoid false sharing; see C++ Core Guidelines CP.3 (minimize
// explicit sharing) and the SPSC-queue literature cited by the paper
// (Lamport '83, FastForward PPoPP'08).
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace hq {

/// Size used to keep unrelated atomics on distinct cache lines. We use a
/// fixed 64 bytes rather than std::hardware_destructive_interference_size to
/// keep the ABI independent of compiler flags (GCC warns when the constant
/// leaks into public types).
inline constexpr std::size_t kCacheLine = 64;

/// Wraps a value in storage padded up to a full cache line so that arrays of
/// `padded<T>` never share lines between elements.
template <typename T>
struct alignas(kCacheLine) padded {
  T value{};

  padded() = default;
  template <typename... Args>
  explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }

 private:
  // Guarantee the footprint is a whole number of lines even when T is small.
  char pad_[(sizeof(T) % kCacheLine) == 0 ? kCacheLine
                                          : kCacheLine - (sizeof(T) % kCacheLine)] = {};
};

}  // namespace hq
