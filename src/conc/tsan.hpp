// ThreadSanitizer detection.
//
// TSan does not model std::atomic_thread_fence, so fence-based algorithms
// (Chase–Lev deque, SPSC ring fast paths) report false races under
// -fsanitize=thread even when correct. Where a fence carries the ordering,
// code guarded by HQ_TSAN strengthens the per-variable memory orders
// instead — same semantics, visible to the race detector, and compiled out
// entirely in normal builds.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define HQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HQ_TSAN 1
#endif
#endif

#ifndef HQ_TSAN
#define HQ_TSAN 0
#endif
