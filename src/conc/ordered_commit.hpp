// In-order commit (reorder) buffer.
//
// Serial in-order pipeline stages in the pthreads and TBB-like baselines
// receive items tagged with a sequence number from parallel upstream stages
// and must emit them in sequence order. This buffer parks early arrivals and
// releases runs of consecutive items. (The hyperqueue makes this machinery
// unnecessary — order is a property of the queue itself — which is exactly
// the programmability point of the paper.)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace hq {

/// MPSC in-order release buffer keyed by a dense uint64 sequence.
template <typename T>
class ordered_commit {
 public:
  /// Insert item with its sequence number (thread-safe).
  void put(std::uint64_t seq, T value) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.emplace(seq, std::move(value));
    }
    ready_.notify_one();
  }

  /// Consumer: blocks until the next item in sequence is available, or the
  /// buffer is finished and drained (nullopt).
  std::optional<T> take_next() {
    std::unique_lock<std::mutex> lk(mu_);
    ready_.wait(lk, [&] {
      return (!pending_.empty() && pending_.begin()->first == next_) || finished_;
    });
    auto it = pending_.find(next_);
    if (it == pending_.end()) return std::nullopt;  // finished & drained
    T out = std::move(it->second);
    pending_.erase(it);
    ++next_;
    return out;
  }

  /// Non-blocking: drain any run of consecutive items that is ready now.
  std::vector<T> drain_ready() {
    std::vector<T> out;
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = pending_.find(next_); it != pending_.end();
         it = pending_.find(next_)) {
      out.push_back(std::move(it->second));
      pending_.erase(it);
      ++next_;
    }
    return out;
  }

  /// Signal that no further put() calls will happen.
  void finish() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      finished_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::uint64_t next_sequence() const {
    std::lock_guard<std::mutex> lk(mu_);
    return next_;
  }

  [[nodiscard]] std::size_t parked() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pending_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::map<std::uint64_t, T> pending_;
  std::uint64_t next_ = 0;
  bool finished_ = false;
};

}  // namespace hq
