// Table 2 reproduction: characterization of the dedup pipeline.
// Shape claims: compression dominates (~74%), output is the binding serial
// stage (~8%), refinement amplifies coarse chunks into many fine chunks.
//
// Environment knobs: HQ_DEDUP_MB (default 8 MiB input). --quick shrinks the
// workload for smoke testing.
#include <cstdlib>
#include <string>

#include "apps/dedup/dedup.hpp"
#include "quick.hpp"
#include "util/datagen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hq::apps::dedup::config cfg;
  cfg.input_bytes = 8u << 20;
  if (const char* env = std::getenv("HQ_DEDUP_MB")) {
    cfg.input_bytes = static_cast<std::size_t>(std::atol(env)) << 20;
  }
  if (hq::bench::quick_mode(argc, argv)) cfg.input_bytes = 1u << 20;
  auto input =
      hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);
  auto ch = hq::apps::dedup::stage_times(cfg, input);

  double total = 0;
  for (double s : ch.seconds) total += s;

  const char* names[5] = {"Fragment", "FragmentRefine", "Deduplicate",
                          "Compress", "Output"};
  const double paper_pct[5] = {3.08, 6.35, 7.90, 74.48, 8.19};

  hq::util::table table({"Stage", "Iterations", "Time (s)", "Time (%)",
                         "Paper (%)"});
  for (int s = 0; s < 5; ++s) {
    table.add_row({names[s], hq::util::table::cell(ch.iterations[s]),
                   hq::util::table::cell(ch.seconds[s], 4),
                   hq::util::table::cell(100.0 * ch.seconds[s] / total, 2),
                   hq::util::table::cell(paper_pct[s], 2)});
  }
  table.print("Table 2: characterization of the dedup pipeline (" +
              std::to_string(cfg.input_bytes >> 20) + " MiB input)");
  return 0;
}
