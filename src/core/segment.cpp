#include "core/segment.hpp"

#include <bit>
#include <new>

namespace hq::detail {

segment* segment::create(std::uint64_t capacity, const element_ops* ops) {
  assert(capacity >= 2 && std::has_single_bit(capacity));
  // One allocation: [segment header | padding to element alignment | slots].
  const std::size_t align = ops->align > alignof(segment) ? ops->align : alignof(segment);
  const std::size_t header = (sizeof(segment) + align - 1) / align * align;
  const std::size_t bytes = header + capacity * ops->size;
  auto* raw = static_cast<std::byte*>(::operator new(bytes, std::align_val_t{align}));
  return ::new (raw) segment(capacity, ops, raw + header);
}

void segment::destroy(segment* s) {
  assert(s->head.load(std::memory_order_relaxed) ==
             s->tail.load(std::memory_order_relaxed) &&
         "elements must be destroyed before freeing a segment");
  const std::size_t align =
      s->ops->align > alignof(segment) ? s->ops->align : alignof(segment);
  s->~segment();
  ::operator delete(static_cast<void*>(s), std::align_val_t{align});
}

}  // namespace hq::detail
