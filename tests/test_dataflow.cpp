// Tests for versioned objects and indep/outdep/inoutdep dependence tracking
// (the paper's baseline task-dataflow model, Figure 1).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "sched/dataflow.hpp"
#include "sched/spawn.hpp"

namespace {

class DataflowParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(DataflowParam, InoutSerializesChain) {
  // A chain of inoutdep tasks must execute strictly in spawn order.
  hq::scheduler sched(GetParam());
  hq::versioned<std::vector<int>> log;
  sched.run([&] {
    for (int i = 0; i < 100; ++i) {
      hq::spawn([i](hq::inoutdep<std::vector<int>> v) { v->push_back(i); },
                (hq::inoutdep<std::vector<int>>)log);
    }
    hq::sync();
  });
  auto& result = log.get();
  ASSERT_EQ(result.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(result[static_cast<std::size_t>(i)], i);
}

TEST_P(DataflowParam, ReadAfterWriteOrdering) {
  hq::scheduler sched(GetParam());
  hq::versioned<int> value;
  std::atomic<int> seen{-1};
  sched.run([&] {
    hq::spawn([](hq::inoutdep<int> v) { *v = 77; }, (hq::inoutdep<int>)value);
    hq::spawn([&seen](hq::indep<int> v) { seen.store(*v); }, (hq::indep<int>)value);
    hq::sync();
  });
  EXPECT_EQ(seen.load(), 77);
}

TEST_P(DataflowParam, WriteAfterReadWaitsForReaders) {
  hq::scheduler sched(GetParam());
  hq::versioned<int> value(5);
  std::atomic<bool> reader_done{false};
  std::atomic<bool> writer_saw_reader_done{false};
  sched.run([&] {
    hq::spawn(
        [&reader_done](hq::indep<int> v) {
          EXPECT_EQ(*v, 5);
          reader_done.store(true);
        },
        (hq::indep<int>)value);
    hq::spawn(
        [&](hq::inoutdep<int> v) {
          writer_saw_reader_done.store(reader_done.load());
          *v = 6;
        },
        (hq::inoutdep<int>)value);
    hq::sync();
  });
  EXPECT_TRUE(writer_saw_reader_done.load());
  EXPECT_EQ(value.get(), 6);
}

TEST_P(DataflowParam, OutdepRenamesAndDoesNotWait) {
  // outdep creates a fresh version: the writer must not wait for readers of
  // the old version, and later readers see the new version.
  hq::scheduler sched(GetParam());
  hq::versioned<int> value(1);
  std::atomic<int> old_read{0};
  std::atomic<int> new_read{0};
  sched.run([&] {
    hq::spawn([&old_read](hq::indep<int> v) { old_read.store(*v); },
              (hq::indep<int>)value);
    hq::spawn([](hq::outdep<int> v) { *v = 2; }, (hq::outdep<int>)value);
    hq::spawn([&new_read](hq::indep<int> v) { new_read.store(*v); },
              (hq::indep<int>)value);
    hq::sync();
  });
  EXPECT_EQ(old_read.load(), 1);
  EXPECT_EQ(new_read.load(), 2);
}

TEST_P(DataflowParam, Figure1PipelinePattern) {
  // The paper's Figure 1: produce(outdep value); consume(indep value,
  // inoutdep state). Producers may all run in parallel (renaming); consumes
  // are serialized on the state and each sees its iteration's value.
  hq::scheduler sched(GetParam());
  constexpr int kTotal = 200;
  hq::versioned<int> value;
  hq::versioned<std::vector<int>> state;
  sched.run([&] {
    for (int i = 0; i < kTotal; ++i) {
      hq::spawn([i](hq::outdep<int> v) { *v = i * 10; }, (hq::outdep<int>)value);
      hq::spawn(
          [](hq::indep<int> v, hq::inoutdep<std::vector<int>> st) {
            st->push_back(*v);
          },
          (hq::indep<int>)value, (hq::inoutdep<std::vector<int>>)state);
    }
    hq::sync();
  });
  auto& consumed = state.get();
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i * 10) << "iteration " << i;
  }
}

TEST_P(DataflowParam, ParallelReadersShareVersion) {
  hq::scheduler sched(GetParam());
  hq::versioned<int> value(9);
  std::atomic<int> sum{0};
  sched.run([&] {
    for (int i = 0; i < 64; ++i) {
      hq::spawn([&sum](hq::indep<int> v) { sum.fetch_add(*v); },
                (hq::indep<int>)value);
    }
    hq::sync();
  });
  EXPECT_EQ(sum.load(), 9 * 64);
}

TEST_P(DataflowParam, NestedSubsetPrivileges) {
  // A task that received an indep may pass it on to children; all read the
  // same version even if the tracker has moved on meanwhile.
  hq::scheduler sched(GetParam());
  hq::versioned<int> value(3);
  std::atomic<int> sum{0};
  sched.run([&] {
    hq::spawn(
        [&sum](hq::indep<int> v) {
          for (int i = 0; i < 8; ++i) {
            hq::spawn([&sum](hq::indep<int> inner) { sum.fetch_add(*inner); }, v);
          }
          hq::sync();
        },
        (hq::indep<int>)value);
    hq::spawn([](hq::outdep<int> v) { *v = 100; }, (hq::outdep<int>)value);
    hq::sync();
  });
  EXPECT_EQ(sum.load(), 3 * 8) << "children must read the parent's version";
}

TEST_P(DataflowParam, VersionOutlivesVariable) {
  // Tasks keep their version alive even if the versioned<T> goes out of
  // scope before they run.
  hq::scheduler sched(GetParam());
  std::atomic<int> got{0};
  sched.run([&] {
    {
      hq::versioned<int> value(123);
      hq::spawn([&got](hq::indep<int> v) { got.store(*v); }, (hq::indep<int>)value);
    }  // variable destroyed; task may not have run yet
    hq::sync();
  });
  EXPECT_EQ(got.load(), 123);
}

INSTANTIATE_TEST_SUITE_P(Workers, DataflowParam, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(Dataflow, LongMixedChainStress) {
  hq::scheduler sched(4);
  hq::versioned<long> acc(0);
  constexpr int kN = 500;
  sched.run([&] {
    for (int i = 0; i < kN; ++i) {
      if (i % 3 == 0) {
        hq::spawn([](hq::inoutdep<long> v) { *v += 1; }, (hq::inoutdep<long>)acc);
      } else {
        hq::spawn([](hq::indep<long> v) { volatile long x = *v; (void)x; },
                  (hq::indep<long>)acc);
      }
    }
    hq::sync();
  });
  EXPECT_EQ(acc.get(), (kN + 2) / 3);
}

}  // namespace
