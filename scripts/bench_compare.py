#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory records and fail on perf regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--records name1,name2,...] [--stable name1,name2,...]
                     [--fields dotted.path1,dotted.path2,...]

Both files are the records emitted by the bench harnesses (bench_json.hpp /
bench_slice_apps): a top-level object with a "results" array of
{"name", "ns_per_op", ...} entries. For every benchmark present in either
record (or the --records subset), the relative ns_per_op change is computed;
a record present on only one side is a reported discrepancy, never a silent
skip.

Failure rules:
  * default (no --stable): any regression above --threshold fails, as does
    any one-sided record (missing from baseline OR from current) and a
    current record with "all_ok": false;
  * --stable name1,...: the named records form the curated gated subset —
    one-sided presence or an above-threshold regression among them fails
    the run. Everything else is advisory: printed and summarized, but
    runner jitter on the noisy records cannot fail a merge. This is the
    mode the CI gate runs in.

--fields diffs non-benchmark scalars by dotted path into the raw documents
(e.g. probe.locality.remote_allocs) between baseline and current. Always
advisory: the values are printed side by side so locality/probe counters
are visible in the trajectory, but they never gate the exit code (the
binary's own all_ok probes gate correctness).
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {r["name"]: r for r in doc.get("results", [])}
    # BENCH_slice.json shape: {"apps": [{"app", "runs": [{"workers",
    # "element_s", "slice_s", ...}]}]} — flatten each timing into a record.
    for app in doc.get("apps", []):
        for run in app.get("runs", []):
            for key in ("element_s", "slice_s"):
                if key in run:
                    name = f"{app['app']}/w{run['workers']}/{key[:-2]}"
                    rows[name] = {"name": name, "ns_per_op": run[key] * 1e9}
    # BENCH_service.json shape: {"points": [{"load", "policy", "p99_ns",
    # ...}]} — gate on admitted-request p99. The percentile comes from the
    # virtual-time model, a pure function of the seed: any drift is a
    # semantic change in admission/queueing, not runner jitter, so these
    # records gate at a tight threshold.
    for pt in doc.get("points", []):
        name = f"service/{pt['policy']}@{pt['load']:g}"
        rows[name] = {"name": name, "ns_per_op": float(pt.get("p99_ns", 0))}
    return doc, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed relative ns_per_op regression (default 0.15)")
    ap.add_argument("--records", default="",
                    help="comma-separated benchmark names to compare "
                         "(default: union of both records)")
    ap.add_argument("--stable", default="",
                    help="curated stable-record subset: only these records "
                         "gate the exit code; the rest are advisory")
    ap.add_argument("--fields", default="",
                    help="comma-separated dotted paths into the raw records "
                         "(e.g. probe.locality.remote_allocs) to print side "
                         "by side; advisory only")
    args = ap.parse_args()

    base_doc, base = load_results(args.baseline)
    cur_doc, cur = load_results(args.current)

    # The union, not just the baseline: a record that appears on one side
    # only is a discrepancy to report, not something to silently skip.
    names = [n for n in args.records.split(",") if n] or sorted(set(base) | set(cur))
    stable = {n for n in args.stable.split(",") if n}
    for n in sorted(stable - set(names)):
        names.append(n)

    failures = []
    advisories = []

    def problem(name, message):
        if stable and name not in stable:
            advisories.append(message)
        else:
            failures.append(message)

    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'base ns/op':>12}  {'cur ns/op':>12}  {'delta':>8}")
    for name in names:
        gate_tag = " [gated]" if name in stable else ""
        if name not in base and name not in cur:
            problem(name, f"{name}: in neither {args.baseline} nor {args.current}")
            print(f"{name:<{width}}  {'MISSING':>12}  {'MISSING':>12}{gate_tag}")
            continue
        if name not in base:
            problem(name, f"{name}: missing from baseline {args.baseline} "
                          f"(present in current — baseline needs a refresh)")
            print(f"{name:<{width}}  {'MISSING':>12}  {cur[name]['ns_per_op']:>12.1f}{gate_tag}")
            continue
        if name not in cur:
            problem(name, f"{name}: present in baseline but missing from "
                          f"current record {args.current}")
            print(f"{name:<{width}}  {base[name]['ns_per_op']:>12.1f}  {'MISSING':>12}{gate_tag}")
            continue
        b = base[name]["ns_per_op"]
        c = cur[name]["ns_per_op"]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            problem(name, f"{name}: {delta:+.1%} ns_per_op regression "
                          f"({b:.1f} -> {c:.1f})")
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1%}{flag}{gate_tag}")

    if args.fields:
        def lookup(doc, path):
            node = doc
            for part in path.split("."):
                if not isinstance(node, dict) or part not in node:
                    return None
                node = node[part]
            return node

        paths = [p for p in args.fields.split(",") if p]
        fwidth = max((len(p) for p in paths), default=5)
        print(f"\n{'field':<{fwidth}}  {'base':>14}  {'cur':>14}")
        for path in paths:
            bval, cval = lookup(base_doc, path), lookup(cur_doc, path)
            bstr = "MISSING" if bval is None else str(bval)
            cstr = "MISSING" if cval is None else str(cval)
            changed = "  (changed)" if bstr != cstr else ""
            print(f"{path:<{fwidth}}  {bstr:>14}  {cstr:>14}{changed}")

    # all_ok=false means a correctness probe failed: always fatal, in every
    # mode — it is not a perf-noise question.
    if cur_doc.get("all_ok") is False:
        failures.append("current record reports all_ok=false "
                        "(correctness probe failed)")

    if advisories:
        print(f"\nadvisory (non-gated records; not failing the run):")
        for a in advisories:
            print(f"  {a}")

    if failures:
        print(f"\nFAIL ({args.current} vs {args.baseline}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    gated = f"{len(stable)} gated of " if stable else ""
    print(f"OK: no gated regression over {args.threshold:.0%} "
          f"({gated}{len(names)} records checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
