// Property test: the hyperqueue determinism contract.
//
// A consumer must observe exactly the value sequence of the serial elision,
// for ANY schedule, worker count, segment size, or spawn-tree shape.
// We generate random programs (trees of producer tasks whose actions
// interleave pushes and spawns, plus top-level consumers that pop bounded
// counts), compute the expected sequences with a trivial serial interpreter,
// then execute them on the runtime and compare byte-exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hq.hpp"

namespace {

// ------------------------------------------------------- program structure

struct prod_node;

struct prod_action {
  bool is_push = false;
  int value = 0;                        // for pushes
  std::unique_ptr<prod_node> subtree;   // for spawns
};

struct prod_node {
  std::vector<prod_action> actions;
};

struct top_step {
  enum kind_t { kProducerTree, kConsumer, kOwnerPush } kind = kProducerTree;
  std::unique_ptr<prod_node> tree;  // kProducerTree
  int pop_count = 0;                // kConsumer: exact number of pops
  bool nested = false;              // kConsumer: delegate pops to a child task
  int value = 0;                    // kOwnerPush
};

struct program {
  std::vector<top_step> steps;
  bool drain_at_end = false;  // final consumer drains with while(!empty())
};

// ------------------------------------------------------ random generation

class generator {
 public:
  explicit generator(std::uint64_t seed) : rng_(seed) {}

  program make() {
    program p;
    const int n_steps = pick(3, 10);
    for (int i = 0; i < n_steps; ++i) {
      const int r = pick(0, 9);
      if (r < 5) {
        top_step s;
        s.kind = top_step::kProducerTree;
        s.tree = make_tree(0);
        p.steps.push_back(std::move(s));
      } else if (r < 7) {
        top_step s;
        s.kind = top_step::kOwnerPush;
        s.value = next_value_++;
        p.steps.push_back(std::move(s));
      } else {
        top_step s;
        s.kind = top_step::kConsumer;
        s.nested = pick(0, 3) == 0;
        // Pop at most what the serial elision guarantees available.
        const int avail = serial_available();
        s.pop_count = avail == 0 ? 0 : pick(0, avail);
        serial_popped_ += s.pop_count;
        p.steps.push_back(std::move(s));
      }
    }
    p.drain_at_end = pick(0, 1) == 1;
    return p;
  }

  /// Serial-elision pop sequence for each consumer step (in step order),
  /// plus the drain sequence.
  static void expected_sequences(const program& p,
                                 std::vector<std::vector<int>>* per_consumer,
                                 std::vector<int>* drain) {
    std::vector<int> queue;
    std::size_t head = 0;
    for (const auto& s : p.steps) {
      switch (s.kind) {
        case top_step::kProducerTree:
          serial_run(*s.tree, &queue);
          break;
        case top_step::kOwnerPush:
          queue.push_back(s.value);
          break;
        case top_step::kConsumer: {
          std::vector<int> got;
          for (int i = 0; i < s.pop_count; ++i) got.push_back(queue[head++]);
          per_consumer->push_back(std::move(got));
          break;
        }
      }
    }
    if (p.drain_at_end) {
      while (head < queue.size()) drain->push_back(queue[head++]);
    }
  }

 private:
  std::unique_ptr<prod_node> make_tree(int depth) {
    auto node = std::make_unique<prod_node>();
    const int n_actions = pick(1, depth == 0 ? 6 : 4);
    for (int i = 0; i < n_actions; ++i) {
      prod_action a;
      if (depth < 3 && pick(0, 2) == 0) {
        a.is_push = false;
        a.subtree = make_tree(depth + 1);
      } else {
        a.is_push = true;
        const int run = pick(1, 7);
        for (int k = 0; k < run; ++k) {
          prod_action pa;
          pa.is_push = true;
          pa.value = next_value_++;
          node->actions.push_back(std::move(pa));
        }
        continue;
      }
      node->actions.push_back(std::move(a));
    }
    return node;
  }

  static void serial_run(const prod_node& n, std::vector<int>* queue) {
    for (const auto& a : n.actions) {
      if (a.is_push) {
        queue->push_back(a.value);
      } else {
        serial_run(*a.subtree, queue);  // serial elision: run child immediately
      }
    }
  }

  int serial_available() const { return next_value_ - serial_popped_; }

  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  std::mt19937_64 rng_;
  int next_value_ = 0;
  int serial_popped_ = 0;
};

// ------------------------------------------------------------- execution

void run_producer(hq::pushdep<int> q, const prod_node* node) {
  for (const auto& a : node->actions) {
    if (a.is_push) {
      q.push(a.value);
    } else {
      hq::spawn(run_producer, q, a.subtree.get());
      // Deliberately NO sync: later pushes of this node interleave with the
      // running child in parallel but must still appear after the child's
      // values in consumption order (early head reduction path).
    }
  }
  hq::sync();
}

void run_consumer(hq::popdep<int> q, int count, std::vector<int>* out) {
  for (int i = 0; i < count; ++i) {
    ASSERT_FALSE(q.empty()) << "serial elision guarantees availability";
    out->push_back(q.pop());
  }
}

void run_nested_consumer(hq::popdep<int> q, int count, std::vector<int>* out) {
  // Delegate the pops to a child task: exercises queue-view hand-down and
  // the claim-back path.
  hq::spawn(run_consumer, q, count, out);
  hq::sync();
}

struct determinism_case {
  std::uint64_t seed;
  unsigned workers;
  std::size_t segment_length;
};

class DeterminismTest : public ::testing::TestWithParam<determinism_case> {};

TEST_P(DeterminismTest, MatchesSerialElision) {
  const auto& param = GetParam();
  generator gen(param.seed);
  program prog = gen.make();

  std::vector<std::vector<int>> expected_consumers;
  std::vector<int> expected_drain;
  generator::expected_sequences(prog, &expected_consumers, &expected_drain);

  std::vector<std::vector<int>> got_consumers(expected_consumers.size());
  std::vector<int> got_drain;

  hq::scheduler sched(param.workers);
  sched.run([&] {
    hq::hyperqueue<int> queue(param.segment_length);
    std::size_t consumer_idx = 0;
    for (const auto& s : prog.steps) {
      switch (s.kind) {
        case top_step::kProducerTree:
          hq::spawn(run_producer, (hq::pushdep<int>)queue, s.tree.get());
          break;
        case top_step::kOwnerPush:
          queue.push(s.value);
          break;
        case top_step::kConsumer: {
          auto* out = &got_consumers[consumer_idx++];
          if (s.nested) {
            hq::spawn(run_nested_consumer, (hq::popdep<int>)queue, s.pop_count, out);
          } else {
            hq::spawn(run_consumer, (hq::popdep<int>)queue, s.pop_count, out);
          }
          break;
        }
      }
    }
    if (prog.drain_at_end) {
      hq::spawn(
          [&got_drain](hq::popdep<int> q) {
            while (!q.empty()) got_drain.push_back(q.pop());
          },
          (hq::popdep<int>)queue);
    }
    hq::sync();
  });

  ASSERT_EQ(got_consumers.size(), expected_consumers.size());
  for (std::size_t i = 0; i < expected_consumers.size(); ++i) {
    EXPECT_EQ(got_consumers[i], expected_consumers[i]) << "consumer " << i;
  }
  if (prog.drain_at_end) {
    EXPECT_EQ(got_drain, expected_drain) << "final drain";
  }
}

std::vector<determinism_case> make_cases() {
  std::vector<determinism_case> cases;
  const unsigned workers[] = {1, 2, 4, 8};
  const std::size_t seglens[] = {2, 16, 256};
  std::uint64_t seed = 1;
  for (unsigned w : workers) {
    for (std::size_t sl : seglens) {
      for (int i = 0; i < 6; ++i) {
        cases.push_back({seed++, w, sl});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DeterminismTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) + "_P" +
                                  std::to_string(info.param.workers) + "_seg" +
                                  std::to_string(info.param.segment_length);
                         });

// Re-run a fixed nontrivial schedule many times at high worker counts to
// shake out races that a single run might miss.
TEST(DeterminismStress, RepeatedRandomScheduleP8) {
  generator gen(0xfeedULL);
  program prog = gen.make();
  std::vector<std::vector<int>> expected_consumers;
  std::vector<int> expected_drain;
  generator::expected_sequences(prog, &expected_consumers, &expected_drain);

  hq::scheduler sched(8);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::vector<int>> got(expected_consumers.size());
    std::vector<int> got_drain;
    sched.run([&] {
      hq::hyperqueue<int> queue(8);
      std::size_t ci = 0;
      for (const auto& s : prog.steps) {
        switch (s.kind) {
          case top_step::kProducerTree:
            hq::spawn(run_producer, (hq::pushdep<int>)queue, s.tree.get());
            break;
          case top_step::kOwnerPush:
            queue.push(s.value);
            break;
          case top_step::kConsumer:
            hq::spawn(run_consumer, (hq::popdep<int>)queue, s.pop_count, &got[ci++]);
            break;
        }
      }
      if (prog.drain_at_end) {
        hq::spawn(
            [&got_drain](hq::popdep<int> q) {
              while (!q.empty()) got_drain.push_back(q.pop());
            },
            (hq::popdep<int>)queue);
      }
      hq::sync();
    });
    for (std::size_t i = 0; i < expected_consumers.size(); ++i) {
      ASSERT_EQ(got[i], expected_consumers[i]) << "round " << round;
    }
    if (prog.drain_at_end) {
      ASSERT_EQ(got_drain, expected_drain);
    }
  }
}

// String payloads: catches element lifetime bugs (double destroy, leaks).
TEST(DeterminismTypes, StringPayloadRoundtrip) {
  hq::scheduler sched(4);
  constexpr int kN = 300;
  std::vector<std::string> got;
  sched.run([&] {
    hq::hyperqueue<std::string> queue(4);
    hq::spawn(
        [](hq::pushdep<std::string> q) {
          for (int i = 0; i < kN; ++i) {
            q.push("value-" + std::to_string(i) + std::string(i % 50, 'x'));
          }
        },
        (hq::pushdep<std::string>)queue);
    hq::spawn(
        [&got](hq::popdep<std::string> q) {
          while (!q.empty()) got.push_back(q.pop());
        },
        (hq::popdep<std::string>)queue);
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              "value-" + std::to_string(i) + std::string(i % 50, 'x'));
  }
}

}  // namespace
