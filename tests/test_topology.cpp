// Topology model, placement planning and partitioning tests.
//
// The sysfs parser runs against golden fixture trees (tests/fixtures/sysfs,
// injected via from_sysfs's root parameter) so it is tested byte-for-byte
// regardless of the CI machine; the synthetic specs, the placement planner
// and the hypergraph partitioner are pure functions and are tested for the
// properties the runtime relies on — determinism above all, since placement
// feeds arena allocation and steal order while the output-determinism gates
// must hold for any placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/topology.hpp"
#include "hq.hpp"
#include "sched/partition.hpp"

namespace {

using hq::cpu_desc;
using hq::placement_policy;
using hq::topology;

std::string fixture(const char* name) {
  return std::string(HQ_FIXTURE_DIR) + "/sysfs/" + name;
}

// ------------------------------------------------------------ sysfs parsing

TEST(TopologySysfs, SingleNode) {
  const topology t = topology::from_sysfs(fixture("single_node"));
  EXPECT_EQ(t.num_cpus(), 4u);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.num_packages(), 1u);
  EXPECT_EQ(t.num_llcs(), 1u);
  EXPECT_EQ(t.num_cores(), 4u);
  EXPECT_FALSE(t.is_synthetic());
  for (const cpu_desc& d : t.cpus()) {
    EXPECT_EQ(d.node, 0u);
    EXPECT_EQ(d.smt, 0u);
  }
}

TEST(TopologySysfs, TwoSocketSmt) {
  const topology t = topology::from_sysfs(fixture("two_socket"));
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_packages(), 2u);
  EXPECT_EQ(t.num_llcs(), 2u);
  EXPECT_EQ(t.num_cores(), 4u);

  const cpu_desc* c0 = t.find(0);
  const cpu_desc* c1 = t.find(1);
  const cpu_desc* c2 = t.find(2);
  const cpu_desc* c4 = t.find(4);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  ASSERT_NE(c4, nullptr);
  // 0 and 1 are SMT siblings of one core; 2 shares their LLC/node; 4 is on
  // the other socket.
  EXPECT_EQ(c0->core, c1->core);
  EXPECT_EQ(c0->smt, 0u);
  EXPECT_EQ(c1->smt, 1u);
  EXPECT_EQ(topology::distance(*c0, *c0), topology::kDistSelf);
  EXPECT_EQ(topology::distance(*c0, *c1), topology::kDistSmt);
  EXPECT_EQ(topology::distance(*c0, *c2), topology::kDistLlc);
  EXPECT_EQ(topology::distance(*c0, *c4), topology::kDistRemote);
  EXPECT_NE(c0->node, c4->node);
}

TEST(TopologySysfs, SmtOff) {
  const topology t = topology::from_sysfs(fixture("smt_off"));
  EXPECT_EQ(t.num_cpus(), 4u);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_cores(), 4u);  // every CPU its own core
  for (const cpu_desc& d : t.cpus()) EXPECT_EQ(d.smt, 0u);
  const cpu_desc* c0 = t.find(0);
  const cpu_desc* c1 = t.find(1);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(topology::distance(*c0, *c1), topology::kDistLlc);
}

TEST(TopologySysfs, OfflineCpusAreSkipped) {
  const topology t = topology::from_sysfs(fixture("offline_cpus"));
  EXPECT_EQ(t.num_cpus(), 3u);  // cpu1 is offline
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_NE(t.find(0), nullptr);
  EXPECT_EQ(t.num_nodes(), 2u);
  // cpu0's sibling list names the offline cpu1: the SMT rank must only
  // count online siblings.
  EXPECT_EQ(t.find(0)->smt, 0u);
}

TEST(TopologySysfs, MissingTreeIsEmpty) {
  const topology t = topology::from_sysfs(fixture("no_such_tree"));
  EXPECT_EQ(t.num_cpus(), 0u);
}

// ------------------------------------------------------------ synthetic specs

TEST(TopologySynthetic, TwoByEight) {
  const topology t = topology::synthetic("2x8");
  EXPECT_TRUE(t.is_synthetic());
  EXPECT_EQ(t.num_cpus(), 16u);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_llcs(), 2u);
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.find(0)->node, 0u);
  EXPECT_EQ(t.find(8)->node, 1u);
}

TEST(TopologySynthetic, SmtWays) {
  const topology t = topology::synthetic("2x4x2");
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_cores(), 4u);
  const cpu_desc* c0 = t.find(0);
  const cpu_desc* c1 = t.find(1);
  EXPECT_EQ(c0->core, c1->core);
  EXPECT_EQ(c1->smt, 1u);
}

TEST(TopologySynthetic, InvalidSpecFallsBackFlat) {
  for (const char* bad : {"", "0x4", "2x", "axb", "2x4x3" /* 4 % 3 != 0 */}) {
    const topology t = topology::synthetic(bad);
    EXPECT_TRUE(t.is_synthetic()) << bad;
    EXPECT_EQ(t.num_nodes(), 1u) << bad;
    EXPECT_GE(t.num_cpus(), 1u) << bad;
  }
}

// ------------------------------------------------------------ placement plan

TEST(Placement, CompactFillsNodeByNode) {
  const topology t = topology::synthetic("2x4");
  const auto cpus = hq::plan_placement(t, placement_policy::compact, 8);
  ASSERT_EQ(cpus.size(), 8u);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(t.find(cpus[w])->node, 0u) << w;
  for (unsigned w = 4; w < 8; ++w) EXPECT_EQ(t.find(cpus[w])->node, 1u) << w;
}

TEST(Placement, ScatterAlternatesNodes) {
  const topology t = topology::synthetic("2x4");
  const auto cpus = hq::plan_placement(t, placement_policy::scatter, 4);
  ASSERT_EQ(cpus.size(), 4u);
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(t.find(cpus[w])->node, w % 2) << w;
  }
}

TEST(Placement, CompactKeepsSmtSiblingsAdjacent) {
  const topology t = topology::synthetic("1x4x2");
  const auto cpus = hq::plan_placement(t, placement_policy::compact, 4);
  ASSERT_EQ(cpus.size(), 4u);
  EXPECT_EQ(t.find(cpus[0])->core, t.find(cpus[1])->core);
  EXPECT_EQ(t.find(cpus[2])->core, t.find(cpus[3])->core);
}

TEST(Placement, OversubscriptionWraps) {
  const topology t = topology::synthetic("2x2");
  const auto cpus = hq::plan_placement(t, placement_policy::compact, 10);
  ASSERT_EQ(cpus.size(), 10u);
  for (unsigned w = 4; w < 10; ++w) EXPECT_EQ(cpus[w], cpus[w - 4]);
}

TEST(Placement, NonePlansNothing) {
  const topology t = topology::synthetic("2x4");
  EXPECT_TRUE(hq::plan_placement(t, placement_policy::none, 4).empty());
}

TEST(Placement, DeterministicAcrossCalls) {
  const topology t = topology::synthetic("4x8x2");
  for (auto pol : {placement_policy::compact, placement_policy::scatter}) {
    const auto a = hq::plan_placement(t, pol, 23);
    const auto b = hq::plan_placement(t, pol, 23);
    EXPECT_EQ(a, b);
  }
}

// ----------------------------------------------------------- scheduler wiring

TEST(SchedulerPlacement, PerWorkerStatsReportAssignment) {
  const topology t = topology::synthetic("2x2");
  hq::scheduler sched(4, {placement_policy::compact, &t, {}});
  const auto ws = sched.per_worker_stats();
  ASSERT_EQ(ws.size(), 4u);
  EXPECT_EQ(ws[0].node, 0);
  EXPECT_EQ(ws[1].node, 0);
  EXPECT_EQ(ws[2].node, 1);
  EXPECT_EQ(ws[3].node, 1);
  for (const auto& w : ws) EXPECT_GE(w.cpu, 0);
  EXPECT_EQ(sched.policy(), placement_policy::compact);
  EXPECT_EQ(sched.topo().num_nodes(), 2u);
  // The scheduler still runs work regardless of whether the pins stuck.
  std::atomic<int> ran{0};
  sched.run([&] {
    for (int i = 0; i < 100; ++i) {
      hq::spawn([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    hq::sync();
  });
  EXPECT_EQ(ran.load(), 100);
}

TEST(SchedulerPlacement, PolicyNoneLeavesWorkersUnplaced) {
  hq::scheduler sched(2, {placement_policy::none, nullptr, {}});
  for (const auto& w : sched.per_worker_stats()) {
    EXPECT_EQ(w.cpu, -1);
    EXPECT_EQ(w.node, -1);
    EXPECT_FALSE(w.pinned);
  }
}

TEST(SchedulerPlacement, ExplicitCpusOverridePolicy) {
  const topology t = topology::synthetic("2x2");
  // Pin both workers on node 1's CPUs explicitly.
  hq::scheduler sched(2, {placement_policy::compact, &t, {2, 3}});
  const auto ws = sched.per_worker_stats();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].cpu, 2);
  EXPECT_EQ(ws[1].cpu, 3);
  EXPECT_EQ(ws[0].node, 1);
  EXPECT_EQ(ws[1].node, 1);
}

TEST(SchedulerPlacement, QueueHomeNodeFollowsPlan) {
  // Wire a queue's arena to a node chosen by the partitioner and run a
  // pipeline through it: behavior (and output) must be unchanged.
  hq::queue_graph g;
  g.num_stages = 2;
  g.queues.push_back({{0}, 1, 1.0});
  const hq::queue_plan plan = hq::plan_queue_placement(g, 2, /*seed=*/42);
  ASSERT_EQ(plan.queue_node.size(), 1u);
  const topology t = topology::synthetic("2x2");
  hq::scheduler sched(2, {placement_policy::compact, &t, {}});
  long long sum = 0;
  sched.run([&] {
    hq::hyperqueue<int> q(64, plan.queue_node[0]);
    EXPECT_EQ(q.home_node(), plan.queue_node[0]);
    hq::spawn(
        [](hq::pushdep<int> out) {
          for (int i = 0; i < 10000; ++i) out.push(i);
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&sum](hq::popdep<int> in) {
          while (!in.empty()) sum += in.pop();
        },
        (hq::popdep<int>)q);
    hq::sync();
  });
  EXPECT_EQ(sum, 10000LL * 9999 / 2);
}

// -------------------------------------------------------------- partitioner

TEST(Partition, DeterministicFromSeed) {
  hq::hypergraph g;
  g.num_vertices = 32;
  for (unsigned e = 0; e < 48; ++e) {
    hq::hypergraph::edge ed;
    ed.pins = {e % 32, (e * 7 + 3) % 32, (e * 13 + 5) % 32};
    ed.weight = 1.0 + e % 5;
    g.edges.push_back(ed);
  }
  const auto a = hq::partition_greedy(g, 4, 7);
  const auto b = hq::partition_greedy(g, 4, 7);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cut_weight, b.cut_weight);
  // A different seed is allowed to (and here does not have to) differ, but
  // must still be a valid partition.
  const auto c = hq::partition_greedy(g, 4, 8);
  for (unsigned blk : c.assignment) EXPECT_LT(blk, 4u);
}

TEST(Partition, RespectsBalanceCap) {
  hq::hypergraph g;
  g.num_vertices = 40;  // no edges: pure balance
  const auto r = hq::partition_greedy(g, 4, 1, 0.2);
  std::vector<unsigned> count(4, 0);
  for (unsigned blk : r.assignment) {
    ASSERT_LT(blk, 4u);
    ++count[blk];
  }
  for (unsigned c : count) EXPECT_LE(c, 12u);  // ceil(40/4)*1.2
  EXPECT_EQ(r.cut_weight, 0.0);
}

TEST(Partition, KeepsCliqueTogether) {
  // Two 4-vertex cliques joined by nothing: 2 blocks must cut zero edges.
  hq::hypergraph g;
  g.num_vertices = 8;
  for (unsigned base : {0u, 4u}) {
    for (unsigned i = 0; i < 4; ++i) {
      for (unsigned j = i + 1; j < 4; ++j) {
        g.edges.push_back({{base + i, base + j}, 1.0});
      }
    }
  }
  const auto r = hq::partition_greedy(g, 2, 3);
  EXPECT_EQ(r.cut_weight, 0.0);
  std::set<unsigned> first(r.assignment.begin(), r.assignment.begin() + 4);
  std::set<unsigned> second(r.assignment.begin() + 4, r.assignment.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(Partition, SingleBlockShortCircuits) {
  hq::hypergraph g;
  g.num_vertices = 5;
  g.edges.push_back({{0, 1, 2}, 2.0});
  const auto r = hq::partition_greedy(g, 1, 0);
  for (unsigned blk : r.assignment) EXPECT_EQ(blk, 0u);
  EXPECT_EQ(r.cut_weight, 0.0);
  EXPECT_EQ(r.max_block_weight, 5.0);
}

TEST(QueuePlan, ConsumerOwnsArena) {
  // Two independent producer->consumer pairs on 2 nodes: the balance cap
  // (2 stages per node) admits the zero-cut layout, so the planner must
  // find it and each pair must land node-internal.
  hq::queue_graph g;
  g.num_stages = 4;
  g.queues.push_back({{0}, 2, 4.0});
  g.queues.push_back({{1}, 3, 4.0});
  const auto plan = hq::plan_queue_placement(g, 2, 11);
  ASSERT_EQ(plan.stage_node.size(), 4u);
  ASSERT_EQ(plan.queue_node.size(), 2u);
  EXPECT_EQ(plan.queue_node[0],
            static_cast<int>(plan.stage_node[g.queues[0].consumer]));
  EXPECT_EQ(plan.queue_node[1],
            static_cast<int>(plan.stage_node[g.queues[1].consumer]));
  const auto& s = plan.stage_node;
  EXPECT_EQ(s[0], s[2]);
  EXPECT_EQ(s[1], s[3]);
  EXPECT_NE(s[0], s[1]);  // balance: one pair per node
  EXPECT_EQ(plan.cut_weight, 0.0);
}

TEST(QueuePlan, SingleNodeIsAllZero) {
  hq::queue_graph g;
  g.num_stages = 3;
  g.queues.push_back({{0}, 1, 1.0});
  const auto plan = hq::plan_queue_placement(g, 1, 5);
  for (unsigned n : plan.stage_node) EXPECT_EQ(n, 0u);
  for (int n : plan.queue_node) EXPECT_EQ(n, 0);
  EXPECT_EQ(plan.cut_weight, 0.0);
}

}  // namespace
