// Tests for the work-stealing scheduler: spawn/sync semantics, nesting,
// helping, recursion, and stress.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sched/spawn.hpp"

namespace {

long serial_fib(long n) { return n < 2 ? n : serial_fib(n - 1) + serial_fib(n - 2); }

void fib_task(long n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  hq::spawn(fib_task, n - 1, &a);
  hq::spawn(fib_task, n - 2, &b);
  hq::sync();
  *out = a + b;
}

class SchedulerParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(SchedulerParam, FibMatchesSerial) {
  hq::scheduler sched(GetParam());
  long out = 0;
  sched.run([&] { fib_task(20, &out); });
  EXPECT_EQ(out, serial_fib(20));
}

TEST_P(SchedulerParam, ManyFlatChildren) {
  hq::scheduler sched(GetParam());
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  sched.run([&] {
    for (int i = 0; i < kN; ++i) {
      hq::spawn([&hits, i] { hits[static_cast<std::size_t>(i)].fetch_add(1); });
    }
    hq::sync();
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
    }
  });
}

TEST_P(SchedulerParam, ImplicitSyncAtTaskReturn) {
  // A task's children must complete before its completion is observable,
  // even without an explicit sync in the body.
  hq::scheduler sched(GetParam());
  std::atomic<int> order{0};
  std::atomic<int> child_done_at{-1};
  std::atomic<int> after_sync_at{-1};
  sched.run([&] {
    hq::spawn([&] {
      hq::spawn([&] { child_done_at.store(order.fetch_add(1)); });
      // no explicit sync: implicit sync must wait for the grandchild
    });
    hq::sync();
    after_sync_at.store(order.fetch_add(1));
  });
  EXPECT_LT(child_done_at.load(), after_sync_at.load());
  EXPECT_GE(child_done_at.load(), 0);
}

TEST_P(SchedulerParam, SyncSeesChildWrites) {
  hq::scheduler sched(GetParam());
  constexpr int kRounds = 200;
  sched.run([&] {
    for (int r = 0; r < kRounds; ++r) {
      std::vector<int> vals(64, 0);
      for (int i = 0; i < 64; ++i) {
        hq::spawn([&vals, i] { vals[static_cast<std::size_t>(i)] = i + 1; });
      }
      hq::sync();
      long sum = std::accumulate(vals.begin(), vals.end(), 0L);
      ASSERT_EQ(sum, 64L * 65 / 2);
    }
  });
}

TEST_P(SchedulerParam, CallRunsInline) {
  hq::scheduler sched(GetParam());
  int x = 0;
  sched.run([&] {
    hq::call([&x] { x = 42; });
    // call() waits: the effect must be visible immediately.
    EXPECT_EQ(x, 42);
  });
}

TEST_P(SchedulerParam, DeepRecursionTree) {
  hq::scheduler sched(GetParam());
  long out = 0;
  sched.run([&] { fib_task(24, &out); });
  EXPECT_EQ(out, serial_fib(24));
}

TEST_P(SchedulerParam, RunIsReusable) {
  hq::scheduler sched(GetParam());
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    sched.run([&] {
      for (int i = 0; i < 100; ++i) hq::spawn([&n] { n.fetch_add(1); });
      hq::sync();
    });
    EXPECT_EQ(n.load(), 100);
  }
}

TEST_P(SchedulerParam, WorkersReported) {
  hq::scheduler sched(GetParam());
  sched.run([&] { EXPECT_EQ(hq::workers(), GetParam()); });
}

INSTANTIATE_TEST_SUITE_P(Workers, SchedulerParam, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(Scheduler, StatsCountSpawns) {
  hq::scheduler sched(2);
  sched.reset_stats();
  sched.run([&] {
    for (int i = 0; i < 50; ++i) hq::spawn([] {});
    hq::sync();
  });
  auto s = sched.stats();
  EXPECT_EQ(s.spawns, 50u);
  EXPECT_EQ(s.executed, 51u);  // 50 children + root
}

TEST(Scheduler, SpawnArgumentsCapturedByValue) {
  hq::scheduler sched(2);
  std::atomic<long> sum{0};
  sched.run([&] {
    for (int i = 0; i < 100; ++i) {
      hq::spawn([&sum](int v) { sum.fetch_add(v); }, i);
    }
    hq::sync();
  });
  EXPECT_EQ(sum.load(), 100L * 99 / 2);
}

TEST(Scheduler, LargeClosureSpillsToHeap) {
  hq::scheduler sched(2);
  std::array<long, 64> big{};  // 512 bytes: beyond the inline buffer
  big.fill(7);
  std::atomic<long> out{0};
  sched.run([&] {
    hq::spawn([big, &out] {
      long s = 0;
      for (long v : big) s += v;
      out.store(s);
    });
    hq::sync();
  });
  EXPECT_EQ(out.load(), 7L * 64);
}

TEST(Scheduler, NestedSpawnDepth) {
  // A chain of single-child tasks, each waiting on its child: exercises
  // help-while-blocked re-entrancy.
  hq::scheduler sched(2);
  constexpr int kDepth = 200;
  std::atomic<int> max_seen{0};
  struct Chain {
    static void step(int depth, int limit, std::atomic<int>* max_seen) {
      if (depth > max_seen->load()) max_seen->store(depth);
      if (depth < limit) {
        hq::spawn(step, depth + 1, limit, max_seen);
        hq::sync();
      }
    }
  };
  sched.run([&] { Chain::step(0, kDepth, &max_seen); });
  EXPECT_EQ(max_seen.load(), kDepth);
}

}  // namespace
