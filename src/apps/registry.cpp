// Built-in app registrations for the generic pipeline runner.
//
// Each app_instance owns its config, synthesized input and result for one
// run; describe() forwards to the app's describe_pipeline and digest()
// renders the output the equality gate compares (byte stream for
// bzip2/dedup, checksum for ferret). Sizes: quick = test-scale inputs
// (conformance matrix, sanitizer CI), full = bench-scale.
#include <mutex>
#include <string>

#include "apps/bzip2/bzip2.hpp"
#include "apps/dedup/dedup.hpp"
#include "apps/ferret/ferret.hpp"
#include "pipeline/runner.hpp"
#include "util/datagen.hpp"

namespace hq::pipe {

namespace {

class bzip2_app final : public app_instance {
 public:
  explicit bzip2_app(const app_params& p) {
    cfg_.input_bytes = p.quick ? (256u << 10) : (2u << 20);
    cfg_.block_bytes = p.quick ? (8u << 10) : (32u << 10);
    cfg_.threads = p.workers;
    cfg_.seed ^= p.seed;
    input_ = util::gen_text(cfg_.input_bytes, cfg_.seed);
  }
  void describe(graph& g) override {
    apps::bzip2::describe_pipeline(cfg_, input_, &r_, g);
  }
  [[nodiscard]] std::string digest() const override {
    return {r_.output.begin(), r_.output.end()};
  }

 private:
  apps::bzip2::config cfg_;
  std::vector<std::uint8_t> input_;
  apps::bzip2::result r_;
};

class dedup_app final : public app_instance {
 public:
  explicit dedup_app(const app_params& p) {
    cfg_.input_bytes = p.quick ? (1u << 20) : (4u << 20);
    cfg_.coarse_bytes = 64u << 10;
    cfg_.fine_avg_log2 = 11;
    cfg_.fine_min = 256;
    cfg_.fine_max = 8u << 10;
    cfg_.threads = p.workers;
    cfg_.seed ^= p.seed;
    input_ = util::gen_archive(cfg_.input_bytes, cfg_.dup_fraction, cfg_.seed);
  }
  void describe(graph& g) override {
    apps::dedup::describe_pipeline(cfg_, input_, &table_, &r_, g);
  }
  [[nodiscard]] std::string digest() const override {
    return {r_.output.begin(), r_.output.end()};
  }

 private:
  apps::dedup::config cfg_;
  std::vector<std::uint8_t> input_;
  apps::dedup::dedup_table table_;
  apps::dedup::result r_;
};

class ferret_app final : public app_instance {
 public:
  explicit ferret_app(const app_params& p) {
    cfg_.num_images = p.quick ? 96 : 1024;
    cfg_.image_wh = 16;
    cfg_.db_entries = 256;
    cfg_.dims = 32;
    cfg_.topk = 8;
    cfg_.threads = p.workers;
    cfg_.seed ^= p.seed;
    db_ = apps::ferret::build_db(cfg_);
  }
  void describe(graph& g) override {
    apps::ferret::describe_pipeline(cfg_, db_, &checksum_, g);
  }
  [[nodiscard]] std::string digest() const override {
    return std::to_string(checksum_);
  }

 private:
  apps::ferret::config cfg_;
  apps::ferret::feature_db db_;
  std::uint64_t checksum_ = 0;
};

}  // namespace

void ensure_builtin_apps() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_app("bzip2", [](const app_params& p) {
      return std::unique_ptr<app_instance>(new bzip2_app(p));
    });
    register_app("dedup", [](const app_params& p) {
      return std::unique_ptr<app_instance>(new dedup_app(p));
    });
    register_app("ferret", [](const app_params& p) {
      return std::unique_ptr<app_instance>(new ferret_app(p));
    });
  });
}

}  // namespace hq::pipe
