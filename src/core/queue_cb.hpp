// Hyperqueue control block: the non-templated runtime state of one
// hyperqueue (paper Sections 3 and 4).
//
// Responsibilities:
//  * per-task, per-queue attachments carrying the producer's private shard
//    (`pshard`, core/view.hpp) and the consumer's scan position;
//  * shard splicing at spawn — the lock-free realization of the paper's
//    view transfer (Section 4.2): the merge order is fixed at the spawn
//    point, so determinism is independent of execution interleaving;
//  * the push / pop / empty operations with the paper's deterministic
//    visibility contract: a consumer observes exactly the serial-elision
//    value sequence, and empty() returns true only when no task earlier in
//    program order can still produce (structural now: the scan stops at the
//    attachment's end-of-visible-range shard, and a shard can only be
//    passed once its producer closed it);
//  * scheduling rules 1–4 (Section 2.3): pop-privileged tasks are serialized
//    FIFO per parent via task dependences; push tasks are never delayed.
//
// Locking: the producer path takes NO lock, ever — pushes run on private
// shards, and spawn-time splices only touch the spawning task's own current
// shard (see pshard). `mu` survives only on the pop side, where it guards
// the pop-FIFO registration (attach, counted by mu_attach), the scan-
// position hand-back at completion (counted by mu_complete), and the lazy
// ancestor claim of the scan position (counted by mu_data). Element
// transfers on segments are lock-free SPSC fast paths.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "conc/spinlock.hpp"
#include "core/segment.hpp"
#include "core/view.hpp"
#include "sched/task.hpp"

namespace hq::detail {

inline constexpr std::uint8_t kPrivPush = 1;
inline constexpr std::uint8_t kPrivPop = 2;

struct queue_cb;

/// Segment-pool counters (tests / benches): with a well-behaved pipeline the
/// pool reaches steady state — `allocated` plateaus at `high_water` and every
/// further segment demand is served by `recycled`.
struct seg_pool_stats {
  std::uint64_t allocated = 0;   ///< fresh heap allocations, ever
  std::uint64_t recycled = 0;    ///< allocation requests served by the pool
  std::uint64_t high_water = 0;  ///< peak segments simultaneously in use
  std::uint64_t live = 0;        ///< currently allocated (in use + pooled)

  // Byte-denominated footprint (the budget's own unit, so budgets can be
  // audited without knowing segment geometry): in_use_bytes is segments in
  // use x bytes per segment *now*, peak_bytes the same at the high-water
  // mark, budget_bytes the configured cap (0 = unlimited).
  std::uint64_t in_use_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t budget_bytes = 0;

  // Backpressure events: producer waits entered because the queue was at
  // its memory budget, and the total wall time spent in them.
  // budget_overruns counts waits that escaped over budget because no
  // consumer could make recycle progress (see queue_cb::budget_wait) — 0
  // whenever the consumer stays runnable, i.e. the cap held hard.
  std::uint64_t throttle_waits = 0;
  std::uint64_t throttle_ns = 0;
  std::uint64_t budget_overruns = 0;

  // Structural-exemption audit: shards_peak is the high-water count of
  // simultaneously live producer shards, and exempt_peak_bytes =
  // shards_peak x kShardMinSegs x segment bytes — the most the per-shard
  // allocation floor can ever hold above budget_bytes. On any run with
  // budget_overruns == 0, peak_bytes <= budget_bytes + exempt_peak_bytes
  // is the hard invariant (tests assert exactly this; the shard peak makes
  // the slack schedule-independent instead of a guessed constant).
  std::uint64_t shards_peak = 0;
  std::uint64_t exempt_peak_bytes = 0;

  /// Aggregate over a pipeline's queues (field-wise sum; high_water /
  /// peak_bytes become the sum of per-queue peaks, an upper bound on the
  /// combined peak; budget_bytes the combined cap).
  friend seg_pool_stats operator+(const seg_pool_stats& a,
                                  const seg_pool_stats& b) {
    seg_pool_stats r;
    r.allocated = a.allocated + b.allocated;
    r.recycled = a.recycled + b.recycled;
    r.high_water = a.high_water + b.high_water;
    r.live = a.live + b.live;
    r.in_use_bytes = a.in_use_bytes + b.in_use_bytes;
    r.peak_bytes = a.peak_bytes + b.peak_bytes;
    r.budget_bytes = a.budget_bytes + b.budget_bytes;
    r.throttle_waits = a.throttle_waits + b.throttle_waits;
    r.throttle_ns = a.throttle_ns + b.throttle_ns;
    r.budget_overruns = a.budget_overruns + b.budget_overruns;
    r.shards_peak = a.shards_peak + b.shards_peak;
    r.exempt_peak_bytes = a.exempt_peak_bytes + b.exempt_peak_bytes;
    return r;
  }
};

/// Data-path slow-event snapshot (tests / benches): the element fast path
/// increments none of these. The mu_* fields pin the locking contract:
/// mu_view and (after warm-up) mu_attach stay 0 because the producer side —
/// push, write_slice, push-privileged spawn and completion — never takes a
/// mutex; mu_attach/mu_complete count the pop-side registrations that still
/// do.
struct data_path_stats {
  std::uint64_t head_reloads = 0;   ///< producer re-read the consumer's head
  std::uint64_t tail_reloads = 0;   ///< consumer re-read the producer's tail
  std::uint64_t mu_data = 0;        ///< consumer took mu (scan-position claim)
  std::uint64_t mu_view = 0;        ///< producer took mu (always 0; pinned)
  std::uint64_t seg_cache_hits = 0; ///< segment allocs served lock-free
  std::uint64_t mu_attach = 0;      ///< attach_spawn took mu (pop FIFO only)
  std::uint64_t mu_complete = 0;    ///< completion took mu (pop hand-back only)
  std::uint64_t live_bytes = 0;     ///< segments in use x bytes per segment
};

/// Per-(task, queue) bookkeeping. Owned by the queue control block; lives
/// from the task's spawn until its completion (the owner attachment lives
/// until queue destruction).
struct qattach {
  queue_cb* q = nullptr;
  task_frame* frame = nullptr;  // null once completed
  qattach* parent = nullptr;    // attachment of the spawning task
  std::uint8_t priv = 0;

  /// Recycling bookkeeping: attachments come from the scheduler's per-worker
  /// attach pool (sched/obj_pool.hpp). Null pool_sched means plain heap
  /// (allocation happened outside any worker — not expected, but safe).
  scheduler* pool_sched = nullptr;
  unsigned pool_owner = ~0u;

  // ---- producer side (owning task only, no lock) -------------------------

  /// The task's current open shard (push-privileged tasks only). Spawns
  /// close it and continue on a fresh one; completion closes the last.
  pshard* my_shard = nullptr;

  // ---- consumer side -----------------------------------------------------

  /// Pop-only tasks: last shard of the visible range (inclusive) — the
  /// spawning parent's shard, closed at this task's spawn. Push-capable
  /// consumers use their own my_shard as the (dynamic) end instead: they may
  /// consume everything up to and including their own pushes. Immutable
  /// after spawn; the shard record outlives this attachment (nothing may
  /// scan past it before this task completes — pop FIFO).
  pshard* end_shard = nullptr;

  /// Pop-privileged FIFO per parent (scheduling rule 3): the most recent
  /// live pop-privileged child. Guarded by queue_cb::mu.
  qattach* last_pop_child = nullptr;

  /// Live child attachments (selective sync, Section 5.5; lock-free).
  std::atomic<long> live_children{0};

  /// Live pop-privileged children. Read lock-free by the owning task on the
  /// consumer fast path: the release decrement in on_task_complete pairs
  /// with an acquire load, so observing zero implies the completed child's
  /// scan-position hand-back is visible.
  std::atomic<long> live_pop_children{0};

  /// Live push-privileged children (O(1) sync_children(kPrivPush)).
  std::atomic<long> live_push_children{0};

  // ---- scan position (held by at most one attachment per queue) ----------

  /// True while this attachment holds the queue's single scan position —
  /// the successor of the paper's queue view. Transfers at pop spawn and
  /// completion run under queue_cb::mu; the owning task reads it lock-free
  /// once an acquire load of live_pop_children returned zero.
  bool has_pos = false;
  pshard* pos_shard = nullptr;  ///< shard the consumer is draining
  segment* pos_seg = nullptr;   ///< segment within it (null: head not read)

  /// Ready-segment hint from the last successful wait_data. Lets the
  /// Figure-2 `while (!q.empty()) q.pop();` idiom run wait_data once per
  /// element: pop()/read_slice() reuse the segment found by empty() when it
  /// is still the scan-position segment with readable data.
  segment* ready_seg = nullptr;
};

/// Control block shared by a hyperqueue<T> and all wrappers referencing it.
struct queue_cb {
  /// `budget_bytes` caps the queue's live segment footprint (backpressure,
  /// see budget_wait). 0 means "use the HQ_QUEUE_BUDGET environment default"
  /// (itself unlimited when unset); call set_memory_budget(0) afterwards to
  /// force unlimited regardless of the environment.
  queue_cb(element_ops o, std::uint64_t segment_capacity,
           std::uint64_t budget_bytes = 0);
  ~queue_cb();

  queue_cb(const queue_cb&) = delete;
  queue_cb& operator=(const queue_cb&) = delete;

  // ---- lifetime ----------------------------------------------------------
  void add_ref() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }
  // Out of line: an inlined `delete this` trips GCC's -Wuse-after-free
  // interprocedural analysis at wrapper destruction sites.
  void release() noexcept;

  /// Create the owner attachment on the constructing task's frame: the
  /// owner's shard with the initial segment, holding the scan position.
  void attach_owner(task_frame* owner_frame);

  /// Tear down from the owner task: waits (helping) until all spawned tasks
  /// on this queue completed, then destroys remaining elements, segments and
  /// shards.
  void detach_owner();

  // ---- spawn / completion protocol ---------------------------------------

  /// Called during spawn-argument resolution on the spawning task's thread:
  /// creates the child attachment, splices the child's shard (and the
  /// parent's continuation shard) into the scan list, and — for pop
  /// privileges only — registers the FIFO dependence under mu.
  qattach* attach_spawn(task_frame* child, std::uint8_t priv);

  /// Completion-time protocol (runs as a frame completion hook). Push side:
  /// close the shard, lock-free. Pop side: hand the scan position back to
  /// the parent under mu.
  void on_task_complete(qattach* a);

  // ---- producer / consumer operations (element_ops-typed payloads) -------

  /// Append one element (move-constructs from src; src is left moved-from).
  void push(void* src);

  /// Paper semantics: false when a value is available to this task; true
  /// only when no older-in-program-order producer can still push. Blocks
  /// (helping the scheduler) until one of the two is certain.
  bool empty();

  /// Move the next value into dst. Aborts if the queue is definitively
  /// empty — popping from an empty hyperqueue is a program error.
  void pop(void* dst);

  /// Batched pop: relocate up to `max` elements into the contiguous
  /// uninitialized array at `dst`. Returns the number transferred; 0 only
  /// when the queue is definitively empty. Blocks like pop.
  std::uint64_t pop_n(void* dst, std::uint64_t max);

  /// Contiguous write window (Section 5.2). Returns the slot pointer and
  /// sets *count to the granted length (>=1; may be less than wanted).
  /// Elements must be move-constructed into the slots, then committed.
  void* write_slice(std::uint64_t want, std::uint64_t* count);
  void commit_write(std::uint64_t produced);

  /// Contiguous read window of up to `want` ready elements. Sets *count to
  /// the granted length; returns null with *count==0 when the queue is
  /// definitively empty. Blocks until data or definitive emptiness.
  void* read_slice(std::uint64_t want, std::uint64_t* count);
  void commit_read(std::uint64_t consumed);

  // ---- selective sync (Section 5.5) --------------------------------------
  void sync_children(std::uint8_t priv_filter);

  // ---- introspection (tests / benches) ------------------------------------
  [[nodiscard]] std::uint64_t segments_allocated() const {
    return seg_live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] seg_pool_stats pool_stats() const {
    seg_pool_stats st;
    st.allocated = seg_fresh.load(std::memory_order_relaxed);
    st.recycled = seg_recycled.load(std::memory_order_relaxed);
    st.high_water = seg_high_water.load(std::memory_order_relaxed);
    st.live = seg_live.load(std::memory_order_relaxed);
    st.in_use_bytes = seg_in_use.load(std::memory_order_relaxed) * seg_bytes_;
    st.peak_bytes = st.high_water * seg_bytes_;
    st.budget_bytes = budget_bytes_.load(std::memory_order_relaxed);
    st.throttle_waits = throttle_waits_.load(std::memory_order_relaxed);
    st.throttle_ns = throttle_ns_.load(std::memory_order_relaxed);
    st.budget_overruns = budget_overruns_.load(std::memory_order_relaxed);
    st.shards_peak = shards_peak_.load(std::memory_order_relaxed);
    st.exempt_peak_bytes = st.shards_peak * kShardMinSegs * seg_bytes_;
    return st;
  }
  [[nodiscard]] data_path_stats data_stats() const {
    data_path_stats st;
    st.head_reloads = dp_.head_reloads.load(std::memory_order_relaxed);
    st.tail_reloads = dp_.tail_reloads.load(std::memory_order_relaxed);
    st.mu_data = dp_.mu_data.load(std::memory_order_relaxed);
    st.mu_view = dp_.mu_view.load(std::memory_order_relaxed);
    st.seg_cache_hits = dp_.seg_cache_hits.load(std::memory_order_relaxed);
    st.mu_attach = dp_.mu_attach.load(std::memory_order_relaxed);
    st.mu_complete = dp_.mu_complete.load(std::memory_order_relaxed);
    st.live_bytes = seg_in_use.load(std::memory_order_relaxed) * seg_bytes_;
    return st;
  }
  [[nodiscard]] qattach* owner_attachment() { return owner; }
  /// Attachment of the calling task (current frame), requiring `need` privs.
  qattach* my_attachment(std::uint8_t need);

  // ---- topology ------------------------------------------------------------
  /// Pin fresh segment arenas to a NUMA node (e.g. the consumer's node from
  /// plan_queue_placement). Default -1: each fresh segment follows the
  /// *allocating worker's* home node (scheduler::current_worker_node), which
  /// is the first-touch-like behavior — and the plain heap when the worker
  /// is unplaced. Takes effect for segments allocated after the call;
  /// already-pooled segments keep their arena (segments recycle far more
  /// often than they are created, so set this before the first push).
  void set_home_node(int node) noexcept {
    home_node_.store(node, std::memory_order_relaxed);
  }
  [[nodiscard]] int home_node() const noexcept {
    return home_node_.load(std::memory_order_relaxed);
  }

  // ---- memory budget (backpressure) ---------------------------------------
  /// Cap the queue's live segment footprint at roughly `bytes` (0 =
  /// unlimited). Producers that would grow the queue past the cap enter a
  /// cooperative, cancellable throttle wait instead (budget_wait). Budgets
  /// below the structural minimum — kShardMinSegs segments per live producer
  /// shard, which deadlock-freedom requires — are enforced at that minimum,
  /// so any positive budget is safe and deterministic.
  void set_memory_budget(std::uint64_t bytes) noexcept;
  [[nodiscard]] std::uint64_t memory_budget() const noexcept {
    return budget_bytes_.load(std::memory_order_relaxed);
  }
  /// Bytes one segment occupies (header + slots) — the budget's unit.
  [[nodiscard]] std::uint64_t segment_bytes() const noexcept {
    return seg_bytes_;
  }

  /// Per-shard allocation floor the budget never blocks: the consumer can
  /// always drain any shard ahead of it down to its open tail segment, so a
  /// producer holding fewer than this many live segments must be allowed to
  /// link another one or backpressure could deadlock behind an unreachable
  /// shard (see budget_wait in queue_cb.cpp for the full argument).
  static constexpr std::uint32_t kShardMinSegs = 2;

  element_ops ops;
  const std::uint64_t seg_capacity;

 private:
  friend struct qattach;

  segment* alloc_segment();
  void recycle_segment(segment* s);
  pshard* alloc_shard();
  void free_shard(pshard* sh);

  /// Memory-budget throttle, called by producer paths before growing shard
  /// `sh`'s chain. Blocks (pause-only, cancellable) while the queue is at
  /// its budget — unless a structural exemption applies: the shard holds
  /// fewer than kShardMinSegs segments, or the task also has pop privilege
  /// (its own pops are what would free segments). Escapes over budget
  /// (counted) when no consumer makes recycle progress, rather than
  /// wedging a schedule that cannot interleave the consumer.
  void budget_wait(qattach* a, pshard* sh);

  /// Splice `count` (1 or 2) pre-linked shards after the spawner's current
  /// shard `sp` and close it. first..last must already be chained via their
  /// next pointers; the caller is the task owning sp.
  static void splice_after(pshard* sp, pshard* first, pshard* last);

  /// The last shard of `a`'s visible range (inclusive): a push-capable
  /// task's own current shard, a pop-only task's spawn-frozen end.
  static pshard* scan_end(const qattach* a) {
    return (a->priv & kPrivPush) != 0 ? a->my_shard : a->end_shard;
  }

  /// Make sure `a` holds the scan position, claiming it from ancestors (it
  /// is in flight back to an ancestor after an older consumer completed).
  void ensure_pos(qattach* a);

  /// Block (helping) until data is readable (returns segment) or emptiness
  /// is definitive (returns null). Caches the result in a->ready_seg.
  segment* wait_data(qattach* a);

  /// Consumer entry point shared by empty/pop/read_slice: the lock-free
  /// ready-segment fast path, falling back to wait_data. Force-inlined into
  /// the per-element entry points — a call here costs as much as the hint
  /// saves.
  [[gnu::always_inline]] inline segment* consumer_ready(qattach* a) {
    segment* s = a->ready_seg;
    // The hint is only a short-circuit: it must still be the scan-position
    // segment (acquire on live_pop_children pairs with the completion
    // hand-back) and still hold readable data. Anything else re-runs the
    // full path.
    if (s != nullptr && a->live_pop_children.load(std::memory_order_acquire) == 0 &&
        a->has_pos && s == a->pos_seg && s->readable()) [[likely]] {
      return s;
    }
    return wait_data(a);
  }

  std::atomic<long> refs{1};
  /// Pop-side structure lock: pop-FIFO registration, scan-position
  /// transfers, and nothing else. The producer path never takes it.
  std::mutex mu;
  qattach* owner = nullptr;

  spinlock free_mu;
  segment* free_list = nullptr;  // chained through segment::next
  /// One-slot lock-free front of the segment pool: the steady-state ring
  /// recycle (consumer drains -> recycles, producer allocates next wrap)
  /// exchanges through this cell and never touches free_mu.
  std::atomic<segment*> seg_cache_{nullptr};
  std::atomic<std::uint64_t> seg_live{0};
  /// Arena node for fresh segments (-1 = allocating worker's home node).
  std::atomic<int> home_node_{-1};

  // Pool statistics (relaxed: monitoring only, never load-bearing).
  std::atomic<std::uint64_t> seg_fresh{0};
  std::atomic<std::uint64_t> seg_recycled{0};
  std::atomic<std::uint64_t> seg_in_use{0};
  std::atomic<std::uint64_t> seg_high_water{0};

  // Memory budget (see set_memory_budget / budget_wait). seg_bytes_ is the
  // per-segment footprint fixed at construction; budget_segs_ the cap
  // translated into segments (0 = unlimited), what the throttle actually
  // compares against seg_in_use.
  const std::uint64_t seg_bytes_;
  std::atomic<std::uint64_t> budget_bytes_{0};
  std::atomic<std::uint64_t> budget_segs_{0};
  std::atomic<std::uint64_t> throttle_waits_{0};
  std::atomic<std::uint64_t> throttle_ns_{0};
  std::atomic<std::uint64_t> budget_overruns_{0};
  // Live / high-water producer-shard population: each live shard may hold
  // up to kShardMinSegs budget-exempt segments, so the peak bounds how far
  // above the budget an overrun-free run can legitimately sit.
  std::atomic<std::uint64_t> shards_live_{0};
  std::atomic<std::uint64_t> shards_peak_{0};
  /// Yield-phase iterations without any recycle progress before a budget
  /// wait escapes over budget instead of risking a wedged schedule (only
  /// reached when no worker can run the consumer; see budget_wait).
  static constexpr std::uint32_t kBudgetPatience = 1024;

  /// Slow-event counters (see data_path_stats); segments hold a pointer.
  mutable data_path_counters dp_;
};

}  // namespace hq::detail
