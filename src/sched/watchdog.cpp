#include "sched/watchdog.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <vector>

#include "sched/scheduler.hpp"

namespace hq {

watchdog::watchdog(scheduler& s, options o) : sched_(s), opt_(o) {
  thread_ = std::thread([this] { monitor(); });
}

watchdog::~watchdog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t watchdog::progress() const {
  // Throttle-wait iterations count as progress: a producer parked on a
  // queue's memory budget is backpressure working as designed, not a stall.
  // (Its wait loop ticks continuously, so a run where only throttled
  // producers remain keeps the watchdog quiet; if the budget wait itself
  // deadlocked — a runtime bug — the tick would stop and the watchdog still
  // fires.)
  const auto st = sched_.stats();
  return st.spawns + st.executed + st.throttle_waits;
}

std::string watchdog::report(std::uint64_t last_progress) const {
  const auto st = sched_.stats();
  std::ostringstream os;
  os << "watchdog: no scheduler progress for "
     << opt_.interval.count() << " ms (spawns+executed+throttle stuck at "
     << last_progress << ")\n";
  os << "  injector depth " << sched_.injector_depth() << ", parked workers "
     << sched_.idle_workers() << "/" << sched_.num_workers()
     << ", cancelling=" << (sched_.cancelled() ? "yes" : "no")
     << ", throttle waits " << st.throttle_waits << " ("
     << st.throttle_ns / 1000000 << " ms total)\n";
  for (const auto& w : sched_.per_worker_stats()) {
    os << "  worker " << w.worker << ": cpu " << w.cpu << " node " << w.node
       << (w.pinned ? " pinned" : " unpinned") << ", deque depth "
       << w.deque_depth << ", spawns " << w.spawns << ", executed "
       << w.executed << ", steals " << w.steals << "/" << w.steal_attempts
       << " attempts, helps " << w.helps;
    if (w.blocked_on_budget != nullptr)
      os << ", blocked_on: budget(queue@" << w.blocked_on_budget << ")";
    os << "\n";
  }
  return os.str();
}

void watchdog::monitor() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t last = progress();
  unsigned stalled_intervals = 0;
  while (!stop_) {
    if (cv_.wait_for(lk, opt_.interval, [&] { return stop_; })) break;
    const std::uint64_t now = progress();
    if (now != last) {
      last = now;
      stalled_intervals = 0;
      continue;
    }
    ++stalled_intervals;
    if (!fired_.load(std::memory_order_relaxed)) {
      // First detection: cancel the run cooperatively. Every cancellable
      // wait unwinds and run() rethrows the diagnostic on the caller.
      fired_.store(true, std::memory_order_release);
      sched_.record_failure(
          std::make_exception_ptr(stall_error(report(last))));
    } else if (stalled_intervals > opt_.grace_intervals) {
      // Cancellation did not unblock the run: some wait is not polling the
      // epoch — a runtime bug. Dump and abort rather than hang forever.
      if (opt_.hard_abort) {
        std::string rep = report(last);
        std::fprintf(stderr,
                     "watchdog: run still stalled %u intervals after "
                     "cancellation, aborting\n%s",
                     stalled_intervals, rep.c_str());
        std::fflush(stderr);
        std::abort();
      }
    }
  }
}

}  // namespace hq
