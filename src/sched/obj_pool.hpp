// Per-worker slab + magazine allocator for the runtime's fixed-size
// hot-path records (task frames, hyperqueue attachments, producer shards).
//
// Every spawn allocates one task_frame (plus, per queue argument, one
// qattach and up to two pshard records), and every completion frees them —
// on whichever worker happened to run finish(). Shards are additionally
// freed by the consumer as its scan passes them, which is exactly the
// cross-worker return path below. A global new/delete pair on that path
// serializes all workers on the allocator; this pool removes it:
//
//  * each worker owns a magazine: a singly-linked freelist touched only by
//    that worker (no synchronization on the alloc fast path), refilled by
//    carving cache-aligned blocks out of per-worker slabs;
//  * a block freed by a *different* worker is pushed onto the allocating
//    magazine's MPSC return stack (one release-CAS), bounded by `cap` —
//    beyond it the block migrates to the freeing worker's own freelist
//    instead of piling up at one owner;
//  * the owner adopts its whole return stack in one exchange when its local
//    list runs dry, so steady-state pipelines (producer spawns on one
//    worker, consumer finishes on another) recirculate a bounded working
//    set with zero mallocs.
//
// Topology awareness: each magazine has a home NUMA node (the node its
// worker is pinned to). The magazine record itself and all of its slabs
// are mmap-backed and bound to that node (core/numa.hpp; first-touch
// fallback when binding is unavailable), so a worker's frames, shards and
// attachments live in node-local memory. Slabs are fixed-size and aligned
// to their own size, with the home node stamped in a header line — any
// block finds its memory's node with one mask + load, which is how the
// node_local_allocs / remote_allocs counters attribute every pool-served
// allocation. Remote allocs appear only when the bounded-return overflow
// path migrates a block across nodes: under single-node pinning the remote
// count is exactly zero, and tests gate on that.
//
// Total pool memory is bounded by the peak number of simultaneously live
// blocks (slabs never shrink before the pool dies); the cap only bounds the
// return-stack length. Fresh-block and high-water accounting happens only
// on the slab-carve slow path; per-magazine counters live on owner lines.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "conc/cache.hpp"
#include "conc/spinlock.hpp"
#include "core/fault.hpp"
#include "core/numa.hpp"

namespace hq::detail {

/// Magazine index for blocks allocated outside any worker of the owning
/// scheduler (e.g. root frames launched from an external thread). Such
/// blocks bypass the pool: plain heap round trip.
inline constexpr unsigned kPoolExternal = ~0u;

class obj_pool {
 public:
  /// Counters mirroring seg_pool_stats (core/queue_cb.hpp): a well-behaved
  /// steady-state pipeline plateaus `allocated` while `recycled` grows.
  struct stats_t {
    std::uint64_t allocated = 0;   ///< fresh blocks ever carved / heap-allocated
    std::uint64_t recycled = 0;    ///< allocation requests served by a magazine
    /// Peak `live` observed at the sampling points (fresh-block slow paths
    /// and stats() calls). Exact tracking would put a shared counter on
    /// every alloc — the contention this pool exists to remove — so bursts
    /// served purely from magazines between samples can exceed it.
    std::uint64_t high_water = 0;
    std::uint64_t live = 0;        ///< blocks currently in use
    /// Locality attribution of every magazine-served allocation: the block's
    /// memory (slab home node) matched / did not match the allocating
    /// worker's home node. Remote blocks exist only via cross-node return-
    /// stack overflow migration; node_local + remote equals the magazine-
    /// served share of allocated + recycled (external-thread heap blocks
    /// are not attributed).
    std::uint64_t node_local_allocs = 0;
    std::uint64_t remote_allocs = 0;
  };

  obj_pool() = default;
  obj_pool(const obj_pool&) = delete;
  obj_pool& operator=(const obj_pool&) = delete;

  /// One-time setup (the worker count is only known in the scheduler ctor
  /// body). `cap` bounds each magazine's cross-worker return stack;
  /// `home_nodes`, when non-empty, gives each worker magazine's NUMA node
  /// (size must then equal num_workers; -1 entries mean "unplaced", which
  /// keeps all accounting node-0-like and never binds memory).
  void init(unsigned num_workers, std::size_t block_bytes, std::size_t cap,
            const std::vector<int>& home_nodes = {}) {
    assert(mags_.empty() && "obj_pool::init called twice");
    assert(home_nodes.empty() || home_nodes.size() == num_workers);
    block_bytes_ = (block_bytes + kCacheLine - 1) / kCacheLine * kCacheLine;
    assert(block_bytes_ <= kSlabBytes - kCacheLine && "block exceeds slab size");
    cap_ = cap;
    mags_.reserve(num_workers);
    for (unsigned w = 0; w < num_workers; ++w) {
      const int node = home_nodes.empty() ? -1 : home_nodes[w];
      // The magazine record itself is node-homed and page-isolated: the
      // cross-worker return-stack heads of different workers must never
      // share an allocation, let alone a node (they are written remotely
      // under contention).
      void* mem = numa::alloc(sizeof(magazine), alignof(magazine), node);
      auto* m = ::new (mem) magazine();
      m->home_node = node;
      mags_.push_back(m);
    }
  }

  ~obj_pool() {
    assert(stats().live == 0 && "obj_pool destroyed with blocks still in use");
    for (magazine* m : mags_) {
      for (void* s : m->slabs) numa::free(s, kSlabBytes, kSlabBytes);
      m->~magazine();
      numa::free(m, sizeof(magazine), alignof(magazine));
    }
    while (ext_free_ != nullptr) {
      free_block* n = ext_free_->next;
      ::operator delete(static_cast<void*>(ext_free_), std::align_val_t{kCacheLine});
      ext_free_ = n;
    }
  }

  /// Allocate one block on behalf of magazine `worker` (kPoolExternal for
  /// non-worker threads). Only the owning worker may pass its own index.
  void* alloc(unsigned worker) {
    if (worker == kPoolExternal) return external_alloc();
    magazine& m = *mags_[worker];
    if (m.local == nullptr) adopt_returns(m);
    void* p;
    if (free_block* b = m.local) {
      m.local = b->next;
      m.recycled.fetch_add(1, std::memory_order_relaxed);
      p = b;
    } else {
      p = carve(m);
    }
    // Locality attribution: one mask + one read-only load on the slab
    // header line. The counters are owner-written, stats()-read.
    if (slab_node(p) == m.home_node) {
      m.node_local.fetch_add(1, std::memory_order_relaxed);
    } else {
      m.remote.fetch_add(1, std::memory_order_relaxed);
    }
    return p;
  }

  /// Return a block to the pool. `owner` is the magazine recorded at alloc
  /// time, `freeing` the calling worker's index (kPoolExternal when not a
  /// worker): the same-worker path pushes locally, any other thread uses the
  /// owner's bounded return stack.
  void free(void* p, unsigned owner, unsigned freeing) {
    if (owner == kPoolExternal) {
      external_discard(p);
      return;
    }
    auto* b = ::new (p) free_block{nullptr};
    if (freeing != kPoolExternal) {
      magazine& f = *mags_[freeing];
      f.freed.fetch_add(1, std::memory_order_relaxed);
      if (owner == freeing ||
          mags_[owner]->return_count.load(std::memory_order_relaxed) >= cap_) {
        // Same-worker free, or the owner's return stack is full: keep the
        // block here. Blocks are interchangeable, so ownership migrates to
        // this magazine the next time the block is handed out — across
        // nodes this is the one path that creates remote_allocs.
        b->next = f.local;
        f.local = b;
        return;
      }
    } else {
      // External thread: no magazine of its own to absorb an over-cap
      // return, and slab-carved blocks must never reach the heap, so the
      // block goes back to the owner regardless — the cap is soft on this
      // path. Cold in practice: frames and attachments are freed in
      // finish(), which always runs on a worker.
      mags_[owner]->freed.fetch_add(1, std::memory_order_relaxed);
    }
    // Bounded cross-worker return (frames are freed by whichever worker ran
    // finish()). The count is approximate — concurrent frees may overshoot
    // by a thread count, which only makes the bound slightly soft.
    magazine& m = *mags_[owner];
    m.return_count.fetch_add(1, std::memory_order_relaxed);
    free_block* head = m.returns.load(std::memory_order_relaxed);
    do {
      b->next = head;
    } while (!m.returns.compare_exchange_weak(head, b, std::memory_order_release,
                                              std::memory_order_relaxed));
  }

  [[nodiscard]] stats_t stats() const {
    stats_t s;
    std::uint64_t freed = 0;
    for (const magazine* m : mags_) {
      s.allocated += m->carved.load(std::memory_order_relaxed);
      s.recycled += m->recycled.load(std::memory_order_relaxed);
      s.node_local_allocs += m->node_local.load(std::memory_order_relaxed);
      s.remote_allocs += m->remote.load(std::memory_order_relaxed);
      freed += m->freed.load(std::memory_order_relaxed);
    }
    s.allocated += ext_fresh_.load(std::memory_order_relaxed);
    s.recycled += ext_recycled_.load(std::memory_order_relaxed);
    freed += ext_freed_.load(std::memory_order_relaxed);
    // The per-magazine counters are read without synchronization, so a
    // mid-flight snapshot can transiently observe a free before the
    // matching alloc; clamp instead of wrapping (live is monitoring-only,
    // and high_ is monotonic — a wrapped value would stick forever).
    const std::uint64_t alloc_total = s.allocated + s.recycled;
    s.live = alloc_total >= freed ? alloc_total - freed : 0;
    // Every stats() call is itself a sampling point for the observed peak.
    std::uint64_t hw = high_.load(std::memory_order_relaxed);
    while (s.live > hw &&
           !high_.compare_exchange_weak(hw, s.live, std::memory_order_relaxed)) {
    }
    s.high_water = std::max(hw, s.live);
    return s;
  }

 private:
  struct free_block {
    free_block* next;
  };

  /// First cache line of every slab; blocks start at the next line. A block
  /// pointer masked down to the slab boundary lands here, making the memory
  /// node of any pool block a one-load lookup.
  struct slab_header {
    int node;
  };

  struct magazine {
    // Owner-worker lines: freelist, slab cursor and counters are only ever
    // written by the owning worker (counters are read by stats()).
    free_block* local = nullptr;
    char* slab_pos = nullptr;
    char* slab_end = nullptr;
    int home_node = -1;
    std::vector<void*> slabs;
    std::atomic<std::uint64_t> carved{0};    // fresh blocks cut from slabs
    std::atomic<std::uint64_t> recycled{0};  // allocs served from freelists
    std::atomic<std::uint64_t> freed{0};     // frees executed by this worker
    std::atomic<std::uint64_t> node_local{0};
    std::atomic<std::uint64_t> remote{0};
    // Shared line: cross-worker returns land here (MPSC Treiber stack; the
    // owner pops everything at once, so there is no ABA window).
    alignas(kCacheLine) std::atomic<free_block*> returns{nullptr};
    std::atomic<std::size_t> return_count{0};
  };

  /// Slabs are fixed-size and self-aligned so the header lookup is a mask.
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 16;  // 64 KiB

  static int slab_node(const void* p) noexcept {
    const auto* h = reinterpret_cast<const slab_header*>(
        reinterpret_cast<std::uintptr_t>(p) & ~(kSlabBytes - 1));
    return h->node;
  }

  /// Adopt the entire return stack into the local freelist. The acquire
  /// exchange synchronizes with every pusher's release-CAS (they form one
  /// release sequence), so the adopted blocks' memory is safe to reuse.
  void adopt_returns(magazine& m) {
    free_block* r = m.returns.exchange(nullptr, std::memory_order_acquire);
    if (r == nullptr) return;
    std::size_t k = 1;
    free_block* tail = r;
    while (tail->next != nullptr) {
      tail = tail->next;
      ++k;
    }
    m.return_count.fetch_sub(k, std::memory_order_relaxed);
    tail->next = m.local;
    m.local = r;
  }

  /// Slow path: cut a fresh cache-aligned block out of the worker's slab,
  /// mapping a fresh node-bound slab when exhausted.
  void* carve(magazine& m) {
    if (m.slab_pos == m.slab_end) {
      if (fault::failpoint("pool.slab")) throw std::bad_alloc();
      void* slab = numa::alloc(kSlabBytes, kSlabBytes, m.home_node);
      static_cast<slab_header*>(slab)->node = m.home_node;
      m.slabs.push_back(slab);
      m.slab_pos = static_cast<char*>(slab) + kCacheLine;
      const std::size_t usable = kSlabBytes - kCacheLine;
      m.slab_end = m.slab_pos + usable / block_bytes_ * block_bytes_;
    }
    void* p = m.slab_pos;
    m.slab_pos += block_bytes_;
    m.carved.fetch_add(1, std::memory_order_relaxed);
    note_high_water();
    return p;
  }

  /// External threads (no magazine) recycle through a tiny spinlock-guarded
  /// freelist — cold path, one root frame per scheduler::run(). These blocks
  /// are plain heap memory (never slab-carved), so they carry no node tag
  /// and stay out of the locality counters.
  void* external_alloc() {
    {
      std::lock_guard<spinlock> lk(ext_mu_);
      if (free_block* b = ext_free_) {
        ext_free_ = b->next;
        ext_recycled_.fetch_add(1, std::memory_order_relaxed);
        return b;
      }
    }
    ext_fresh_.fetch_add(1, std::memory_order_relaxed);
    note_high_water();
    return ::operator new(block_bytes_, std::align_val_t{kCacheLine});
  }

  void external_discard(void* p) {
    auto* b = ::new (p) free_block{nullptr};
    ext_freed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<spinlock> lk(ext_mu_);
    b->next = ext_free_;
    ext_free_ = b;
  }

  /// Record a high-water sample. Called on fresh-block paths (where the
  /// local working set just grew) — cross-magazine recycling bursts between
  /// samples are intentionally not tracked; see stats_t::high_water.
  void note_high_water() { (void)stats(); }

  std::size_t block_bytes_ = 0;
  std::size_t cap_ = 0;
  std::vector<magazine*> mags_;
  // External-thread blocks and the high-water mark: slow paths only, never
  // touched by the recycling fast path.
  spinlock ext_mu_;
  free_block* ext_free_ = nullptr;
  std::atomic<std::uint64_t> ext_fresh_{0}, ext_recycled_{0}, ext_freed_{0};
  mutable std::atomic<std::uint64_t> high_{0};  // stats() records samples
};

}  // namespace hq::detail
