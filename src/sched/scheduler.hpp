// Work-stealing task scheduler (the Swan-style substrate of the paper).
//
// Help-first spawning: spawn() enqueues the child on the calling worker's
// Chase–Lev deque and the parent continues; idle workers steal oldest-first.
// All waiting primitives (sync, blocking hyperqueue operations) re-enter the
// scheduler through help_one()/wait_until(), so a "blocked" worker keeps
// executing ready tasks — this realizes the paper's block-the-worker policy
// (Section 4.5) without losing progress, and makes single-worker execution
// of pipelines deadlock-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "conc/backoff.hpp"
#include "conc/chase_lev_deque.hpp"
#include "sched/task.hpp"
#include "sched/task_fn.hpp"

namespace hq {

namespace detail {

struct worker_ctx {
  scheduler* sched = nullptr;
  unsigned index = 0;
  chase_lev_deque<task_frame> deque;
  std::uint64_t rng = 0;
  task_frame* current = nullptr;
};

}  // namespace detail

/// Work-stealing scheduler over a fixed pool of worker threads. Construct
/// once, call run() any number of times (serially) — workers park in between.
class scheduler {
 public:
  /// @param num_workers worker thread count (>=1); this is the paper's "core
  /// count" knob. Defaults to hardware concurrency.
  explicit scheduler(unsigned num_workers = 0);
  ~scheduler();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  /// Execute `f` as the root task and block until it (and all transitively
  /// spawned tasks) complete. Must not be called from inside a task.
  template <typename F>
  void run(F&& f) {
    run_root(task_fn(std::forward<F>(f)));
  }

  [[nodiscard]] unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Scheduler of the calling worker thread (null on external threads).
  static scheduler* current() noexcept;

  /// Monotonic event counters, for the overhead benches.
  struct stats_t {
    std::uint64_t spawns = 0;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t helps = 0;  // tasks executed inside a wait
  };
  [[nodiscard]] stats_t stats() const;
  void reset_stats();
  void count_spawn();

  // ------------- internal API (spawn/sync/hyperqueue machinery) -----------

  /// Make a ready frame available for execution.
  void enqueue(detail::task_frame* t);

  /// Execute one ready task if any is available. Returns false when no task
  /// could be obtained (the caller should back off).
  bool help_one();

  /// Help-while-blocked wait: run ready tasks until `p()` holds.
  template <typename Pred>
  void wait_until(Pred&& p) {
    backoff bo;
    while (!p()) {
      if (help_one()) {
        bo.reset();
      } else {
        bo.pause();
      }
    }
  }

 private:
  friend struct detail::worker_ctx;

  void run_root(task_fn fn);
  void worker_main(unsigned index);
  detail::task_frame* find_task(detail::worker_ctx& w);
  detail::task_frame* try_steal(detail::worker_ctx& w);
  void execute(detail::task_frame* t);
  void finish(detail::task_frame* t);
  void satisfy(detail::task_frame* t);
  void wake_idle();

  std::vector<std::unique_ptr<detail::worker_ctx>> workers_;
  std::vector<std::thread> threads_;

  // External / overflow submission channel.
  std::mutex inj_mu_;
  std::deque<detail::task_frame*> injector_;

  // Idle-worker parking.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int> num_idle_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> stop_{false};

  // Root-completion signalling for run().
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool root_done_ = false;

  std::atomic<std::uint64_t> st_spawns_{0}, st_executed_{0}, st_steals_{0},
      st_steal_attempts_{0}, st_helps_{0};
};

}  // namespace hq
