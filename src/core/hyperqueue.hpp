// hyperqueue<T> — the paper's programming abstraction (Section 2).
//
// A hyperqueue is a deterministic single-producer single-consumer queue
// whose *implementation* lets many tasks push concurrently (private
// producer shards, merged in the spawn-order scan list — core/view.hpp)
// and one task pop concurrently with the pushes, while the consumer
// observes exactly the serial-elision value order. Producers never take a
// lock: push, write_slice, push-privileged spawn and completion are all
// lock-free at any producer count.
//
// Usage mirrors Figure 2 of the paper:
//
//   void producer(hq::pushdep<data> q, int lo, int hi);
//   void consumer(hq::popdep<data> q) {
//     while (!q.empty()) { data d = q.pop(); ... }
//   }
//   ...
//   hq::hyperqueue<data> queue;
//   hq::spawn(producer, (hq::pushdep<data>)queue, 0, total);
//   hq::spawn(consumer, (hq::popdep<data>)queue);
//   hq::sync();
//
// Access modes: pushdep (push only), popdep (empty/pop only), pushpopdep
// (both). Tasks may pass a subset of their own privileges to children.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "core/queue_cb.hpp"
#include "sched/task.hpp"

namespace hq {

template <typename T>
class pushdep;
template <typename T>
class popdep;
template <typename T>
class pushpopdep;

/// Segment-pool counters (see detail::seg_pool_stats), re-exported for
/// tests and benches.
using seg_pool_stats = detail::seg_pool_stats;

/// Data-path slow-event counters (see detail::data_path_stats): remote
/// index reloads and mutex acquisitions on the element path. The fast path
/// increments none of them.
using data_path_stats = detail::data_path_stats;

namespace detail {

/// T qualifies for the batched memcpy transfer path: relocation (move +
/// destroy source) is equivalent to a byte copy.
template <typename T>
inline constexpr bool is_trivially_relocatable_v =
    std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>;

template <typename T>
element_ops make_element_ops() {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "hyperqueue elements must be nothrow move constructible");
  element_ops ops;
  ops.size = sizeof(T);
  ops.align = alignof(T);
  ops.trivial_copy = is_trivially_relocatable_v<T>;
  ops.trivial_destroy = std::is_trivially_destructible_v<T>;
  ops.move_construct = [](void* dst, void* src) noexcept {
    ::new (dst) T(std::move(*static_cast<T*>(src)));
  };
  ops.destroy = [](void* p) noexcept { static_cast<T*>(p)->~T(); };
  ops.move_construct_n = [](void* dst, void* src, std::size_t n) noexcept {
    T* d = static_cast<T*>(dst);
    T* s = static_cast<T*>(src);
    for (std::size_t i = 0; i < n; ++i) ::new (d + i) T(std::move(s[i]));
  };
  ops.destroy_n = [](void* p, std::size_t n) noexcept {
    T* e = static_cast<T*>(p);
    for (std::size_t i = 0; i < n; ++i) e[i].~T();
  };
  return ops;
}

/// Shared implementation of the typed element operations over the raw
/// control-block interface.
template <typename T>
struct typed_ops {
  static void push(queue_cb* cb, T value) {
    cb->push(&value);  // moved out; `value` is destroyed as a moved-from shell
  }
  static T pop(queue_cb* cb) {
    alignas(T) std::byte buf[sizeof(T)];
    cb->pop(buf);
    T* p = std::launder(reinterpret_cast<T*>(buf));
    T out = std::move(*p);
    p->~T();
    return out;
  }
};

}  // namespace detail

/// Contiguous write window into a hyperqueue segment (Section 5.2): as fast
/// as array stores. Fill slots [0, size()) in order, then commit(n).
template <typename T>
class write_slice {
 public:
  using value_type = T;

  write_slice(detail::queue_cb* cb, T* data, std::size_t n)
      : cb_(cb), data_(data), size_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Construct the i-th element of the slice.
  template <typename... Args>
  void emplace(std::size_t i, Args&&... args) {
    assert(i < size_ && i == filled_ && "fill write slices in order");
    ::new (static_cast<void*>(data_ + i)) T(std::forward<Args>(args)...);
    ++filled_;
  }

  /// Batched append for trivially-relocatable element types: one memcpy for
  /// `n` elements after the already-filled prefix (Section 5.2 bulk path).
  void fill(const T* src, std::size_t n) {
    static_assert(detail::is_trivially_relocatable_v<T>,
                  "fill() is the trivial-type bulk path; use emplace()");
    assert(filled_ + n <= size_);
    std::memcpy(static_cast<void*>(data_ + filled_), src, n * sizeof(T));
    filled_ += n;
  }

  [[nodiscard]] std::size_t filled() const noexcept { return filled_; }

  /// Publish the first `n` elements (defaults to all filled). A prefix
  /// commit (n < filled()) destroys the constructed-but-uncommitted tail
  /// elements; the consumer only ever observes the first n. Either way the
  /// slice is spent afterwards: obtain a new one to keep producing.
  void commit() { commit(filled_); }
  void commit(std::size_t n) {
    assert(n <= filled_);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (std::size_t i = n; i < filled_; ++i) data_[i].~T();
    }
    cb_->commit_write(n);
    size_ = 0;
    filled_ = 0;
  }

 private:
  detail::queue_cb* cb_;
  T* data_;
  std::size_t size_;
  std::size_t filled_ = 0;
};

/// Contiguous read window (Section 5.2): all elements are ready. Consume
/// [0, size()), then release().
template <typename T>
class read_slice {
 public:
  read_slice(detail::queue_cb* cb, T* data, std::size_t n)
      : cb_(cb), data_(data), size_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  /// Mutable access: the consumer owns the elements until release(); a stage
  /// may transform them in place or move them out (release() destroys the
  /// moved-from shells).
  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }

  /// Retire all remaining elements from the queue.
  void release() { release(size_); }

  /// Retire only the first `n` elements; the slice shrinks to the remaining
  /// suffix, which stays valid (and un-consumed) so a stage can stop
  /// mid-slice at a work boundary and pick up where it left off.
  void release(std::size_t n) {
    assert(n <= size_);
    if (n == 0) return;
    cb_->commit_read(n);
    data_ += n;
    size_ -= n;
  }

 private:
  detail::queue_cb* cb_;
  T* data_;
  std::size_t size_;
};

/// Bulk producer idiom (Section 5.2): move [first, last) into `q` through
/// write slices, requesting at most `batch` slots per slice and looping on
/// the (possibly short) grants. Works with any push-capable handle
/// (pushdep, pushpopdep, hyperqueue).
template <typename Q, typename It>
void push_slices(Q& q, It first, It last, std::size_t batch) {
  using V = typename std::iterator_traits<It>::value_type;
  while (first != last) {
    const auto remain = static_cast<std::size_t>(last - first);
    auto ws = q.get_write_slice(batch < remain ? batch : remain);
    const std::size_t n = ws.size();
    if constexpr (std::contiguous_iterator<It> &&
                  std::is_same_v<V, typename decltype(ws)::value_type> &&
                  detail::is_trivially_relocatable_v<V>) {
      // Trivial-type batching: one memcpy per granted slice.
      ws.fill(std::to_address(first), n);
      first += static_cast<std::ptrdiff_t>(n);
    } else {
      for (std::size_t i = 0; i < n; ++i, ++first) {
        ws.emplace(i, std::move(*first));
      }
    }
    ws.commit();
  }
}

namespace detail {

/// Common base of the access-mode wrappers: shares the control block.
class dep_base {
 public:
  dep_base() = default;
  explicit dep_base(queue_cb* cb) : cb_(cb) {
    if (cb_ != nullptr) cb_->add_ref();
  }
  dep_base(const dep_base& o) : cb_(o.cb_) {
    if (cb_ != nullptr) cb_->add_ref();
  }
  dep_base(dep_base&& o) noexcept : cb_(o.cb_) { o.cb_ = nullptr; }
  dep_base& operator=(const dep_base& o) {
    if (this != &o) {
      if (o.cb_ != nullptr) o.cb_->add_ref();
      if (cb_ != nullptr) cb_->release();
      cb_ = o.cb_;
    }
    return *this;
  }
  dep_base& operator=(dep_base&& o) noexcept {
    if (this != &o) {
      if (cb_ != nullptr) cb_->release();
      cb_ = o.cb_;
      o.cb_ = nullptr;
    }
    return *this;
  }
  ~dep_base() {
    if (cb_ != nullptr) cb_->release();
  }

 protected:
  queue_cb* cb_ = nullptr;
};

}  // namespace detail

/// Push-only access mode: the spawned task may append values.
template <typename T>
class pushdep : public detail::dep_base {
 public:
  pushdep() = default;
  explicit pushdep(detail::queue_cb* cb) : dep_base(cb) {}

  /// Append a value; exposed to any consumer in serial program order.
  void push(T value) { detail::typed_ops<T>::push(cb_, std::move(value)); }

  /// Reserve up to `want` contiguous slots (Section 5.2).
  write_slice<T> get_write_slice(std::size_t want) {
    std::uint64_t n = 0;
    void* p = cb_->write_slice(want, &n);
    return write_slice<T>(cb_, static_cast<T*>(p), static_cast<std::size_t>(n));
  }

  /// Spawn-argument resolution: attach the child task with push privileges.
  pushdep hq_dep_resolve(detail::task_frame* fr) const {
    cb_->attach_spawn(fr, detail::kPrivPush);
    return *this;
  }
};

/// Pop-only access mode: the spawned task may test emptiness and pop.
template <typename T>
class popdep : public detail::dep_base {
 public:
  popdep() = default;
  explicit popdep(detail::queue_cb* cb) : dep_base(cb) {}

  /// False when a value is available; true only when no older producer can
  /// still push (mimics sequential execution; blocks until certain).
  bool empty() { return cb_->empty(); }

  /// Remove the next value. Popping an empty queue is a program error.
  T pop() { return detail::typed_ops<T>::pop(cb_); }

  /// Up to `want` ready elements, contiguous (Section 5.2); empty slice at
  /// definitive end-of-queue.
  read_slice<T> get_read_slice(std::size_t want) {
    std::uint64_t n = 0;
    void* p = cb_->read_slice(want, &n);
    return read_slice<T>(cb_, static_cast<T*>(p), static_cast<std::size_t>(n));
  }

  /// Batched pop for trivially-relocatable element types: relocates up to
  /// `max` ready elements into `out` (one memcpy per contiguous run).
  /// Returns the count transferred; 0 only at definitive end-of-queue.
  std::size_t pop_bulk(T* out, std::size_t max) {
    static_assert(detail::is_trivially_relocatable_v<T>,
                  "pop_bulk is the trivial-type bulk path; use pop()/read_slice");
    return static_cast<std::size_t>(cb_->pop_n(out, max));
  }

  popdep hq_dep_resolve(detail::task_frame* fr) const {
    cb_->attach_spawn(fr, detail::kPrivPop);
    return *this;
  }
};

/// Combined push/pop access mode.
template <typename T>
class pushpopdep : public detail::dep_base {
 public:
  pushpopdep() = default;
  explicit pushpopdep(detail::queue_cb* cb) : dep_base(cb) {}

  void push(T value) { detail::typed_ops<T>::push(cb_, std::move(value)); }
  bool empty() { return cb_->empty(); }
  T pop() { return detail::typed_ops<T>::pop(cb_); }
  write_slice<T> get_write_slice(std::size_t want) {
    std::uint64_t n = 0;
    void* p = cb_->write_slice(want, &n);
    return write_slice<T>(cb_, static_cast<T*>(p), static_cast<std::size_t>(n));
  }
  read_slice<T> get_read_slice(std::size_t want) {
    std::uint64_t n = 0;
    void* p = cb_->read_slice(want, &n);
    return read_slice<T>(cb_, static_cast<T*>(p), static_cast<std::size_t>(n));
  }
  std::size_t pop_bulk(T* out, std::size_t max) {
    static_assert(detail::is_trivially_relocatable_v<T>,
                  "pop_bulk is the trivial-type bulk path; use pop()/read_slice");
    return static_cast<std::size_t>(cb_->pop_n(out, max));
  }

  pushpopdep hq_dep_resolve(detail::task_frame* fr) const {
    cb_->attach_spawn(fr, detail::kPrivPush | detail::kPrivPop);
    return *this;
  }
};

/// The hyperqueue variable. Must be constructed inside a task (typically the
/// pipeline driver); the constructing task is the owner and holds both push
/// and pop privileges, so it may use the queue directly (Figure 6).
template <typename T>
class hyperqueue {
 public:
  /// @param segment_length elements per queue segment (Section 5.1 tuning
  /// knob); rounded up to a power of two.
  explicit hyperqueue(std::size_t segment_length = kDefaultSegmentLength)
      : cb_(new detail::queue_cb(detail::make_element_ops<T>(), segment_length)) {
    attach_or_release();
  }

  /// As above, with the queue's segment arenas pinned to NUMA node
  /// `home_node` (e.g. the consumer stage's node from plan_queue_placement,
  /// sched/partition.hpp). home_node < 0 = the default follow-the-allocating-
  /// worker behavior.
  hyperqueue(std::size_t segment_length, int home_node)
      : cb_(new detail::queue_cb(detail::make_element_ops<T>(), segment_length)) {
    cb_->set_home_node(home_node);
    attach_or_release();
  }

  /// As above, plus a memory budget: cap the queue's live segment footprint
  /// at roughly `memory_budget_bytes` (0 = the HQ_QUEUE_BUDGET environment
  /// default, itself unlimited when unset). Producers that would grow the
  /// queue past the cap block cooperatively until the consumer recycles
  /// segments — deterministic backpressure, not data loss. Budgets below
  /// the structural minimum are enforced at it.
  hyperqueue(std::size_t segment_length, int home_node,
             std::uint64_t memory_budget_bytes)
      : cb_(new detail::queue_cb(detail::make_element_ops<T>(), segment_length,
                                 memory_budget_bytes)) {
    cb_->set_home_node(home_node);
    attach_or_release();
  }

  hyperqueue(const hyperqueue&) = delete;
  hyperqueue& operator=(const hyperqueue&) = delete;

  /// Destruction waits for all tasks using the queue (helping the scheduler)
  /// and then discards any values still inside, as the paper allows.
  ~hyperqueue() {
    cb_->detach_owner();
    cb_->release();
  }

  static constexpr std::size_t kDefaultSegmentLength = 512;

  // Owner-task direct access (Figure 6 / Section 5.5 idioms).
  void push(T value) { detail::typed_ops<T>::push(cb_, std::move(value)); }
  bool empty() { return cb_->empty(); }
  T pop() { return detail::typed_ops<T>::pop(cb_); }
  write_slice<T> get_write_slice(std::size_t want) {
    std::uint64_t n = 0;
    void* p = cb_->write_slice(want, &n);
    return write_slice<T>(cb_, static_cast<T*>(p), static_cast<std::size_t>(n));
  }
  read_slice<T> get_read_slice(std::size_t want) {
    std::uint64_t n = 0;
    void* p = cb_->read_slice(want, &n);
    return read_slice<T>(cb_, static_cast<T*>(p), static_cast<std::size_t>(n));
  }
  std::size_t pop_bulk(T* out, std::size_t max) {
    static_assert(detail::is_trivially_relocatable_v<T>,
                  "pop_bulk is the trivial-type bulk path; use pop()/read_slice");
    return static_cast<std::size_t>(cb_->pop_n(out, max));
  }

  // Access-mode casts used at spawn sites, as in the paper.
  operator pushdep<T>() const { return pushdep<T>(cb_); }          // NOLINT
  operator popdep<T>() const { return popdep<T>(cb_); }            // NOLINT
  operator pushpopdep<T>() const { return pushpopdep<T>(cb_); }    // NOLINT

  /// Number of segments currently allocated (tests/benches).
  [[nodiscard]] std::size_t segments() const { return cb_->segments_allocated(); }

  /// Segment-pool counters (Section 5.1/5.2): fresh allocations, pool
  /// reuses, and the in-use high-water mark. In steady state `allocated`
  /// stops growing and equals `high_water`.
  [[nodiscard]] seg_pool_stats pool_stats() const { return cb_->pool_stats(); }

  /// Data-path slow-event counters: remote index reloads (bounded by one
  /// per segment-capacity of elements in steady state) and mutex
  /// acquisitions (zero on the fast path; mu_view and mu_attach stay 0 on
  /// the producer side — the zero-mutex-on-push contract).
  [[nodiscard]] data_path_stats data_stats() const { return cb_->data_stats(); }

  /// Re-pin fresh segment arenas to `node` (takes effect for segments
  /// allocated after the call; pooled segments keep their arena). See
  /// detail::queue_cb::set_home_node.
  void set_home_node(int node) { cb_->set_home_node(node); }
  [[nodiscard]] int home_node() const { return cb_->home_node(); }

  /// Adjust (or clear, bytes == 0) the memory budget at run time. See
  /// detail::queue_cb::set_memory_budget.
  void set_memory_budget(std::uint64_t bytes) { cb_->set_memory_budget(bytes); }
  [[nodiscard]] std::uint64_t memory_budget() const {
    return cb_->memory_budget();
  }
  /// Bytes one segment occupies — the budget's accounting unit; the live
  /// footprint in bytes is data_stats().live_bytes (= segments in use x
  /// this).
  [[nodiscard]] std::uint64_t segment_bytes() const {
    return cb_->segment_bytes();
  }

  // Selective sync (Section 5.5): suspend the calling task until its
  // children with the given access mode on this queue have completed.
  // sync_pop() is the paper's "sync (popdep<T>)queue;" — placed before
  // empty()/pop() it turns blocking into suspension. sync_queue() is Swan's
  // "sync queue;" (all children on this queue, any mode).
  void sync_pop() { cb_->sync_children(detail::kPrivPop); }
  void sync_push() { cb_->sync_children(detail::kPrivPush); }
  void sync_queue() { cb_->sync_children(0); }

 private:
  /// Ctor tail: registering the owner attachment allocates the queue's
  /// invariant-1 initial segment, which can fail (std::bad_alloc, or the
  /// injected alloc@segment.alloc fault). A throwing ctor body skips the
  /// dtor, so drop the control-block reference manually before rethrowing.
  void attach_or_release() {
    try {
      cb_->attach_owner(detail::current_frame());
    } catch (...) {
      cb_->release();
      throw;
    }
  }

  detail::queue_cb* cb_;
};

}  // namespace hq
