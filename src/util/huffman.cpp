#include "util/huffman.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace hq::util {

namespace {

struct node {
  std::uint64_t weight;
  int left = -1, right = -1;  // -1 leaves use `symbol`
  int symbol = -1;
};

void collect_depths(const std::vector<node>& nodes, int idx, unsigned depth,
                    std::uint8_t out[256]) {
  const node& n = nodes[static_cast<std::size_t>(idx)];
  if (n.symbol >= 0) {
    out[n.symbol] = static_cast<std::uint8_t>(depth == 0 ? 1 : depth);
    return;
  }
  collect_depths(nodes, n.left, depth + 1, out);
  collect_depths(nodes, n.right, depth + 1, out);
}

}  // namespace

huffman_code huffman_code::build(const std::uint64_t freq_in[256]) {
  std::uint64_t freq[256];
  std::copy(freq_in, freq_in + 256, freq);

  huffman_code hc;
  for (;;) {
    // Standard two-queue Huffman construction via priority queue.
    std::vector<node> nodes;
    using heap_entry = std::pair<std::uint64_t, int>;
    std::priority_queue<heap_entry, std::vector<heap_entry>, std::greater<>> heap;
    for (int s = 0; s < 256; ++s) {
      if (freq[s] != 0) {
        nodes.push_back(node{freq[s], -1, -1, s});
        heap.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
      }
    }
    if (nodes.empty()) throw std::runtime_error("huffman: empty input");
    while (heap.size() > 1) {
      auto [wa, a] = heap.top();
      heap.pop();
      auto [wb, b] = heap.top();
      heap.pop();
      nodes.push_back(node{wa + wb, a, b, -1});
      heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
    }
    std::fill(std::begin(hc.lengths), std::end(hc.lengths), 0);
    collect_depths(nodes, heap.top().second, 0, hc.lengths);

    const unsigned max_len =
        *std::max_element(std::begin(hc.lengths), std::end(hc.lengths));
    if (max_len <= kMaxCodeLen) break;
    // Depth overflow (requires very skewed counts): flatten frequencies and
    // rebuild — a standard depth-limiting heuristic.
    for (auto& f : freq) {
      if (f != 0) f = (f + 1) / 2;
    }
  }
  hc.assign_canonical_codes();
  return hc;
}

void huffman_code::assign_canonical_codes() {
  // Sort symbols by (length, symbol) and hand out consecutive codes.
  int order[256];
  int n = 0;
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] != 0) order[n++] = s;
  }
  std::sort(order, order + n, [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint32_t code = 0;
  unsigned prev_len = 0;
  for (int i = 0; i < n; ++i) {
    const int s = order[i];
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
}

std::vector<std::uint8_t> huffman_encode(const std::uint8_t* data, std::size_t len) {
  std::uint64_t freq[256] = {};
  for (std::size_t i = 0; i < len; ++i) freq[data[i]]++;
  if (len == 0) freq[0] = 1;  // degenerate, keeps the table well-formed
  huffman_code hc = huffman_code::build(freq);

  std::vector<std::uint8_t> out(std::begin(hc.lengths), std::end(hc.lengths));
  bit_writer bw;
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = data[i];
    bw.put(hc.codes[s], hc.lengths[s]);
  }
  std::vector<std::uint8_t> payload = bw.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> huffman_decode(const std::uint8_t* data, std::size_t len,
                                         std::size_t expected_len) {
  if (len < 256) throw std::runtime_error("huffman: truncated table");
  huffman_code hc;
  std::copy(data, data + 256, hc.lengths);
  hc.assign_canonical_codes();

  // Build a (length -> first code, first index) canonical decoding table.
  int order[256];
  int n = 0;
  for (int s = 0; s < 256; ++s) {
    if (hc.lengths[s] != 0) order[n++] = s;
  }
  std::sort(order, order + n, [&](int a, int b) {
    if (hc.lengths[a] != hc.lengths[b]) return hc.lengths[a] < hc.lengths[b];
    return a < b;
  });

  std::vector<std::uint8_t> out;
  out.reserve(expected_len);
  bit_reader br(data + 256, len - 256);
  if (n == 1) {
    // Single-symbol alphabet: one bit per symbol was emitted.
    for (std::size_t i = 0; i < expected_len; ++i) {
      (void)br.get();
      out.push_back(static_cast<std::uint8_t>(order[0]));
    }
    return out;
  }
  while (out.size() < expected_len) {
    std::uint32_t code = 0;
    unsigned length = 0;
    int idx = 0;  // index into `order` of the first code of current length
    std::uint32_t first = 0;
    for (;;) {
      const int bit = br.get();
      if (bit < 0) throw std::runtime_error("huffman: truncated payload");
      code = (code << 1) | static_cast<std::uint32_t>(bit);
      ++length;
      // Count symbols with this length; canonical layout makes lookup O(1)
      // per length step.
      int count = 0;
      while (idx + count < n &&
             hc.lengths[order[idx + count]] == length) {
        ++count;
      }
      if (count != 0 && code - first < static_cast<std::uint32_t>(count)) {
        out.push_back(static_cast<std::uint8_t>(order[idx + (code - first)]));
        break;
      }
      first = (first + static_cast<std::uint32_t>(count)) << 1;
      idx += count;
      if (length > huffman_code::kMaxCodeLen) {
        throw std::runtime_error("huffman: invalid code");
      }
    }
  }
  return out;
}

}  // namespace hq::util
