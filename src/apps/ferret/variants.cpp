// The five ferret implementations. All must produce the serial checksum:
// the output stage is order-sensitive, so this verifies in-order delivery.
#include <atomic>
#include <memory>

#include "apps/ferret/ferret.hpp"
#include "hq.hpp"
#include "pipeline/pthread_pipeline.hpp"
#include "pipeline/tbb_pipeline.hpp"
#include "util/stats.hpp"

namespace hq::apps::ferret {

namespace {

item make_item(const config& cfg, std::uint64_t seq, std::string path) {
  item it;
  it.seq = seq;
  it.path = std::move(path);
  it.seed = cfg.seed ^ (seq * 0x9e3779b97f4a7c15ull);
  return it;
}

void process_middle(const config& cfg, const feature_db& db, item* it) {
  k_segment(cfg, it);
  k_extract(cfg, it);
  k_vector(cfg, it);
  k_rank(cfg, db, it);
}

}  // namespace

// ----------------------------------------------------------------- serial

result run_serial(const config& cfg) {
  feature_db db = build_db(cfg);
  util::stopwatch sw;
  auto files = traversal_order(cfg);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    item it = make_item(cfg, i, files[i]);
    k_load(cfg, &it);
    process_middle(cfg, db, &it);
    k_output(&checksum, it);
  }
  return {checksum, sw.seconds()};
}

// --------------------------------------------------------------- pthreads

result run_pthreads(const config& cfg) {
  feature_db db = build_db(cfg);
  util::stopwatch sw;

  // PARSEC-style: per-stage thread pools joined by bounded queues, with the
  // per-stage thread counts as explicit tuning knobs (we give every parallel
  // stage `threads` threads — the oversubscription the paper describes).
  bounded_queue<item> q_seg(64), q_ext(64), q_vec(64), q_rank(64);
  std::uint64_t checksum = 0;
  pth::ordered_serial_stage<item> output(
      [&checksum](item&& it) { k_output(&checksum, it); });

  pth::stage_pool<item> seg(q_seg, cfg.threads, [&](item&& it) {
    k_segment(cfg, &it);
    q_ext.push(std::move(it));
  });
  pth::stage_pool<item> ext(q_ext, cfg.threads, [&](item&& it) {
    k_extract(cfg, &it);
    q_vec.push(std::move(it));
  });
  pth::stage_pool<item> vec(q_vec, cfg.threads, [&](item&& it) {
    k_vector(cfg, &it);
    q_rank.push(std::move(it));
  });
  pth::stage_pool<item> rank(q_rank, cfg.threads, [&](item&& it) {
    k_rank(cfg, db, &it);
    output.emit(it.seq, std::move(it));
  });

  output.start();
  seg.start();
  ext.start();
  vec.start();
  rank.start();

  // Input stage: recursive traversal pushing files as discovered — the
  // natural pthreads structure the paper highlights.
  auto files = traversal_order(cfg);
  for (std::size_t i = 0; i < files.size(); ++i) {
    item it = make_item(cfg, i, files[i]);
    k_load(cfg, &it);
    q_seg.push(std::move(it));
  }
  q_seg.close();
  seg.join();
  q_ext.close();
  ext.join();
  q_vec.close();
  vec.join();
  q_rank.close();
  rank.join();
  output.finish_and_join();
  return {checksum, sw.seconds()};
}

// -------------------------------------------------------------------- tbb

result run_tbb(const config& cfg) {
  feature_db db = build_db(cfg);
  util::stopwatch sw;

  // TBB requires the input stage restructured into a repeatedly-callable
  // function with explicit traversal state (paper Section 6.1: "tedious and
  // error-prone"). Here the state is the pre-flattened list index.
  auto files = traversal_order(cfg);
  std::size_t next = 0;
  std::uint64_t checksum = 0;

  tbbpipe::pipeline p;
  p.add_filter(tbbpipe::filter_mode::serial_in_order, [&](void*) -> void* {
    if (next >= files.size()) return nullptr;
    auto* it = new item(make_item(cfg, next, files[next]));
    ++next;
    k_load(cfg, it);
    return it;
  });
  auto parallel_stage = [&p](auto fn) {
    p.add_filter(tbbpipe::filter_mode::parallel, [fn](void* v) -> void* {
      auto* it = static_cast<item*>(v);
      fn(it);
      return it;
    });
  };
  parallel_stage([&cfg](item* it) { k_segment(cfg, it); });
  parallel_stage([&cfg](item* it) { k_extract(cfg, it); });
  parallel_stage([&cfg](item* it) { k_vector(cfg, it); });
  parallel_stage([&cfg, &db](item* it) { k_rank(cfg, db, it); });
  p.add_filter(tbbpipe::filter_mode::serial_in_order, [&](void* v) -> void* {
    std::unique_ptr<item> it(static_cast<item*>(v));
    k_output(&checksum, *it);
    return nullptr;
  });
  p.run(/*max_tokens=*/4 * cfg.threads, cfg.threads);
  return {checksum, sw.seconds()};
}

// ---------------------------------------------------------------- objects

result run_objects(const config& cfg) {
  // Baseline task dataflow (Figure 1 style). As in the paper's evaluation,
  // the input stage is NOT restructured: the driver loads images serially
  // in the spawn loop, so input never overlaps the parallel stages — the
  // scalability ceiling visible in Figure 8.
  feature_db db = build_db(cfg);
  util::stopwatch sw;
  std::uint64_t checksum = 0;
  scheduler sched(cfg.threads);
  sched.run([&] {
    auto files = traversal_order(cfg);
    versioned<std::uint64_t> out_token(0);  // serializes the output stage
    for (std::size_t i = 0; i < files.size(); ++i) {
      versioned<item> v(make_item(cfg, i, files[i]));
      k_load(cfg, &v.get());  // serial, not overlapped
      spawn(
          [&cfg, &db](inoutdep<item> it) { process_middle(cfg, db, &*it); },
          (inoutdep<item>)v);
      spawn(
          [&checksum](indep<item> it, inoutdep<std::uint64_t>) {
            k_output(&checksum, *it);
          },
          (indep<item>)v, (inoutdep<std::uint64_t>)out_token);
    }
    sync();
  });
  return {checksum, sw.seconds()};
}

// ------------------------------------------------------------- hyperqueue

namespace {

// ---- element-at-a-time stages (baseline for the slice bench).

void hq_input_element(const config* cfg, pushdep<item> q) {
  // Directory traversal pushing images as discovered, unrestructured —
  // the programmability point of Section 6.1.
  auto files = traversal_order(*cfg);
  for (std::size_t i = 0; i < files.size(); ++i) {
    item it = make_item(*cfg, i, files[i]);
    k_load(*cfg, &it);
    q.push(std::move(it));
  }
}

void hq_dispatch_element(const config* cfg, const feature_db* db,
                         popdep<item> in, pushdep<item> out) {
  // Pop each image and spawn its (parallel) middle stages; results appear
  // on `out` in pop order because hyperqueue pushes are ordered by spawn.
  while (!in.empty()) {
    item it = in.pop();
    spawn(
        [cfg, db](item work, pushdep<item> o) {
          process_middle(*cfg, *db, &work);
          o.push(std::move(work));
        },
        std::move(it), out);
  }
  sync();
}

void hq_output_element(std::uint64_t* checksum, popdep<item> q) {
  // One large task iterating the queue (avoids many tiny output tasks —
  // exactly the design described for ferret's output hyperqueue).
  while (!q.empty()) {
    item it = q.pop();
    k_output(checksum, it);
  }
}

// ---- slice-based stages (Section 5.2, the default): images move through
// the queues in contiguous batches, one spawn per batch instead of one per
// image.

void hq_input(const config* cfg, pushdep<item> q) {
  auto files = traversal_order(*cfg);
  std::size_t i = 0;
  while (i < files.size()) {
    auto ws = q.get_write_slice(
        std::min(cfg->slice_batch, files.size() - i));
    const std::size_t n = ws.size();
    for (std::size_t k = 0; k < n; ++k) {
      item it = make_item(*cfg, i + k, files[i + k]);
      k_load(*cfg, &it);
      ws.emplace(k, std::move(it));
    }
    i += n;
    ws.commit();
  }
}

void hq_middle_batch(const config* cfg, const feature_db* db,
                     std::vector<item> work, pushdep<item> out) {
  for (auto& it : work) process_middle(*cfg, *db, &it);
  push_slices(out, work.begin(), work.end(), work.size());
}

void hq_dispatch(const config* cfg, const feature_db* db, popdep<item> in,
                 pushdep<item> out) {
  // One spawn per read slice; batch results land on `out` in spawn order.
  for (;;) {
    auto rs = in.get_read_slice(cfg->slice_batch);
    if (rs.empty()) break;
    std::vector<item> work;
    work.reserve(rs.size());
    for (auto& it : rs) work.push_back(std::move(it));
    rs.release();
    spawn(hq_middle_batch, cfg, db, std::move(work), out);
  }
  sync();
}

void hq_output(const config* cfg, std::uint64_t* checksum, popdep<item> q) {
  for (;;) {
    auto rs = q.get_read_slice(cfg->slice_batch);
    if (rs.empty()) break;
    for (const item& it : rs) k_output(checksum, it);
    rs.release();
  }
}

void record_pool(result* r, const hyperqueue<item>& a, const hyperqueue<item>& b) {
  const auto st = a.pool_stats() + b.pool_stats();
  r->seg_allocated = st.allocated;
  r->seg_recycled = st.recycled;
  r->seg_high_water = st.high_water;
}

}  // namespace

result run_hyperqueue(const config& cfg) {
  feature_db db = build_db(cfg);
  util::stopwatch sw;
  result r;
  scheduler sched(cfg.threads);
  sched.run([&] {
    hyperqueue<item> q_in(2 * cfg.slice_batch);
    hyperqueue<item> q_out(2 * cfg.slice_batch);
    spawn(hq_input, &cfg, (pushdep<item>)q_in);
    spawn(hq_dispatch, &cfg, &db, (popdep<item>)q_in, (pushdep<item>)q_out);
    spawn(hq_output, &cfg, &r.checksum, (popdep<item>)q_out);
    sync();
    record_pool(&r, q_in, q_out);
  });
  r.seconds = sw.seconds();
  return r;
}

result run_hyperqueue_element(const config& cfg) {
  feature_db db = build_db(cfg);
  util::stopwatch sw;
  result r;
  scheduler sched(cfg.threads);
  sched.run([&] {
    hyperqueue<item> q_in(64);
    hyperqueue<item> q_out(64);
    spawn(hq_input_element, &cfg, (pushdep<item>)q_in);
    spawn(hq_dispatch_element, &cfg, &db, (popdep<item>)q_in,
          (pushdep<item>)q_out);
    spawn(hq_output_element, &r.checksum, (popdep<item>)q_out);
    sync();
    record_pool(&r, q_in, q_out);
  });
  r.seconds = sw.seconds();
  return r;
}

}  // namespace hq::apps::ferret
