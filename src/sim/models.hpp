// Virtual-time models of the four scheduling policies evaluated in the
// paper (pthreads stage pools, TBB token pipeline, task dataflow "objects",
// hyperqueue work-stealing), over two pipeline shapes:
//   * flat  — ferret/bzip2: every item passes the same stage list;
//   * nested — dedup: coarse chunks fan out into many fine chunks
//     (Figure 10), which is where the models genuinely differ.
//
// Costs are measured on the host (apps' stage_times); overheads are
// calibrated from the runtime microbenchmarks. Speedup(P) =
// serial_time / makespan(P). See DESIGN.md for the substitution argument.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/des.hpp"

namespace hq::sim {

struct machine {
  unsigned cores = 1;
  unsigned fpu_pairs = 0;    // e.g. 16 on the paper's 32-core Bulldozer
  double fpu_penalty = 0.0;  // FP service-time stretch at full occupancy
};

/// Per-operation runtime costs (seconds), host-calibrated by the benches.
struct overheads {
  double task_spawn = 1.0e-6;   // dataflow/hyperqueue task create+schedule
  double hq_queue_op = 0.2e-6;  // hyperqueue push+pop per item
  double pth_queue_op = 3.0e-6; // pthread bounded-queue transfer (mutex+cv)
  double tbb_token = 1.0e-6;    // token admission / filter advance
  /// Service-time stretch of the pthreads model under thread
  /// oversubscription (stage pools sum to ~3x the core count): quantum
  /// timesharing evicts per-item private working sets between slices.
  /// Workload-dependent: ~0 for ferret (the dominant ranking stage scans a
  /// shared read-only database) and noticeable for dedup (per-chunk
  /// compressor state) — the locality effect the paper names when the
  /// hyperqueue advantage appears (Section 6.2).
  double pth_oversub_penalty = 0.0;
};

// -------------------------------------------------------------------- flat

struct stage_spec {
  bool serial = false;  // serial stages execute in item order, one at a time
  double cost = 0;      // mean per-item seconds
};

struct flat_spec {
  std::vector<stage_spec> stages;
  std::size_t items = 0;
  double jitter = 0.15;  // multiplicative per-execution variation
  std::uint64_t seed = 1;
};

double serial_time_flat(const flat_spec& spec);

/// Thread-per-stage pools with inter-stage queues; `threads_per_stage`
/// replicas for parallel stages (the PARSEC oversubscription knob).
double sim_flat_pthreads(const flat_spec& spec, const machine& m,
                         const overheads& ov, unsigned threads_per_stage);

/// Token pipeline with bounded tokens in flight.
double sim_flat_tbb(const flat_spec& spec, const machine& m, const overheads& ov,
                    std::size_t max_tokens);

/// Task dataflow. When overlap_first_stage is false the first (input) stage
/// runs unoverlapped before the pipeline — the unrestructured-input
/// shortcoming of the paper's "objects" ferret (Section 6.1).
double sim_flat_objects(const flat_spec& spec, const machine& m,
                        const overheads& ov, bool overlap_first_stage);

/// Hyperqueue: identical DAG but the input stage is an ordinary concurrent
/// producer task and items stream through queues at element granularity.
double sim_flat_hyperqueue(const flat_spec& spec, const machine& m,
                           const overheads& ov);

// ------------------------------------------------------------------ nested

struct nested_spec {
  std::size_t coarse = 0;
  std::size_t fine_per_coarse = 0;  // mean; varied per coarse chunk
  double fragment_cost = 0;         // per coarse, serial stage
  double refine_cost = 0;           // per coarse, parallel
  double dedup_cost = 0;            // per fine, parallel
  double compress_cost = 0;         // per unique fine, parallel
  double unique_fraction = 0.5;
  double output_cost = 0;           // per fine, serial in order
  double jitter = 0.3;
  std::uint64_t seed = 1;
};

double serial_time_nested(const nested_spec& spec);

/// Fine-granularity stage pools (PARSEC pthreads dedup).
double sim_nested_pthreads(const nested_spec& spec, const machine& m,
                           const overheads& ov, unsigned threads_per_stage);

/// Coarse tokens; all fine chunks of a token are gathered before the serial
/// output filter runs (the Reed et al. nested-pipeline limitation).
double sim_nested_tbb(const nested_spec& spec, const machine& m,
                      const overheads& ov, std::size_t max_tokens);

/// Task dataflow over per-coarse lists (Figure 10a): output waits for each
/// complete list.
double sim_nested_objects(const nested_spec& spec, const machine& m,
                          const overheads& ov);

/// Hyperqueues (Figure 10b/c): merged dedup+compress task per coarse chunk
/// streams fine chunks to the output as they complete.
double sim_nested_hyperqueue(const nested_spec& spec, const machine& m,
                             const overheads& ov);

}  // namespace hq::sim
