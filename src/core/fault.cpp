#include "core/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "conc/backoff.hpp"
#include "sched/scheduler.hpp"
#include "sched/task.hpp"

namespace hq::fault {

injected_fault::injected_fault(std::string site, std::uint64_t count)
    : std::runtime_error("injected fault at " + site + "#" +
                         std::to_string(count)),
      site_(std::move(site)),
      count_(count) {}

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool site_matches(const std::string& pattern, std::string_view site) noexcept {
  if (!pattern.empty() && pattern.back() == '*')
    return site.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  return site == pattern;
}

/// Pure firing predicate: a function of (seed, site, count) only.
bool fires(const rule& r, std::uint64_t seed, std::string_view site,
           std::uint64_t count) noexcept {
  if (r.nth != 0 && count == r.nth) return true;
  if (r.every != 0 && count % r.every == 0) return true;
  if (r.prob > 0.0) {
    const std::uint64_t x = splitmix64(seed ^ fnv1a(site) ^ count);
    return static_cast<double>(x) <
           r.prob * 18446744073709551616.0;  // 2^64
  }
  return false;
}

struct site_state {
  std::atomic<std::uint64_t> hits{0};
};

struct config {
  plan p;
  std::mutex mu;  // guards `sites` mutation and the firing log
  std::map<std::string, std::unique_ptr<site_state>, std::less<>> sites;
  std::vector<firing> fired;
};

/// Retired configurations are kept alive for the process lifetime so a hit
/// racing a (test-driven) reinstall never dereferences freed memory. Plans
/// are tiny and installs are per-test, so the leak is bounded and deliberate.
std::mutex g_install_mu;
std::vector<std::unique_ptr<config>> g_retired;

config* cfg() noexcept {
  return const_cast<config*>(
      static_cast<const config*>(detail::g_cfg.load(std::memory_order_acquire)));
}

/// Count the hit, decide which rule (if any) fires, and log it. The decision
/// is made and recorded under the site lock; the *action* runs outside it.
const rule* decide(config* c, std::string_view site, std::uint64_t* count_out) {
  std::lock_guard<std::mutex> lk(c->mu);
  auto it = c->sites.find(site);
  if (it == c->sites.end())
    it = c->sites.emplace(std::string(site), std::make_unique<site_state>())
             .first;
  const std::uint64_t count =
      it->second->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  *count_out = count;
  for (const rule& r : c->p.rules) {
    if (!site_matches(r.site, site)) continue;
    if (fires(r, c->p.seed, site, count)) {
      c->fired.push_back({std::string(site), count, r.act});
      return &r;
    }
  }
  return nullptr;
}

void spin_delay(std::uint64_t iters) noexcept {
  for (std::uint64_t i = 0; i < iters; ++i) cpu_relax();
}

[[noreturn]] void spin_stall() {
  // Park until the watchdog (or a failing sibling) flips the scheduler's
  // cancellation epoch, then unwind like any other cancelled wait. Clearing
  // the plan also releases the stall (non-scheduler contexts).
  scheduler* s = scheduler::current();
  backoff bo;
  for (;;) {
    if (s != nullptr && s->cancelled()) throw hq::detail::cancel_unwind{};
    if (!active()) throw injected_fault("stall released by clear()", 0);
    bo.pause();
  }
}

void env_install() {
  const char* spec = std::getenv("HQ_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  plan p;
  std::string err;
  if (!parse(spec, &p, &err)) {
    std::fprintf(stderr, "HQ_FAULTS ignored: %s\n", err.c_str());
    return;
  }
  install(std::move(p));
}

const bool g_env_installed = (env_install(), true);

}  // namespace

namespace detail {

std::atomic<const void*> g_cfg{nullptr};

void hit_crash(std::string_view site) {
  config* c = cfg();
  if (c == nullptr) return;
  std::uint64_t count = 0;
  const rule* r = decide(c, site, &count);
  if (r == nullptr) return;
  switch (r->act) {
    case action::throw_exc:
      throw injected_fault(std::string(site), count);
    case action::delay:
      spin_delay(r->iters);
      return;
    case action::stall:
      spin_stall();
    case action::alloc_fail:
      return;  // alloc rules only answer failpoint()
  }
}

bool hit_fail(std::string_view site) noexcept {
  config* c = cfg();
  if (c == nullptr) return false;
  std::uint64_t count = 0;
  const rule* r = decide(c, site, &count);
  if (r == nullptr) return false;
  if (r->act == action::delay) {
    spin_delay(r->iters);
    return false;
  }
  return r->act == action::alloc_fail;
}

void hit_delay(std::string_view site) noexcept {
  config* c = cfg();
  if (c == nullptr) return;
  std::uint64_t count = 0;
  const rule* r = decide(c, site, &count);
  if (r != nullptr && r->act == action::delay) spin_delay(r->iters);
}

}  // namespace detail

void install(plan p) {
  auto c = std::make_unique<config>();
  c->p = std::move(p);
  std::lock_guard<std::mutex> lk(g_install_mu);
  detail::g_cfg.store(c.get(), std::memory_order_release);
  g_retired.push_back(std::move(c));
}

void clear() {
  std::lock_guard<std::mutex> lk(g_install_mu);
  detail::g_cfg.store(nullptr, std::memory_order_release);
}

std::vector<firing> firings() {
  config* c = cfg();
  if (c == nullptr) return {};
  std::lock_guard<std::mutex> lk(c->mu);
  return c->fired;
}

namespace {

bool parse_entry(std::string_view e, plan* out, std::string* err) {
  if (e.substr(0, 5) == "seed=") {
    out->seed = std::strtoull(std::string(e.substr(5)).c_str(), nullptr, 0);
    return true;
  }
  const std::size_t at = e.find('@');
  if (at == std::string_view::npos) {
    *err = "entry '" + std::string(e) + "' has no '@SITE'";
    return false;
  }
  rule r;
  const std::string_view act = e.substr(0, at);
  if (act == "throw") {
    r.act = action::throw_exc;
  } else if (act == "alloc") {
    r.act = action::alloc_fail;
  } else if (act == "delay") {
    r.act = action::delay;
  } else if (act == "stall") {
    r.act = action::stall;
  } else {
    *err = "unknown action '" + std::string(act) + "'";
    return false;
  }
  std::string_view rest = e.substr(at + 1);
  const std::size_t colon = rest.find(':');
  r.site = std::string(rest.substr(0, colon));
  if (r.site.empty()) {
    *err = "empty site in '" + std::string(e) + "'";
    return false;
  }
  if (colon != std::string_view::npos) {
    std::string_view params = rest.substr(colon + 1);
    while (!params.empty()) {
      const std::size_t comma = params.find(',');
      std::string_view kv = params.substr(0, comma);
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        *err = "parameter '" + std::string(kv) + "' is not k=v";
        return false;
      }
      const std::string_view k = kv.substr(0, eq);
      const std::string v(kv.substr(eq + 1));
      if (k == "nth") {
        r.nth = std::strtoull(v.c_str(), nullptr, 0);
      } else if (k == "every") {
        r.every = std::strtoull(v.c_str(), nullptr, 0);
      } else if (k == "prob") {
        r.prob = std::strtod(v.c_str(), nullptr);
      } else if (k == "iters") {
        r.iters = std::strtoull(v.c_str(), nullptr, 0);
      } else {
        *err = "unknown parameter '" + std::string(k) + "'";
        return false;
      }
      if (comma == std::string_view::npos) break;
      params.remove_prefix(comma + 1);
    }
  }
  if (r.nth == 0 && r.every == 0 && r.prob == 0.0) {
    if (r.act != action::delay) {
      *err =
          "rule for '" + r.site + "' has no firing condition (nth/every/prob)";
      return false;
    }
    r.every = 1;  // a bare delay rule delays every hit
  }
  out->rules.push_back(std::move(r));
  return true;
}

}  // namespace

bool parse(std::string_view spec, plan* out, std::string* err) {
  *out = plan{};
  while (!spec.empty()) {
    const std::size_t semi = spec.find(';');
    std::string_view e = spec.substr(0, semi);
    // Trim whitespace (specs may be wrapped in shell scripts / YAML).
    while (!e.empty() && (e.front() == ' ' || e.front() == '\n' ||
                          e.front() == '\t'))
      e.remove_prefix(1);
    while (!e.empty() &&
           (e.back() == ' ' || e.back() == '\n' || e.back() == '\t'))
      e.remove_suffix(1);
    if (!e.empty() && !parse_entry(e, out, err)) return false;
    if (semi == std::string_view::npos) break;
    spec.remove_prefix(semi + 1);
  }
  return true;
}

}  // namespace hq::fault
