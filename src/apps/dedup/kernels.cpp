#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "apps/dedup/dedup.hpp"
#include "conc/backoff.hpp"
#include "util/lz77.hpp"
#include "util/mbzip.hpp"
#include "util/rabin.hpp"
#include "util/stats.hpp"

namespace hq::apps::dedup {

std::shared_ptr<dedup_entry> dedup_table::intern(const util::sha1_digest& d,
                                                 bool* inserted) {
  const std::size_t stripe = d.prefix64() % kStripes;
  std::lock_guard<std::mutex> lk(mu_[stripe]);
  auto [it, fresh] = map_[stripe].try_emplace(d);
  if (fresh) it->second = std::make_shared<dedup_entry>();
  *inserted = fresh;
  return it->second;
}

std::size_t dedup_table::unique_chunks() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < kStripes; ++s) {
    std::lock_guard<std::mutex> lk(mu_[s]);
    n += map_[s].size();
  }
  return n;
}

std::vector<std::pair<std::size_t, std::size_t>> k_fragment(
    const config& cfg, const std::uint8_t* data, std::size_t len) {
  // Content-defined coarse boundaries (PARSEC's Fragment also scans the
  // input): a strided FNV over 64-byte windows picks cut points near the
  // configured coarse size, bounded to [cfg/2, 2*cfg].
  std::vector<std::pair<std::size_t, std::size_t>> coarse;
  const std::size_t target = cfg.coarse_bytes;
  std::size_t start = 0;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ull;
    const std::size_t cur = i + 1 - start;
    const bool boundary = (h & (target / 2 - 1)) == (target / 2 - 1);
    if ((boundary && cur >= target / 2) || cur >= 2 * target) {
      coarse.emplace_back(start, cur);
      start = i + 1;
    }
  }
  if (start < len) coarse.emplace_back(start, len - start);
  return coarse;
}

std::vector<chunk_rec> k_refine(const config& cfg, const std::uint8_t* base,
                                std::size_t off, std::size_t len,
                                std::uint64_t coarse_seq) {
  auto bounds = util::chunk_stream(base + off, len, cfg.fine_avg_log2,
                                   cfg.fine_min, cfg.fine_max);
  std::vector<chunk_rec> out;
  out.reserve(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    chunk_rec c;
    c.coarse_seq = coarse_seq;
    c.fine_seq = i;
    c.data.assign(base + off + bounds[i].offset,
                  base + off + bounds[i].offset + bounds[i].size);
    out.push_back(std::move(c));
  }
  return out;
}

void k_dedup(dedup_table* table, chunk_rec* c) {
  c->digest = util::sha1(c->data.data(), c->data.size());
  bool inserted = false;
  c->entry = table->intern(c->digest, &inserted);
  c->owner = inserted;
  if (!c->owner) c->data.clear();  // duplicates drop their payload
}

void k_compress(chunk_rec* c) {
  assert(c->owner && c->entry);
  // PARSEC dedup's '-c bzip2' compressor mode: BWT+MTF+RLE+Huffman per
  // chunk. This is the stage that dominates Table 2 (~74%).
  c->entry->compressed =
      util::mbzip_compress_block(c->data.data(), c->data.size());
  c->entry->ready.store(true, std::memory_order_release);
  c->data.clear();
  c->data.shrink_to_fit();
}

namespace {

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

namespace {

/// Per-record cost model of the archive write (PARSEC's Output writes to
/// disk; we have no disk, so the write+journal syscall path is modeled as a
/// checksum over a scratch prefix — see the DESIGN.md substitution table).
/// The cost scales with the bytes actually written (payload records cost
/// more than 21-byte references) on top of a fixed per-record journal floor;
/// the multiplier is sized so Output lands near its Table 2 share (~8%, the
/// serial stage that bounds dedup's scalability in Figure 11) at the
/// default ~4 KiB chunk configuration. A flat per-record cost here would
/// overstate the serial stage by the chunk-size ratio whenever a benchmark
/// shrinks the chunks to stress the queues.
void model_record_write(std::size_t written_bytes) {
  static const std::vector<std::uint8_t> scratch(256u << 10, 0xA5);
  const std::size_t n =
      std::min(scratch.size(), std::size_t{4} << 10) + 24 * written_bytes;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n && i < scratch.size(); ++i) {
    h = (h ^ scratch[i]) * 0x100000001b3ull;
  }
  volatile std::uint64_t sink = h;
  (void)sink;
}

}  // namespace

void k_output(std::vector<std::uint8_t>* out, chunk_rec* c) {
  // First occurrence in output order writes the payload; later ones write a
  // 20-byte digest reference. The entry may still be compressing on another
  // thread (the owner raced behind): wait for readiness.
  if (!c->entry->written) {
    backoff bo;
    while (!c->entry->ready.load(std::memory_order_acquire)) bo.pause();
    // Integrity check before committing the payload to the archive.
    (void)util::sha1(c->entry->compressed.data(), c->entry->compressed.size());
    model_record_write(5 + c->entry->compressed.size());
    out->push_back('U');
    put_u32(out, static_cast<std::uint32_t>(c->entry->compressed.size()));
    out->insert(out->end(), c->entry->compressed.begin(),
                c->entry->compressed.end());
    c->entry->written = true;
  } else {
    model_record_write(21);
    out->push_back('R');
    for (std::uint32_t w : c->digest.h) put_u32(out, w);
  }
}

std::vector<std::uint8_t> reassemble(const std::uint8_t* stream, std::size_t len) {
  std::vector<std::uint8_t> out;
  std::unordered_map<util::sha1_digest, std::vector<std::uint8_t>> by_digest;
  std::size_t pos = 0;
  while (pos < len) {
    const std::uint8_t tag = stream[pos++];
    if (tag == 'U') {
      if (pos + 4 > len) throw std::runtime_error("dedup: truncated payload size");
      const std::uint32_t n = get_u32(stream + pos);
      pos += 4;
      if (pos + n > len) throw std::runtime_error("dedup: truncated payload");
      auto data = util::mbzip_decompress_block(stream + pos, n);
      pos += n;
      const auto digest = util::sha1(data.data(), data.size());
      out.insert(out.end(), data.begin(), data.end());
      by_digest.emplace(digest, std::move(data));
    } else if (tag == 'R') {
      if (pos + 20 > len) throw std::runtime_error("dedup: truncated reference");
      util::sha1_digest d;
      for (int i = 0; i < 5; ++i) {
        d.h[static_cast<std::size_t>(i)] = get_u32(stream + pos);
        pos += 4;
      }
      auto it = by_digest.find(d);
      if (it == by_digest.end()) {
        throw std::runtime_error("dedup: dangling reference");
      }
      out.insert(out.end(), it->second.begin(), it->second.end());
    } else {
      throw std::runtime_error("dedup: bad record tag");
    }
  }
  return out;
}

characterization stage_times(const config& cfg,
                             const std::vector<std::uint8_t>& input) {
  characterization ch{};
  util::stopwatch sw;

  sw.reset();
  auto coarse = k_fragment(cfg, input.data(), input.size());
  ch.seconds[0] = sw.seconds();
  ch.iterations[0] = coarse.size();

  sw.reset();
  std::vector<std::vector<chunk_rec>> refined;
  refined.reserve(coarse.size());
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    refined.push_back(
        k_refine(cfg, input.data(), coarse[i].first, coarse[i].second, i));
  }
  ch.seconds[1] = sw.seconds();
  ch.iterations[1] = coarse.size();

  sw.reset();
  dedup_table table;
  std::uint64_t fine = 0, owners = 0;
  for (auto& list : refined) {
    for (auto& c : list) {
      k_dedup(&table, &c);
      ++fine;
    }
  }
  ch.seconds[2] = sw.seconds();
  ch.iterations[2] = fine;

  sw.reset();
  for (auto& list : refined) {
    for (auto& c : list) {
      if (c.owner) {
        k_compress(&c);
        ++owners;
      }
    }
  }
  ch.seconds[3] = sw.seconds();
  ch.iterations[3] = owners;

  sw.reset();
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2);
  for (auto& list : refined) {
    for (auto& c : list) k_output(&out, &c);
  }
  ch.seconds[4] = sw.seconds();
  ch.iterations[4] = fine;
  return ch;
}

}  // namespace hq::apps::dedup
