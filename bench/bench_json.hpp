// Shared JSON-trajectory emission for the Google-Benchmark micro harnesses.
//
// bench_micro_sched / bench_micro_queue provide their own main() (instead of
// benchmark_main) so they can emit a BENCH_*.json record with the same
// shape as bench_slice_apps' BENCH_slice.json: a top-level {"bench", ...,
// "all_ok"} object holding one entry per benchmark. CI runs them in --quick
// mode and uploads the JSON artifacts, making the perf trajectory
// machine-readable run over run.
//
// Flags handled here (stripped before benchmark::Initialize sees argv):
//   --quick        smoke sizes (maps to a tiny --benchmark_min_time)
//   --json PATH    output path (each harness passes its default)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sched/obj_pool.hpp"

namespace hq::bench {

struct bench_row {
  std::string name;
  double ns_per_op = 0;         // wall-clock per iteration
  double items_per_second = 0;  // 0 when the bench reports no item counter
  std::uint64_t iterations = 0;
  // Latency percentiles (core/latency.hpp histograms), populated by
  // harnesses that measure per-item sojourn rather than throughput; all
  // zero when the bench reports none (the JSON fields are then omitted).
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
};

/// ConsoleReporter that additionally collects per-benchmark rows (real time;
/// CPU time is meaningless here — the workers run on their own threads).
class collecting_reporter : public ::benchmark::ConsoleReporter {
 public:
  std::vector<bench_row> rows;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      bench_row row;
      row.name = r.benchmark_name();
      row.iterations = static_cast<std::uint64_t>(r.iterations);
      if (r.iterations > 0) {
        row.ns_per_op = r.real_accumulated_time /
                        static_cast<double>(r.iterations) * 1e9;
      }
      auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) row.items_per_second = it->second;
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

struct micro_bench_options {
  bool quick = false;
  std::string json_path;
};

/// Strip --quick / --json from argv (benchmark::Initialize rejects unknown
/// flags) and inject the smoke-size min_time in quick mode.
inline micro_bench_options parse_micro_args(int& argc, char** argv,
                                            const char* default_json,
                                            std::vector<char*>& storage) {
  micro_bench_options opt;
  opt.json_path = default_json;
  static std::string min_time_flag = "--benchmark_min_time=0.01";
  storage.clear();
  storage.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      storage.push_back(argv[i]);
    }
  }
  if (opt.quick) storage.push_back(min_time_flag.data());
  argc = static_cast<int>(storage.size());
  return opt;
}

/// Emit one recycling-pool stats object as an indented JSON member followed
/// by a comma — shared so BENCH_sched.json and BENCH_queue.json keep the
/// exact same record shape.
inline void emit_pool_json(FILE* f, const char* key,
                           const hq::detail::obj_pool::stats_t& p) {
  std::fprintf(f,
               "    \"%s\": {\"allocated\": %llu, \"recycled\": %llu, "
               "\"high_water\": %llu, \"live\": %llu, "
               "\"node_local_allocs\": %llu, \"remote_allocs\": %llu},\n",
               key, static_cast<unsigned long long>(p.allocated),
               static_cast<unsigned long long>(p.recycled),
               static_cast<unsigned long long>(p.high_water),
               static_cast<unsigned long long>(p.live),
               static_cast<unsigned long long>(p.node_local_allocs),
               static_cast<unsigned long long>(p.remote_allocs));
}

/// Write the trajectory record. `extra` (optional, may be null) is invoked
/// to append harness-specific JSON members; it must emit zero or more
/// `"key": value,`-style fragments each followed by a comma.
template <typename ExtraFn>
bool write_micro_json(const micro_bench_options& opt, const char* bench_name,
                      const std::vector<bench_row>& rows, bool all_ok,
                      ExtraFn&& extra) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", opt.json_path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"quick\": %s,\n", bench_name,
               opt.quick ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const bench_row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"items_per_second\": %.0f, \"iterations\": %llu",
                 r.name.c_str(), r.ns_per_op, r.items_per_second,
                 static_cast<unsigned long long>(r.iterations));
    if (r.p50_ns || r.p99_ns || r.p999_ns) {
      std::fprintf(f,
                   ", \"p50_ns\": %llu, \"p99_ns\": %llu, \"p999_ns\": %llu",
                   static_cast<unsigned long long>(r.p50_ns),
                   static_cast<unsigned long long>(r.p99_ns),
                   static_cast<unsigned long long>(r.p999_ns));
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  extra(f);
  std::fprintf(f, "  \"all_ok\": %s\n}\n", all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (%zu benchmarks)\n", opt.json_path.c_str(), rows.size());
  return true;
}

}  // namespace hq::bench
