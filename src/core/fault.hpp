// Deterministic, site-based fault injection.
//
// A fault *plan* is a seed plus a list of rules keyed by site name. Every
// instrumented point in the runtime names its site ("stage.compress",
// "pool.slab", "segment.alloc", "numa.map", "numa.bind", "queue.push",
// "queue.pop") and calls one of three entry points:
//
//   crashpoint(site)        may throw injected_fault (action `throw`), spin
//                           until the run cancels (action `stall`), or spin a
//                           fixed count (action `delay`);
//   failpoint(site)         returns true when the caller should simulate an
//                           operation failure (action `alloc`: the pool /
//                           segment / numa sites throw std::bad_alloc, the
//                           numa.bind site skips mbind to exercise the
//                           first-touch fallback);
//   delaypoint(site)        applies only `delay` rules — placed on queue ops
//                           to widen interleavings without changing results.
//
// Whether a given hit fires is a pure function of (seed, site, hit count):
// `nth=N` fires exactly at the Nth hit of that site, `every=K` at every Kth,
// `prob=P` with seeded per-hit probability via splitmix64. Counting is global
// per site (one atomic per site), so a plan replayed against the same
// workload fires at byte-identical (site, count) points regardless of thread
// interleaving; `firings()` exposes the log for replay tests.
//
// Plans install programmatically (tests) or from the HQ_FAULTS environment
// variable at process start:
//
//   HQ_FAULTS="seed=7;throw@stage.compress:nth=3;alloc@pool.slab:nth=2;
//              delay@queue.push:every=64,iters=200"
//
// When no plan is installed, every entry point is one relaxed atomic load —
// cheap enough to leave compiled into release builds.
//
// Installing or clearing a plan while a run is actively hitting sites is a
// race by design (the configuration swap is not synchronized with hits);
// tests install between runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hq::fault {

/// Thrown by `throw` rules: carries the site and the hit count that fired so
/// tests can assert the failure surfaced from the exact injected point.
class injected_fault : public std::runtime_error {
 public:
  injected_fault(std::string site, std::uint64_t count);
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::string site_;
  std::uint64_t count_;
};

enum class action : std::uint8_t {
  throw_exc,   ///< crashpoint throws injected_fault
  alloc_fail,  ///< failpoint returns true (caller simulates the failure)
  delay,       ///< spin `iters` pause hints, then continue normally
  stall,       ///< crashpoint spins until the run cancels or the plan clears
};

struct rule {
  std::string site;        ///< exact site name ("*" suffix matches a prefix)
  action act = action::throw_exc;
  std::uint64_t nth = 0;   ///< fire exactly at this hit count (1-based)
  std::uint64_t every = 0; ///< fire at every multiple of this count
  double prob = 0.0;       ///< seeded per-hit firing probability
  std::uint64_t iters = 256;  ///< spin iterations for `delay`
};

struct plan {
  std::uint64_t seed = 0;
  std::vector<rule> rules;
};

/// One recorded firing, in firing order. (site, count) pairs are the
/// deterministic replay identity; the order itself can vary with thread
/// interleaving when distinct sites fire concurrently.
struct firing {
  std::string site;
  std::uint64_t count = 0;
  action act = action::throw_exc;
};

/// Replace the active plan (site counters and the firing log reset).
void install(plan p);
/// Remove the active plan; also releases any rule currently stalling.
void clear();

namespace detail {
extern std::atomic<const void*> g_cfg;
void hit_crash(std::string_view site);
bool hit_fail(std::string_view site) noexcept;
void hit_delay(std::string_view site) noexcept;
}  // namespace detail

/// True when a plan is installed. Single relaxed load — the only cost every
/// instrumented point pays when injection is off.
inline bool active() noexcept {
  return detail::g_cfg.load(std::memory_order_relaxed) != nullptr;
}

inline void crashpoint(std::string_view site) {
  if (active()) detail::hit_crash(site);
}

[[nodiscard]] inline bool failpoint(std::string_view site) noexcept {
  return active() && detail::hit_fail(site);
}

inline void delaypoint(std::string_view site) noexcept {
  if (active()) detail::hit_delay(site);
}

/// Parse an HQ_FAULTS-style spec into a plan. Returns false and fills *err
/// on malformed input. Grammar: ';'-separated entries, each either `seed=N`
/// or `ACTION@SITE[:k=v[,k=v...]]` with ACTION in {throw,alloc,delay,stall}
/// and keys nth/every/prob/iters.
bool parse(std::string_view spec, plan* out, std::string* err);

/// Snapshot of the firing log since the last install().
std::vector<firing> firings();

}  // namespace hq::fault
