// Chase–Lev work-stealing deque.
//
// The per-worker ready queue of the scheduler (src/sched). The owner pushes
// and pops at the bottom (LIFO, depth-first execution order for locality, as
// in Cilk); thieves steal from the top (FIFO, oldest task first — for
// pipelines this hands the earliest spawned stage instance to an idle
// worker). Memory ordering follows Lê, Pop, Cohen & Zappa Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "conc/cache.hpp"
#include "conc/tsan.hpp"

namespace hq {

/// Unbounded SPMC work-stealing deque of pointers.
/// Owner thread: push_bottom / pop_bottom. Any thread: steal.
template <typename T>
class chase_lev_deque {
 public:
  explicit chase_lev_deque(std::int64_t initial_capacity = 64)
      : array_(new ring(initial_capacity)) {}

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  ~chase_lev_deque() {
    delete array_.load(std::memory_order_relaxed);
    for (ring* r : retired_) delete r;
  }

  /// Owner only: make a task available; grows the array when full.
  void push_bottom(T* item) {
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    ring* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) {
      a = grow(a, b, t);
    }
    a->put(b, item);
#if HQ_TSAN
    bottom_.value.store(b + 1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.value.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only: LIFO pop; nullptr when the deque is empty or the last
  /// element was lost to a concurrent thief.
  T* pop_bottom() {
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed) - 1;
    ring* a = array_.load(std::memory_order_relaxed);
#if HQ_TSAN
    bottom_.value.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.value.load(std::memory_order_seq_cst);
#else
    bottom_.value.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.value.load(std::memory_order_relaxed);
#endif
    T* item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Single element left: race against thieves for it.
        if (!top_.value.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                std::memory_order_relaxed)) {
          item = nullptr;  // lost
        }
        bottom_.value.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.value.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: FIFO steal; nullptr when empty or on a lost race (callers
  /// treat both as "retry elsewhere").
  T* steal() {
#if HQ_TSAN
    std::int64_t t = top_.value.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.value.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.value.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
#endif
    T* item = nullptr;
    if (t < b) {
      ring* a = array_.load(std::memory_order_acquire);
      item = a->get(t);
      if (!top_.value.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
        return nullptr;  // lost race
      }
    }
    return item;
  }

  /// Racy size estimate, useful for stats only.
  [[nodiscard]] std::int64_t size_estimate() const noexcept {
    return bottom_.value.load(std::memory_order_relaxed) -
           top_.value.load(std::memory_order_relaxed);
  }

 private:
  struct ring {
    explicit ring(std::int64_t cap) : capacity(cap), slots(cap) {}
    const std::int64_t capacity;
    std::vector<std::atomic<T*>> slots;

    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & (capacity - 1))].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) {
      slots[static_cast<std::size_t>(i & (capacity - 1))].store(
          v, std::memory_order_relaxed);
    }
  };

  ring* grow(ring* a, std::int64_t b, std::int64_t t) {
    auto* bigger = new ring(a->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    array_.store(bigger, std::memory_order_release);
    // Thieves may still hold a pointer to the old ring; retire it until the
    // deque itself dies (growth is rare and bounded, so this is cheap).
    retired_.push_back(a);
    return bigger;
  }

  padded<std::atomic<std::int64_t>> top_{0};
  padded<std::atomic<std::int64_t>> bottom_{0};
  std::atomic<ring*> array_;
  std::vector<ring*> retired_;  // owner-only
};

}  // namespace hq
