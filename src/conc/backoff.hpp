// Exponential backoff for spin-wait loops.
//
// Waiting code in the runtime (sync, blocking empty(), steal loops) never
// spins bare: it first pauses the pipeline a growing number of times and then
// starts yielding the OS thread so that oversubscribed configurations (more
// workers than cores, the common case on this host) make progress.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hq {

/// Issue a single CPU pause/relax hint.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Exponential backoff: spins with pause hints up to a threshold, then yields
/// the thread. Reset when the awaited condition makes progress.
class backoff {
 public:
  /// Wait one step, escalating from pause loops to sched_yield.
  void pause() noexcept {
    if (count_ <= kSpinLimit) {
      for (std::uint32_t i = 0; i < (1u << count_); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  /// True once the backoff has escalated past pure spinning; callers use it
  /// to switch to helping or blocking strategies.
  [[nodiscard]] bool is_yielding() const noexcept { return count_ > kSpinLimit; }

  void reset() noexcept { count_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 6;  // up to 64 pauses per step
  std::uint32_t count_ = 0;
};

}  // namespace hq
