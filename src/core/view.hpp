// Producer shards and the view split/reduce algebra (paper Section 3.3).
//
// The runtime's data path orders producers with the explicit shard list
// (`pshard`, below): the spawn-time splice fixes the merge order exactly
// where the paper's split() would create the non-local pairing, so the
// consumer's scan realizes the same serial-elision order the view algebra
// proves deterministic. The view type and split/reduce remain as the
// paper-faithful reference semantics (exercised directly by test_views).
//
// A view is a (head, tail) pair over a linked chain of queue segments. Each
// side is either *local* (a real segment pointer) or *non-local* (the
// segment is shared with the logically adjacent view; represented by a null
// pointer carrying a match id used to check the pairing invariant).
// The empty view ε is distinct from a view whose two sides are both
// non-local.
//
//   split((s,s))              = ((s, nlX), (nlX, s))         (new id X)
//   reduce((h1,t1),(h2,t2))   = ((h1,t2), ε)
//     - t1, h2 local:         link t1->next = h2
//     - t1, h2 non-local:     ids must match (already linked by the split)
//   reduce(v, ε) = (v, ε);  reduce(ε, v) = (v, ε)
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "core/segment.hpp"

namespace hq {
class scheduler;
}

namespace hq::detail {

/// Producer shard: one contiguous program-order span of pushes, owning a
/// private segment chain. Shards form a queue-wide singly-linked list in
/// serial-elision order; the single consumer scans it front to back.
///
/// The list is built lock-free at spawn points: new shards are only ever
/// spliced in *after the spawning task's own current shard*, so every
/// insertion point has exactly one possible writer and publication needs no
/// CAS — the owner pre-links the new records, redirects `next`, and then
/// closes the shard with one release store. The consumer reads `next` only
/// after observing `closed` with acquire, which also makes every segment
/// pushed before the close visible. A closed shard is immutable; since the
/// global list tail is always the queue owner's current (open) shard, a
/// closed shard always has a non-null successor.
///
/// `head` is the owner's one-time publication of the chain (release store on
/// the first push); `tail` is owner-local and never read by the consumer.
struct pshard {
  std::atomic<segment*> head{nullptr};  ///< first segment; set once, release
  segment* tail = nullptr;              ///< chain tail (producer-local)
  std::atomic<pshard*> next{nullptr};   ///< scan-order successor (see above)
  std::atomic<bool> closed{false};      ///< no pushes or splices can follow

  /// Segments currently live in this shard's chain. Incremented by the
  /// owning producer when it links a fresh segment, decremented by the
  /// consumer as it recycles drained ones. The memory-budget throttle
  /// (queue_cb::budget_wait) reads the producer's own count to apply the
  /// structural exemption: a producer below the per-shard minimum may
  /// always allocate, which is what keeps budget waits deadlock-free (the
  /// consumer can reach and drain every shard ahead of it in scan order).
  /// Relaxed is enough: only the owner increments, so a producer's read of
  /// its own shard is never below the true count — staleness errs toward
  /// throttling, and the wait loop re-reads.
  std::atomic<std::uint32_t> live_segs{0};

  /// Recycling bookkeeping, mirroring qattach: shards come from the
  /// scheduler's per-worker attach pool and are freed by whichever worker
  /// retires them (the consumer, usually).
  scheduler* pool_sched = nullptr;
  unsigned pool_owner = ~0u;
};

struct view {
  segment* head = nullptr;   // local head pointer, when head_nl == 0
  segment* tail = nullptr;   // local tail pointer, when tail_nl == 0
  std::uint64_t head_nl = 0;  // nonzero: head side is non-local with this id
  std::uint64_t tail_nl = 0;  // nonzero: tail side is non-local with this id
  bool present = false;       // false: this is the empty view ε

  [[nodiscard]] bool empty() const noexcept { return !present; }
  [[nodiscard]] bool head_local() const noexcept { return present && head_nl == 0; }
  [[nodiscard]] bool tail_local() const noexcept { return present && tail_nl == 0; }

  /// The local view (s, s) on a single segment.
  static view local(segment* s) noexcept {
    view v;
    v.head = s;
    v.tail = s;
    v.present = true;
    return v;
  }

  /// Detach and return this view's contents, leaving ε behind.
  view take() noexcept {
    view v = *this;
    *this = view{};
    return v;
  }
};

/// Split a local view (s, s) into a head-only and a tail-only view joined by
/// the fresh non-local id `nl_id`. Returns {head_view, tail_view}.
std::pair<view, view> split(view v, std::uint64_t nl_id) noexcept;

/// Reduce `right` into `left` in program order; `right` becomes ε.
/// Aborts (assert) on pairings that the paper proves cannot occur.
void reduce_into(view& left, view&& right) noexcept;

}  // namespace hq::detail
