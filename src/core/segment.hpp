// Queue segments: fixed-size single-producer single-consumer circular
// buffers, chained into linked lists (paper Section 3.2).
//
// A segment is the unit of storage of a hyperqueue. Monotonic head/tail
// indices (masked into the power-of-two buffer) let one producer and one
// consumer share a segment race-free with only acquire/release ordering —
// invariants 4–6 of the paper guarantee at most one of each per segment.
// A producer/consumer pair that stays within one segment recycles it
// indefinitely: zero allocation in steady state.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace hq::detail {

/// How to move and destroy elements of the queue's value type; lets the
/// entire view/segment machinery be non-templated.
struct element_ops {
  std::size_t size = 0;
  std::size_t align = 0;
  /// Move-construct *dst from *src. Does NOT destroy src.
  void (*move_construct)(void* dst, void* src) noexcept = nullptr;
  void (*destroy)(void* p) noexcept = nullptr;
};

class segment {
 public:
  /// Allocate a segment with `capacity` element slots (must be a power of
  /// two) in a single allocation.
  static segment* create(std::uint64_t capacity, const element_ops* ops);

  /// Free the segment's memory. Remaining elements must have been destroyed.
  static void destroy(segment* s);

  segment(const segment&) = delete;
  segment& operator=(const segment&) = delete;

  [[nodiscard]] std::uint64_t capacity() const noexcept { return mask + 1; }

  /// Producer: relocate the element at `src` into the segment. Returns false
  /// when full (caller allocates and links a fresh segment).
  bool try_push(void* src) noexcept {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    const std::uint64_t h = head.load(std::memory_order_acquire);
    if (t - h > mask) return false;
    ops->move_construct(slot(t), src);
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: is an element available right now?
  [[nodiscard]] bool readable() const noexcept {
    return head.load(std::memory_order_relaxed) < tail.load(std::memory_order_acquire);
  }

  /// Consumer: move the head element into `dst` and retire the slot.
  /// Precondition: readable().
  void pop_into(void* dst) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    assert(h < tail.load(std::memory_order_acquire));
    void* s = slot(h);
    ops->move_construct(dst, s);
    ops->destroy(s);
    head.store(h + 1, std::memory_order_release);
  }

  /// Destroy all elements still stored (queue teardown; single-threaded).
  void destroy_remaining() noexcept {
    std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    for (; h < t; ++h) ops->destroy(slot(h));
    head.store(t, std::memory_order_relaxed);
  }

  /// Reset to pristine state for reuse from the segment free list.
  void reset() noexcept {
    assert(head.load(std::memory_order_relaxed) == tail.load(std::memory_order_relaxed));
    next.store(nullptr, std::memory_order_relaxed);
    head.store(0, std::memory_order_relaxed);
    tail.store(0, std::memory_order_relaxed);
  }

  void* slot(std::uint64_t index) noexcept {
    return storage_ + (index & mask) * ops->size;
  }

  std::atomic<segment*> next{nullptr};
  std::atomic<std::uint64_t> head{0};  // consumer-owned
  std::atomic<std::uint64_t> tail{0};  // producer-owned
  const std::uint64_t mask;
  const element_ops* const ops;

 private:
  segment(std::uint64_t capacity, const element_ops* o, std::byte* storage)
      : mask(capacity - 1), ops(o), storage_(storage) {}
  ~segment() = default;

  std::byte* const storage_;
};

}  // namespace hq::detail
