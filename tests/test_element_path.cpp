// The element hot path after the padded-segment / cached-index /
// trivial-batching rework: trivial vs. non-trivial element types through
// push/pop/slices/pop_bulk, segment wrap and cross-segment reads with index
// caching active, the lock-free definitive-empty gate (including its
// liveness on adversarial spawn orders), and the data-path slow-event
// counters that pin the "zero mu, zero remote loads on the fast path"
// contract. Runs under the TSan CI preset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "hq.hpp"

namespace {

// ------------------------------------------------------------ element types

/// Non-trivial, move-only, destructor-counting element. ASan flags leaks,
/// the counter flags double-destroys and misses.
struct counted_box {
  static std::atomic<long> live;

  explicit counted_box(std::uint64_t v) : value(new std::uint64_t(v)) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  counted_box(counted_box&& o) noexcept : value(o.value) {
    o.value = nullptr;
    live.fetch_add(1, std::memory_order_relaxed);
  }
  counted_box& operator=(counted_box&& o) noexcept {
    delete value;
    value = o.value;
    o.value = nullptr;
    return *this;
  }
  counted_box(const counted_box&) = delete;
  counted_box& operator=(const counted_box&) = delete;
  ~counted_box() {
    delete value;
    live.fetch_sub(1, std::memory_order_relaxed);
  }

  std::uint64_t get() const { return value != nullptr ? *value : ~0ull; }
  std::uint64_t* value;
};
std::atomic<long> counted_box::live{0};

static_assert(hq::detail::is_trivially_relocatable_v<int>);
static_assert(!hq::detail::is_trivially_relocatable_v<counted_box>);

// ------------------------------------------------- trivial vs. non-trivial

TEST(ElementPath, TrivialElementsThroughAllApis) {
  hq::scheduler sched(2);
  constexpr int kTotal = 20000;
  std::vector<int> got;
  sched.run([&] {
    hq::hyperqueue<int> q(64);  // small segments: many wraps and chains
    hq::spawn(
        [](hq::pushdep<int> qq) {
          std::vector<int> batch(257);
          int v = 0;
          while (v < kTotal) {
            const int n = std::min<int>(257, kTotal - v);
            std::iota(batch.begin(), batch.begin() + n, v);
            hq::push_slices(qq, batch.begin(), batch.begin() + n, 64);
            v += n;
          }
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&got](hq::popdep<int> qq) {
          // Alternate all three consumption modes to cross-check them.
          int mode = 0;
          for (;;) {
            if (mode == 0) {
              if (qq.empty()) break;
              got.push_back(qq.pop());
            } else if (mode == 1) {
              auto rs = qq.get_read_slice(100);
              if (rs.empty()) break;
              for (int x : rs) got.push_back(x);
              rs.release();
            } else {
              int buf[100];
              const std::size_t n = qq.pop_bulk(buf, 100);
              if (n == 0) break;
              got.insert(got.end(), buf, buf + n);
            }
            mode = (mode + 1) % 3;
          }
        },
        (hq::popdep<int>)q);
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) ASSERT_EQ(got[i], i) << "FIFO order broken at " << i;
}

TEST(ElementPath, MoveOnlyDestructorCountingElements) {
  counted_box::live.store(0);
  hq::scheduler sched(2);
  constexpr std::uint64_t kTotal = 5000;
  std::uint64_t sum = 0;
  sched.run([&] {
    hq::hyperqueue<counted_box> q(32);
    hq::spawn(
        [](hq::pushdep<counted_box> qq) {
          std::uint64_t v = 0;
          while (v < kTotal) {
            // Mix element pushes and write slices.
            if ((v & 1) == 0) {
              qq.push(counted_box(v));
              ++v;
            } else {
              auto ws = qq.get_write_slice(8);
              std::size_t i = 0;
              for (; i < ws.size() && v < kTotal; ++i, ++v) ws.emplace(i, v);
              ws.commit(i);
            }
          }
        },
        (hq::pushdep<counted_box>)q);
    hq::spawn(
        [&sum](hq::popdep<counted_box> qq) {
          bool use_slice = false;
          for (;;) {
            if (use_slice) {
              auto rs = qq.get_read_slice(16);
              if (rs.empty()) break;
              for (auto& b : rs) sum += b.get();
              rs.release();
            } else {
              if (qq.empty()) break;
              sum += qq.pop().get();
            }
            use_slice = !use_slice;
          }
        },
        (hq::popdep<counted_box>)q);
    hq::sync();
  });
  EXPECT_EQ(sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(counted_box::live.load(), 0) << "leak or double-destroy";
}

TEST(ElementPath, NonTrivialTeardownWithValuesInside) {
  // Values left inside at queue destruction are destroyed by the batched
  // teardown (destroy_range over wrapped runs).
  counted_box::live.store(0);
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<counted_box> q(8);
    // Wrap the ring first so the remaining values straddle the boundary.
    for (std::uint64_t v = 0; v < 6; ++v) q.push(counted_box(v));
    for (int i = 0; i < 6; ++i) {
      ASSERT_FALSE(q.empty());
      (void)q.pop();
    }
    for (std::uint64_t v = 0; v < 7; ++v) q.push(counted_box(100 + v));
    // 7 live values positioned across the wrap; destructor cleans up.
  });
  EXPECT_EQ(counted_box::live.load(), 0);
}

// --------------------------------------------- wrap + cross-segment slices

TEST(ElementPath, ReadSliceAcrossWrapAndSegments) {
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    // Phase 1: shift the indices so later slices hit the wrap point.
    for (int i = 0; i < 10; ++i) q.push(i);
    for (int i = 0; i < 10; ++i) {
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.pop(), i);
    }
    // Phase 2: fill across the wrap and into a second segment.
    for (int i = 0; i < 40; ++i) q.push(100 + i);
    std::vector<int> got;
    while (static_cast<int>(got.size()) < 40) {
      auto rs = q.get_read_slice(64);
      ASSERT_FALSE(rs.empty());
      // Slices are contiguous: never longer than the run to the wrap.
      for (int x : rs) got.push_back(x);
      rs.release();
    }
    for (int i = 0; i < 40; ++i) ASSERT_EQ(got[i], 100 + i);
  });
}

TEST(ElementPath, PopBulkAcrossWrapAndSegments) {
  hq::scheduler sched(1);
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    for (int i = 0; i < 5; ++i) q.push(i);
    int drop[5];
    ASSERT_EQ(q.pop_bulk(drop, 5), 5u);
    for (int i = 0; i < 40; ++i) q.push(i);
    std::vector<int> got;
    int buf[64];
    while (static_cast<int>(got.size()) < 40) {
      ASSERT_FALSE(q.empty());
      const std::size_t n = q.pop_bulk(buf, 64);
      ASSERT_GT(n, 0u);
      got.insert(got.end(), buf, buf + n);
    }
    ASSERT_EQ(got.size(), 40u);
    for (int i = 0; i < 40; ++i) ASSERT_EQ(got[i], i);
  });
}

// ----------------------------------------------------- fast-path contract

TEST(ElementPath, SteadyStateFastPathTakesNoLockAndNoRemoteLoads) {
  // Acceptance criterion: a steady-state single-segment producer/consumer
  // pair acquires queue_cb::mu zero times and reloads the remote index at
  // most once per segment-capacity of elements. Single task, deterministic.
  constexpr std::uint64_t kCap = 256;
  constexpr std::uint64_t kRounds = 200;
  hq::scheduler sched(1);
  hq::data_path_stats st{};
  hq::seg_pool_stats pool{};
  sched.run([&] {
    hq::hyperqueue<std::uint64_t> q(kCap);
    std::uint64_t expect = 0;
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      for (std::uint64_t i = 0; i < kCap; ++i) q.push(r * kCap + i);
      for (std::uint64_t i = 0; i < kCap; ++i) {
        ASSERT_FALSE(q.empty());
        ASSERT_EQ(q.pop(), expect++);
      }
    }
    st = q.data_stats();
    pool = q.pool_stats();
  });
  // Zero mutex acquisitions on the element path: the owner holds its views
  // from attach_owner, and the empty() gate resolves through ready data.
  EXPECT_EQ(st.mu_data, 0u);
  EXPECT_EQ(st.mu_view, 0u);
  // Remote-index reloads happen only at the full/empty boundary: at most
  // one head reload per capacity of pushes and one tail reload per
  // refill, not one per element.
  EXPECT_LE(st.head_reloads, kRounds + 2);
  EXPECT_LE(st.tail_reloads, 2 * kRounds + 2);
  // And the whole run rides a single segment.
  EXPECT_EQ(pool.allocated, 1u);
}

TEST(ElementPath, TwoTaskStreamWalksMuAtMostOncePerAttachment) {
  // A consumer outrunning a live producer settles into lock-free polling:
  // the exact older-pushers walk under mu runs at most once per consumer
  // attachment until a pusher completes, and never after the live-pusher
  // count reaches zero.
  hq::scheduler sched(2);
  constexpr int kTotal = 200000;
  long sum = 0;
  hq::data_path_stats st{};
  sched.run([&] {
    hq::hyperqueue<int> q(256);
    hq::spawn(
        [](hq::pushdep<int> qq) {
          for (int i = 0; i < kTotal; ++i) qq.push(i);
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&sum](hq::popdep<int> qq) {
          while (!qq.empty()) sum += qq.pop();
        },
        (hq::popdep<int>)q);
    hq::sync();
    st = q.data_stats();
  });
  EXPECT_EQ(sum, static_cast<long>(kTotal) * (kTotal - 1) / 2);
  // One walk for the consumer while the producer lives (epoch memo) plus at
  // most one ensure_queue_view claim; generous bound, but far below the
  // per-poll-round acquisitions of the old design (~thousands).
  EXPECT_LE(st.mu_data, 4u);
}

TEST(ElementPath, RingRecycleServedBySegmentCache) {
  // Steady-state drain -> recycle -> alloc-next-wrap cycles go through the
  // lock-free one-slot cache, not the free-list spinlock.
  hq::scheduler sched(1);
  hq::data_path_stats st{};
  hq::seg_pool_stats pool{};
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    // Fill two segments, then drain both, 50 times: every wrap recycles the
    // drained segment and allocates it back.
    for (int r = 0; r < 50; ++r) {
      for (int i = 0; i < 32; ++i) q.push(i);
      for (int i = 0; i < 32; ++i) {
        ASSERT_FALSE(q.empty());
        ASSERT_EQ(q.pop(), i);
      }
    }
    st = q.data_stats();
    pool = q.pool_stats();
  });
  EXPECT_GT(st.seg_cache_hits, 0u);
  EXPECT_EQ(st.seg_cache_hits, pool.recycled)
      << "every pool reuse should have been served lock-free";
}

// ------------------------------------------- definitive-empty gate liveness

TEST(ElementPath, ConsumerSpawnedBeforeProducerSeesEmpty) {
  // The consumer is OLDER than the producer: its empty() must come back
  // true (no older pusher) even while the younger producer is live — the
  // exact walk under mu must still run while the lock-free upper bound is
  // nonzero. The younger producer's values then flow to the owner.
  for (unsigned workers : {1u, 2u, 4u}) {
    hq::scheduler sched(workers);
    int consumer_got = 0;
    std::vector<int> owner_got;
    sched.run([&] {
      hq::hyperqueue<int> q(64);
      hq::spawn(
          [&consumer_got](hq::popdep<int> qq) {
            while (!qq.empty()) {
              qq.pop();
              ++consumer_got;
            }
          },
          (hq::popdep<int>)q);
      hq::spawn(
          [](hq::pushdep<int> qq) {
            for (int i = 0; i < 100; ++i) qq.push(i);
          },
          (hq::pushdep<int>)q);
      hq::sync();
      while (!q.empty()) owner_got.push_back(q.pop());
    });
    EXPECT_EQ(consumer_got, 0) << "consumer must not see younger values";
    ASSERT_EQ(owner_got.size(), 100u);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(owner_got[i], i);
  }
}

TEST(ElementPath, CrossQueueOlderConsumerYoungerProducerNoLivelock) {
  // C (older) pops q1 and pushes to q2; P (younger) pops q2 and pushes to
  // q1. Serial elision: C sees q1 empty, sends a marker through q2, P
  // receives it. A gate that waited for q1's live-pusher count to reach
  // zero before answering C would livelock here.
  hq::scheduler sched(2);
  std::vector<int> p_got;
  sched.run([&] {
    hq::hyperqueue<int> q1(64);
    hq::hyperqueue<int> q2(64);
    hq::spawn(
        [](hq::popdep<int> in, hq::pushdep<int> out) {
          int n = 0;
          while (!in.empty()) {
            in.pop();
            ++n;
          }
          out.push(1000 + n);  // n == 0: no older producer on q1
        },
        (hq::popdep<int>)q1, (hq::pushdep<int>)q2);
    hq::spawn(
        [&p_got](hq::popdep<int> in, hq::pushdep<int> out) {
          while (!in.empty()) p_got.push_back(in.pop());
          out.push(7);  // discarded at q1 teardown
        },
        (hq::popdep<int>)q2, (hq::pushdep<int>)q1);
    hq::sync();
  });
  ASSERT_EQ(p_got.size(), 1u);
  EXPECT_EQ(p_got[0], 1000);
}

TEST(ElementPath, SpawnAfterDrainInvalidatesDefinitiveEmptyMemo) {
  // Figure-6 owner loop: drain to definitive empty, then spawn a NEW
  // producer and drain again. The consumer-local no-older-pushers memo must
  // be invalidated by the spawn, or the second drain would miss every value.
  hq::scheduler sched(2);
  for (unsigned workers : {1u, 2u}) {
    hq::scheduler s2(workers);
    s2.run([&] {
      hq::hyperqueue<int> q(64);
      for (int round = 0; round < 3; ++round) {
        hq::spawn(
            [round](hq::pushdep<int> qq) {
              for (int i = 0; i < 100; ++i) qq.push(round * 100 + i);
            },
            (hq::pushdep<int>)q);
        int n = 0;
        while (!q.empty()) {
          ASSERT_EQ(q.pop(), round * 100 + n);
          ++n;
        }
        ASSERT_EQ(n, 100) << "definitive-empty memo went stale in round " << round;
      }
    });
  }
}

TEST(ElementPath, EmptyPopIdiomReusesReadySegment) {
  // Figure-2 `while (!q.empty()) q.pop();` with interleaved production:
  // correctness of the ready-segment hint across starvation, wrap, and
  // segment-chain advances.
  hq::scheduler sched(2);
  constexpr int kTotal = 50000;
  std::vector<int> got;
  got.reserve(kTotal);
  sched.run([&] {
    hq::hyperqueue<int> q(32);
    hq::spawn(
        [](hq::pushdep<int> qq) {
          for (int i = 0; i < kTotal; ++i) qq.push(i);
        },
        (hq::pushdep<int>)q);
    hq::spawn(
        [&got](hq::popdep<int> qq) {
          while (!qq.empty()) got.push_back(qq.pop());
        },
        (hq::popdep<int>)q);
    hq::sync();
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) ASSERT_EQ(got[i], i);
}

TEST(ElementPath, ReadySegmentHintSurvivesPopChildHandoff) {
  // Parent caches a ready segment via empty(), then spawns a pop child that
  // consumes ahead; the parent's subsequent pops must re-validate the hint
  // (live_pop_children / queue-view gates) instead of trusting it.
  hq::scheduler sched(2);
  std::vector<int> child_got, parent_got;
  sched.run([&] {
    hq::hyperqueue<int> q(16);
    for (int i = 0; i < 10; ++i) q.push(i);
    ASSERT_FALSE(q.empty());  // caches the ready segment on the owner
    hq::spawn(
        [&child_got](hq::popdep<int> qq) {
          for (int i = 0; i < 6; ++i) {
            if (qq.empty()) break;
            child_got.push_back(qq.pop());
          }
        },
        (hq::popdep<int>)q);
    hq::sync();
    while (!q.empty()) parent_got.push_back(q.pop());
  });
  ASSERT_EQ(child_got.size(), 6u);
  ASSERT_EQ(parent_got.size(), 4u);
  for (int i = 0; i < 6; ++i) ASSERT_EQ(child_got[i], i);
  for (int i = 0; i < 4; ++i) ASSERT_EQ(parent_got[i], 6 + i);
}

// ---------------------------------------------------------- selective sync

TEST(ElementPath, SyncPushCounterMatchesChildLifetimes) {
  // sync_push now reads the O(1) live_push_children counter; after it
  // returns, every push child's data must be poppable without blocking.
  hq::scheduler sched(4);
  sched.run([&] {
    hq::hyperqueue<int> q(64);
    constexpr int kChildren = 16;
    for (int c = 0; c < kChildren; ++c) {
      hq::spawn(
          [c](hq::pushdep<int> qq) {
            for (int i = 0; i < 100; ++i) qq.push(c * 100 + i);
          },
          (hq::pushdep<int>)q);
    }
    q.sync_push();
    int n = 0;
    while (!q.empty()) {
      q.pop();
      ++n;
    }
    EXPECT_EQ(n, kChildren * 100);
  });
}

// ------------------------------------------------- 2-thread segment torture

/// Raw padded-segment torture with the cached-index slice path: producer
/// uses acquire_write/publish_write, consumer acquire_read/retire_read.
/// (The element-wise 2-thread torture lives in test_spsc_torture.cpp.)
TEST(ElementPath, PaddedSegmentSliceTortureTwoThreads) {
  const hq::detail::element_ops ops = hq::detail::make_element_ops<std::uint64_t>();
  hq::detail::data_path_counters counters;
  auto* seg = hq::detail::segment::create(512, &ops, &counters);
  constexpr std::uint64_t kItems = 1'000'000;

  std::thread producer([&] {
    std::uint64_t v = 0;
    while (v < kItems) {
      std::uint64_t n = 0;
      void* p = seg->acquire_write(kItems - v, &n);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      auto* slots = static_cast<std::uint64_t*>(p);
      for (std::uint64_t i = 0; i < n; ++i) slots[i] = v++;
      seg->publish_write(n);
    }
  });

  std::uint64_t expect = 0;
  std::uint64_t first_bad = kItems;
  while (expect < kItems) {
    std::uint64_t n = 0;
    void* p = seg->acquire_read(kItems - expect, &n);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    const auto* slots = static_cast<const std::uint64_t*>(p);
    for (std::uint64_t i = 0; i < n; ++i, ++expect) {
      if (first_bad == kItems && slots[i] != expect) first_bad = expect;
    }
    seg->retire_read(n);
  }
  producer.join();
  ASSERT_EQ(first_bad, kItems) << "FIFO violation at item " << first_bad;
  // (Reload counts here depend on thread scheduling; the deterministic
  // bounds are asserted in SteadyStateFastPathTakesNoLockAndNoRemoteLoads.)

  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
}

}  // namespace
