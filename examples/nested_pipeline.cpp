// Nested pipelines on a shared write queue — the structure of the paper's
// Figure 10(c), reduced to its essentials: an outer task creates one inner
// pipeline (local hyperqueue + producer + relay) per work batch; all relays
// push to one shared ordered output queue.
//
//   $ ./examples/nested_pipeline [workers]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "hq.hpp"

namespace {

void inner_producer(int base, hq::pushdep<int> local) {
  for (int i = 0; i < 20; ++i) local.push(base + i);
}

void relay(hq::popdep<int> local, hq::pushdep<int> out) {
  while (!local.empty()) out.push(local.pop() * 2);
}

void outer(hq::pushdep<int> out) {
  std::vector<std::unique_ptr<hq::hyperqueue<int>>> locals;
  for (int batch = 0; batch < 16; ++batch) {
    locals.push_back(std::make_unique<hq::hyperqueue<int>>(32));
    hq::hyperqueue<int>& local = *locals.back();
    hq::spawn(inner_producer, batch * 20, (hq::pushdep<int>)local);
    hq::spawn(relay, (hq::popdep<int>)local, out);
  }
  hq::sync();  // local queues must outlive their tasks
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  hq::scheduler sched(workers);
  bool ordered = true;
  int count = 0;
  sched.run([&] {
    hq::hyperqueue<int> write_queue(64);
    hq::spawn(outer, (hq::pushdep<int>)write_queue);
    hq::spawn(
        [&](hq::popdep<int> q) {
          int expect = 0;
          while (!q.empty()) {
            ordered = ordered && (q.pop() == expect * 2);
            ++expect;
            ++count;
          }
        },
        (hq::popdep<int>)write_queue);
    hq::sync();
  });
  std::printf("%d values crossed %d nested pipelines %s\n", count, 16,
              ordered ? "in program order" : "OUT OF ORDER (bug!)");
  return ordered && count == 320 ? 0 : 1;
}
