// spawn / sync / call — the task-parallel surface of the runtime.
//
// Mirrors the paper's programming model (Figures 1 and 2):
//
//   hq::scheduler sched(P);
//   sched.run([&] {
//     hq::hyperqueue<data> queue;
//     hq::spawn(producer, (hq::pushdep<data>)queue, 0, total);
//     hq::spawn(consumer, (hq::popdep<data>)queue);
//     hq::sync();
//   });
//
// Arguments are captured by value. Dependency wrappers (pushdep/popdep/
// pushpopdep, indep/outdep/inoutdep) expose hq_dep_resolve(frame*), which
// spawn() calls at spawn time to register scheduling dependences and splice
// the child's producer shard into the queue's scan order (core/queue_cb.*).
// Push-privileged spawns resolve entirely lock-free on the spawning
// worker; only pop privileges take the queue's pop-FIFO lock.
#pragma once

#include <cassert>
#include <tuple>
#include <type_traits>
#include <utility>

#include "sched/scheduler.hpp"
#include "sched/task.hpp"

namespace hq {

namespace detail {

/// Resolve one spawn argument: dependency wrappers register themselves on
/// the child frame; plain values pass through unchanged.
template <typename A>
auto resolve_spawn_arg(task_frame* fr, A&& a) {
  if constexpr (requires { std::forward<A>(a).hq_dep_resolve(fr); }) {
    return std::forward<A>(a).hq_dep_resolve(fr);
  } else {
    return std::decay_t<A>(std::forward<A>(a));
  }
}

inline void launch(task_frame* fr);

/// Create a child frame with the closure bound and dependences registered,
/// but the spawn guard still held. Callers must launch() it.
template <typename F, typename... Args>
task_frame* make_task(F&& f, Args&&... args) {
  worker_ctx* w = t_worker;
  assert(w != nullptr && w->current != nullptr &&
         "spawn() is only valid inside a task (use scheduler::run for the root)");
  task_frame* parent = w->current;
  task_frame* fr = w->sched->alloc_frame(parent);  // per-worker magazine pool
  parent->live_children.fetch_add(1, std::memory_order_relaxed);
  try {
    // Build the argument tuple; wrapper resolution registers dependences and
    // performs hyperqueue view transfers for this spawn.
    auto bound = std::tuple(resolve_spawn_arg(fr, std::forward<Args>(args))...);
    fr->fn = task_fn(
        [func = std::decay_t<F>(std::forward<F>(f)), tup = std::move(bound)]() mutable {
          std::apply(func, std::move(tup));
        });
  } catch (...) {
    // Argument resolution threw (e.g. an injected allocation failure in the
    // attach pool) with shards/hooks possibly already half-registered on fr
    // and the parent's join counter bumped. Run the frame as a no-op: the
    // completion protocol unwinds whatever was registered and balances the
    // counter, keeping queue state and pools consistent during the rethrow.
    fr->fn = task_fn([] {});
    launch(fr);
    throw;
  }
  w->counters.spawns.fetch_add(1, std::memory_order_relaxed);
  return fr;
}

/// Release the spawn guard: the frame becomes ready once all registered
/// dependences are satisfied.
inline void launch(task_frame* fr) {
  if (fr->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    fr->sched->enqueue(fr);
  }
}

}  // namespace detail

/// Spawn `f(args...)` as a child task that may run in parallel with the
/// continuation of the calling task.
template <typename F, typename... Args>
void spawn(F&& f, Args&&... args) {
  detail::launch(detail::make_task(std::forward<F>(f), std::forward<Args>(args)...));
}

/// Wait until all children spawned by the calling task have completed.
/// The worker helps execute ready tasks while waiting. Cancellable: once a
/// failure cancels the run this unwinds with detail::cancel_unwind (the
/// implicit sync at task return still joins the children).
inline void sync() {
  detail::worker_ctx* w = detail::t_worker;
  assert(w != nullptr && w->current != nullptr && "sync() outside a task");
  detail::task_frame* f = w->current;
  w->sched->wait_until_cancellable(
      [f] { return f->live_children.load(std::memory_order_acquire) == 0; });
}

/// Call `f(args...)` through the task machinery and wait for it (paper
/// Section 4.2 treats calls like spawns for hyperqueue purposes). The callee
/// still respects its scheduling dependences.
template <typename F, typename... Args>
void call(F&& f, Args&&... args) {
  detail::worker_ctx* w = detail::t_worker;
  assert(w != nullptr && w->current != nullptr && "call() outside a task");
  detail::task_frame* fr =
      detail::make_task(std::forward<F>(f), std::forward<Args>(args)...);
  // The calling task's stack outlives the wait below (and the hook runs
  // before the callee's frame notifies our join counter), so a stack-local
  // flag suffices — no shared_ptr allocation on the call path.
  std::atomic<bool> done{false};
  fr->completion_hooks.push_back(
      hook_fn([&done] { done.store(true, std::memory_order_release); }));
  detail::launch(fr);
  // Deliberately NOT cancellable: the completion hook writes into this
  // stack frame, so the wait must outlive the callee. Under cancellation
  // the callee's body is skipped and completes promptly anyway.
  w->sched->wait_until([&] { return done.load(std::memory_order_acquire); });
}

/// Number of workers of the scheduler executing the calling task (1 when
/// called outside any scheduler).
inline unsigned workers() {
  scheduler* s = scheduler::current();
  return s ? s->num_workers() : 1u;
}

}  // namespace hq
