// Small vector with inline storage.
//
// Task frames carry short lists (dependents, completion hooks, queue
// attachments). Frames are allocated per spawn, so these lists avoid heap
// traffic for the common small sizes and spill to the heap only beyond N.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hq {

/// Minimal vector with N inline slots. Supports the operations the runtime
/// needs: push_back, unordered erase, iteration, clear. Move-only semantics
/// are sufficient (frames are never copied).
template <typename T, std::size_t N>
class inline_vec {
 public:
  inline_vec() = default;
  inline_vec(const inline_vec&) = delete;
  inline_vec& operator=(const inline_vec&) = delete;

  inline_vec(inline_vec&& other) noexcept { move_from(std::move(other)); }
  inline_vec& operator=(inline_vec&& other) noexcept {
    if (this != &other) {
      destroy_all();
      move_from(std::move(other));
    }
    return *this;
  }

  ~inline_vec() { destroy_all(); }

  T& push_back(T value) {
    if (size_ == cap_) grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::move(value));
    ++size_;
    return *slot;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Remove element at index by swapping in the last element (O(1); order is
  /// not preserved — fine for membership lists).
  void erase_unordered(std::size_t i) {
    assert(i < size_);
    T* d = data();
    if (i != size_ - 1) d[i] = std::move(d[size_ - 1]);
    d[size_ - 1].~T();
    --size_;
  }

  /// Remove the first element equal to v; returns whether one was found.
  bool erase_value(const T& v) {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data()[i] == v) {
        erase_unordered(i);
        return true;
      }
    }
    return false;
  }

  void clear() {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T* data() noexcept { return heap_ ? heap_ : inline_ptr(); }
  const T* data() const noexcept { return heap_ ? heap_ : inline_ptr(); }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& back() { return data()[size_ - 1]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

 private:
  T* inline_ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage_)); }
  const T* inline_ptr() const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_));
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* mem = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(mem + i)) T(std::move(d[i]));
      d[i].~T();
    }
    release_heap();
    heap_ = mem;
    cap_ = new_cap;
  }

  void destroy_all() {
    clear();
    release_heap();
    heap_ = nullptr;
    cap_ = N;
  }

  void release_heap() {
    if (heap_) ::operator delete(heap_, std::align_val_t{alignof(T)});
  }

  void move_from(inline_vec&& other) {
    if (other.heap_) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = N;
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(inline_ptr() + i)) T(std::move(other.inline_ptr()[i]));
        other.inline_ptr()[i].~T();
      }
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace hq
