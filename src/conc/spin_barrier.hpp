// Sense-reversing spin barrier for benchmark harnesses: lets all worker
// threads start a measured region at the same instant without a kernel
// round-trip per phase.
#pragma once

#include <atomic>
#include <cstdint>

#include "conc/backoff.hpp"

namespace hq {

/// Reusable barrier for a fixed set of participants.
class spin_barrier {
 public:
  explicit spin_barrier(std::uint32_t participants) : total_(participants) {}

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  /// Blocks until all participants arrive; safe to reuse immediately.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      backoff bo;
      while (sense_.load(std::memory_order_acquire) != my_sense) bo.pause();
    }
  }

 private:
  const std::uint32_t total_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace hq
