#include "util/bwt.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace hq::util {

bwt_result bwt_forward(const std::uint8_t* data, std::size_t len) {
  bwt_result r;
  r.primary_index = 0;
  if (len == 0) return r;
  const std::size_t n = len;

  // Prefix doubling over circular rotations with radix (counting) sorts:
  // O(n log n). rank[i] is the sort key of the rotation starting at i,
  // refined from k-character to 2k-character context each round.
  std::vector<std::uint32_t> rank(n), new_rank(n);
  std::vector<std::uint32_t> order(n), tmp(n);
  // Round 0 indexes cnt[0..256] (257 slots); later rounds use classes+1 <=
  // n+1 slots.
  std::vector<std::uint32_t> cnt(std::max<std::size_t>(n + 1, 257));

  // Round 0: counting sort by first byte.
  std::fill(cnt.begin(), cnt.begin() + 257, 0u);
  for (std::size_t i = 0; i < n; ++i) cnt[data[i] + 1]++;
  for (int c = 1; c <= 256; ++c) cnt[static_cast<std::size_t>(c)] +=
      cnt[static_cast<std::size_t>(c) - 1];
  for (std::size_t i = 0; i < n; ++i) order[cnt[data[i]]++] = static_cast<std::uint32_t>(i);
  rank[order[0]] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    rank[order[i]] = rank[order[i - 1]] + (data[order[i]] != data[order[i - 1]] ? 1u : 0u);
  }

  for (std::size_t k = 1; k < n; k <<= 1) {
    if (rank[order[n - 1]] == n - 1) break;  // all ranks distinct
    // Sort by second key: shifting the current order by -k (circular) yields
    // an enumeration already sorted by rank[(i+k) mod n].
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = (order[i] + static_cast<std::uint32_t>(n) -
                static_cast<std::uint32_t>(k % n)) %
               static_cast<std::uint32_t>(n);
    }
    // Stable counting sort by first key (rank of position).
    const std::size_t classes = rank[order[n - 1]] + 1;
    std::fill(cnt.begin(), cnt.begin() + static_cast<std::ptrdiff_t>(classes + 1), 0u);
    for (std::size_t i = 0; i < n; ++i) cnt[rank[tmp[i]] + 1]++;
    for (std::size_t c = 1; c <= classes; ++c) cnt[c] += cnt[c - 1];
    for (std::size_t i = 0; i < n; ++i) order[cnt[rank[tmp[i]]]++] = tmp[i];
    // Re-rank by (rank, rank+k) pairs.
    new_rank[order[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t a = order[i], b = order[i - 1];
      const bool equal = rank[a] == rank[b] &&
                         rank[(a + k) % n] == rank[(b + k) % n];
      new_rank[a] = new_rank[b] + (equal ? 0u : 1u);
    }
    rank.swap(new_rank);
  }

  r.last_column.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t rot = order[i];
    r.last_column[i] = data[(rot + n - 1) % n];
    if (rot == 0) r.primary_index = static_cast<std::uint32_t>(i);
  }
  return r;
}

std::vector<std::uint8_t> bwt_inverse(const std::uint8_t* last_column,
                                      std::size_t len,
                                      std::uint32_t primary_index) {
  std::vector<std::uint8_t> out;
  if (len == 0) return out;
  if (primary_index >= len) throw std::runtime_error("bwt: bad primary index");

  // LF mapping: for each row i, next[i] is the row whose rotation is one
  // step forward; walking it from the primary row rebuilds the text.
  std::size_t counts[256] = {};
  for (std::size_t i = 0; i < len; ++i) counts[last_column[i]]++;
  std::size_t starts[256];
  std::size_t acc = 0;
  for (int c = 0; c < 256; ++c) {
    starts[c] = acc;
    acc += counts[c];
  }
  std::vector<std::uint32_t> lf(len);
  std::size_t seen[256] = {};
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t c = last_column[i];
    lf[i] = static_cast<std::uint32_t>(starts[c] + seen[c]++);
  }
  // The primary row is the original string; its last-column char is the
  // final character, and LF steps to the rotation one position earlier.
  out.resize(len);
  std::uint32_t row = primary_index;
  for (std::size_t i = len; i-- > 0;) {
    out[i] = last_column[row];
    row = lf[row];
  }
  return out;
}

std::vector<std::uint8_t> mtf_encode(const std::uint8_t* data, std::size_t len) {
  std::uint8_t alphabet[256];
  for (int i = 0; i < 256; ++i) alphabet[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t c = data[i];
    std::uint8_t j = 0;
    while (alphabet[j] != c) ++j;
    out[i] = j;
    // Move to front.
    for (std::uint8_t k = j; k > 0; --k) alphabet[k] = alphabet[k - 1];
    alphabet[0] = c;
  }
  return out;
}

std::vector<std::uint8_t> mtf_decode(const std::uint8_t* data, std::size_t len) {
  std::uint8_t alphabet[256];
  for (int i = 0; i < 256; ++i) alphabet[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t j = data[i];
    const std::uint8_t c = alphabet[j];
    out[i] = c;
    for (std::uint8_t k = j; k > 0; --k) alphabet[k] = alphabet[k - 1];
    alphabet[0] = c;
  }
  return out;
}

std::vector<std::uint8_t> zrle_encode(const std::uint8_t* data, std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  std::size_t i = 0;
  while (i < len) {
    if (data[i] == 0) {
      std::size_t run = 1;
      while (i + run < len && data[i + run] == 0 && run < 255) ++run;
      out.push_back(0);
      out.push_back(static_cast<std::uint8_t>(run));
      i += run;
    } else {
      out.push_back(data[i++]);
    }
  }
  return out;
}

std::vector<std::uint8_t> zrle_decode(const std::uint8_t* data, std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len * 2);
  std::size_t i = 0;
  while (i < len) {
    if (data[i] == 0) {
      if (i + 1 >= len) throw std::runtime_error("zrle: truncated run");
      const std::size_t run = data[i + 1];
      if (run == 0) throw std::runtime_error("zrle: zero run length");
      out.insert(out.end(), run, 0);
      i += 2;
    } else {
      out.push_back(data[i++]);
    }
  }
  return out;
}

}  // namespace hq::util
