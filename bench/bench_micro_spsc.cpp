// Section 3.2 substrate ablation: single-producer single-consumer queue
// designs — Lamport array ring (with cached indices), FastForward
// slot-state ring, mutex+condvar bounded queue, and the hyperqueue segment
// itself. Single-threaded ping-pong isolates the per-operation cost.
#include <benchmark/benchmark.h>

#include "conc/bounded_queue.hpp"
#include "conc/spsc_ring.hpp"
#include "core/segment.hpp"

namespace {

void BM_LamportRing(benchmark::State& state) {
  hq::spsc_ring<int> q(1024);
  int v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LamportRing);

void BM_FastForwardRing(benchmark::State& state) {
  hq::ff_ring<int> q(1024, -1);
  int v = 0;
  for (auto _ : state) {
    q.try_push(v++ & 0xFFFF);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastForwardRing);

void BM_MutexBoundedQueue(benchmark::State& state) {
  hq::bounded_queue<int> q(1024);
  int v = 0;
  for (auto _ : state) {
    q.push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexBoundedQueue);

void BM_HyperqueueSegment(benchmark::State& state) {
  hq::detail::element_ops ops;
  ops.size = sizeof(int);
  ops.align = alignof(int);
  ops.move_construct = [](void* dst, void* src) noexcept {
    *static_cast<int*>(dst) = *static_cast<int*>(src);
  };
  ops.destroy = [](void*) noexcept {};
  auto* seg = hq::detail::segment::create(1024, &ops);
  int v = 0, out = 0;
  for (auto _ : state) {
    seg->try_push(&v);
    ++v;
    seg->pop_into(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  seg->destroy_remaining();
  hq::detail::segment::destroy(seg);
}
BENCHMARK(BM_HyperqueueSegment);

}  // namespace
