#include <algorithm>
#include <cmath>

#include "apps/ferret/ferret.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hq::apps::ferret {

using util::xoshiro256;

feature_db build_db(const config& cfg) {
  feature_db db;
  db.entries = cfg.db_entries;
  db.dims = cfg.dims;
  db.data.resize(db.entries * db.dims);
  xoshiro256 rng(cfg.seed ^ 0xdbdbdbdbull);
  for (auto& v : db.data) v = static_cast<float>(rng.uniform());
  return db;
}

void k_load(const config& cfg, item* it) {
  it->pixels = util::gen_image(cfg.image_wh, cfg.image_wh, it->seed);
}

void k_segment(const config& cfg, item* it) {
  // k-means over intensities, K=4, fixed iteration count.
  constexpr int kK = 4;
  constexpr int kIters = 8;
  const std::size_t n = it->pixels.size();
  float centers[kK];
  for (int k = 0; k < kK; ++k) {
    centers[k] = static_cast<float>(k + 1) / (kK + 1);
  }
  it->labels.assign(n, 0);
  for (int iter = 0; iter < kIters; ++iter) {
    double sums[kK] = {};
    std::size_t counts[kK] = {};
    for (std::size_t i = 0; i < n; ++i) {
      const float v = it->pixels[i];
      int best = 0;
      float best_d = std::abs(v - centers[0]);
      for (int k = 1; k < kK; ++k) {
        const float d = std::abs(v - centers[k]);
        if (d < best_d) {
          best_d = d;
          best = k;
        }
      }
      it->labels[i] = static_cast<std::uint8_t>(best);
      sums[best] += v;
      counts[best]++;
    }
    for (int k = 0; k < kK; ++k) {
      if (counts[k] != 0) {
        centers[k] = static_cast<float>(sums[k] / static_cast<double>(counts[k]));
      }
    }
  }
  (void)cfg;
}

void k_extract(const config& cfg, item* it) {
  // Per-segment moments: size, mean, variance, centroid x/y.
  constexpr int kK = 4;
  const std::size_t w = cfg.image_wh;
  double sum[kK] = {}, sum2[kK] = {}, cx[kK] = {}, cy[kK] = {};
  std::size_t cnt[kK] = {};
  for (std::size_t i = 0; i < it->pixels.size(); ++i) {
    const int k = it->labels[i];
    const float v = it->pixels[i];
    sum[k] += v;
    sum2[k] += static_cast<double>(v) * v;
    cx[k] += static_cast<double>(i % w);
    cy[k] += static_cast<double>(i / w);
    cnt[k]++;
  }
  it->features.clear();
  it->features.reserve(kK * 5);
  for (int k = 0; k < kK; ++k) {
    const double n = cnt[k] != 0 ? static_cast<double>(cnt[k]) : 1.0;
    const double mean = sum[k] / n;
    it->features.push_back(static_cast<float>(n / static_cast<double>(it->pixels.size())));
    it->features.push_back(static_cast<float>(mean));
    it->features.push_back(static_cast<float>(sum2[k] / n - mean * mean));
    it->features.push_back(static_cast<float>(cx[k] / n / static_cast<double>(w)));
    it->features.push_back(static_cast<float>(cy[k] / n / static_cast<double>(w)));
  }
}

void k_vector(const config& cfg, item* it) {
  // Soft-assignment histogram of pixels into `dims` bins, modulated by the
  // segment features: the O(pixels * dims) cost profile of ferret's
  // vectorization stage.
  const std::size_t d = cfg.dims;
  it->qvector.assign(d, 0.0f);
  const float fbias = it->features.empty() ? 0.0f : it->features[1];
  for (std::size_t i = 0; i < it->pixels.size(); ++i) {
    const float v = it->pixels[i] + 0.05f * fbias;
    const float pos = v * static_cast<float>(d - 1);
    // Triangular kernel over all bins (deliberately dense).
    for (std::size_t b = 0; b < d; ++b) {
      const float dist = std::abs(pos - static_cast<float>(b));
      if (dist < 2.0f) it->qvector[b] += (2.0f - dist) * 0.5f;
    }
  }
  // L1 normalize.
  float total = 0;
  for (float v : it->qvector) total += v;
  if (total > 0) {
    for (auto& v : it->qvector) v /= total;
  }
}

void k_rank(const config& cfg, const feature_db& db, item* it) {
  // Exhaustive scan: L2 distance against every database entry, keep top-k.
  const std::size_t d = db.dims;
  it->topk.clear();
  it->topk.reserve(cfg.topk + 1);
  for (std::size_t e = 0; e < db.entries; ++e) {
    const float* row = db.data.data() + e * d;
    float dist = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const float x = it->qvector[j] - row[j];
      dist += x * x;
    }
    if (it->topk.size() < cfg.topk || dist < it->topk.back().first) {
      const auto entry = std::make_pair(dist, static_cast<std::uint32_t>(e));
      it->topk.insert(std::lower_bound(it->topk.begin(), it->topk.end(), entry),
                      entry);
      if (it->topk.size() > cfg.topk) it->topk.pop_back();
    }
  }
}

void k_output(std::uint64_t* checksum, const item& it) {
  // FNV-1a fold over the ranked ids; order-sensitive, so any misordering of
  // the serial output stage changes the checksum.
  std::uint64_t h = *checksum ? *checksum : 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(it.seq);
  for (const auto& [dist, id] : it.topk) {
    mix(id);
    mix(static_cast<std::uint64_t>(dist * 1e4f));
  }
  *checksum = h;
}

namespace {

void collect(const util::dir_tree::dir_node& n, const std::string& prefix,
             std::vector<std::string>* out) {
  for (const auto& f : n.files) out->push_back(prefix + "/" + f);
  for (const auto& d : n.subdirs) collect(d, prefix + "/" + d.name, out);
}

}  // namespace

std::vector<std::string> traversal_order(const config& cfg) {
  util::dir_tree tree = util::gen_dir_tree(cfg.num_images, cfg.seed);
  std::vector<std::string> files;
  files.reserve(cfg.num_images);
  collect(tree.root, tree.root.name, &files);
  return files;
}

std::vector<double> stage_times(const config& cfg) {
  feature_db db = build_db(cfg);
  auto files = traversal_order(cfg);
  std::vector<double> t(6, 0.0);
  util::stopwatch sw;
  // Input: tree generation + traversal + load.
  std::vector<item> items(files.size());
  sw.reset();
  for (std::size_t i = 0; i < files.size(); ++i) {
    items[i].seq = i;
    items[i].path = files[i];
    items[i].seed = cfg.seed ^ (i * 0x9e3779b97f4a7c15ull);
    k_load(cfg, &items[i]);
  }
  t[0] = sw.seconds();
  sw.reset();
  for (auto& it : items) k_segment(cfg, &it);
  t[1] = sw.seconds();
  sw.reset();
  for (auto& it : items) k_extract(cfg, &it);
  t[2] = sw.seconds();
  sw.reset();
  for (auto& it : items) k_vector(cfg, &it);
  t[3] = sw.seconds();
  sw.reset();
  for (auto& it : items) k_rank(cfg, db, &it);
  t[4] = sw.seconds();
  sw.reset();
  std::uint64_t checksum = 0;
  for (const auto& it : items) k_output(&checksum, it);
  t[5] = sw.seconds();
  return t;
}

}  // namespace hq::apps::ferret
