// Task dataflow on versioned objects (the paper's baseline "objects" model,
// Figure 1; semantics follow Swan [Vandierendonck et al., PACT'11]).
//
// A versioned<T> tracks reader/writer dependences between the tasks it is
// passed to:
//   indep<T>     — read-only:   runs after the last writer.
//   inoutdep<T>  — read-write:  runs after the last writer and all readers.
//   outdep<T>    — write-only:  *renames* — a fresh version of the object is
//                  created so the task starts immediately; this is the
//                  automatic memory management that breaks WAR/WAW
//                  dependences and enables pipeline parallelism in Fig. 1.
//
// Versions are reference counted; old versions stay alive while tasks hold
// them. Nested use follows the subset-privilege rule: passing an already
// resolved wrapper to a child task shares the parent's version without
// re-registering (the parent's own registration outlives its children
// because of the implicit sync).
#pragma once

#include <cassert>
#include <memory>
#include <utility>

#include "conc/inline_vec.hpp"
#include "conc/spinlock.hpp"
#include "sched/task.hpp"

namespace hq {

namespace detail {

/// Type-erased reader/writer dependence tracker for one versioned object.
class obj_tracker : public std::enable_shared_from_this<obj_tracker> {
 public:
  explicit obj_tracker(std::shared_ptr<void> initial_payload)
      : payload_(std::move(initial_payload)) {}

  /// Register `fr` as a reader of the current version; returns the version
  /// payload the task must use.
  std::shared_ptr<void> acquire_read(task_frame* fr);

  /// Register `fr` as the next exclusive writer of the current version
  /// (serializes after the current writer and all readers).
  std::shared_ptr<void> acquire_readwrite(task_frame* fr);

  /// Rename: install `fresh` as the new current version with `fr` as its
  /// writer; no dependences are created.
  std::shared_ptr<void> acquire_write(task_frame* fr, std::shared_ptr<void> fresh);

  /// Current version payload; only race-free for the owner after sync().
  [[nodiscard]] std::shared_ptr<void> payload() const {
    std::lock_guard<spinlock> lk(mu_);
    return payload_;
  }

 private:
  void remove_task(task_frame* fr);
  void watch(task_frame* fr);

  mutable spinlock mu_;
  std::shared_ptr<void> payload_;
  task_frame* writer_ = nullptr;           // last writer, while live
  inline_vec<task_frame*, 4> readers_;     // live readers since last write
};

}  // namespace detail

template <typename T>
class indep;
template <typename T>
class outdep;
template <typename T>
class inoutdep;

/// A program variable with runtime dependence tracking (paper Figure 1's
/// `versioned<T>`). Pass to spawn() cast to indep/outdep/inoutdep.
template <typename T>
class versioned {
 public:
  versioned() : tr_(std::make_shared<detail::obj_tracker>(std::make_shared<T>())) {}
  explicit versioned(T initial)
      : tr_(std::make_shared<detail::obj_tracker>(std::make_shared<T>(std::move(initial)))) {}

  /// Owner access to the current version; call only when no tasks are in
  /// flight on this object (i.e., after sync()).
  T& get() { return *static_cast<T*>(tr_->payload().get()); }
  const T& get() const { return *static_cast<const T*>(tr_->payload().get()); }

  operator indep<T>() const { return indep<T>(tr_); }        // NOLINT
  operator outdep<T>() const { return outdep<T>(tr_); }      // NOLINT
  operator inoutdep<T>() const { return inoutdep<T>(tr_); }  // NOLINT

 private:
  std::shared_ptr<detail::obj_tracker> tr_;
};

/// Read-only access mode. Usable as a value inside the task (get / * / ->).
template <typename T>
class indep {
 public:
  explicit indep(std::shared_ptr<detail::obj_tracker> tr) : tr_(std::move(tr)) {}

  const T& get() const {
    assert(payload_ && "indep used before spawn resolution");
    return *static_cast<const T*>(payload_.get());
  }
  const T& operator*() const { return get(); }
  const T* operator->() const { return &get(); }

  /// Spawn-time resolution (see sched/spawn.hpp). Already-resolved wrappers
  /// are passed through: children share the parent's version under the
  /// parent's registration (subset privileges).
  indep hq_dep_resolve(detail::task_frame* fr) const {
    if (payload_) return *this;
    indep r(tr_);
    r.payload_ = tr_->acquire_read(fr);
    return r;
  }

 private:
  std::shared_ptr<detail::obj_tracker> tr_;
  std::shared_ptr<void> payload_;
};

/// Write-only access mode; spawning with outdep renames the object.
template <typename T>
class outdep {
 public:
  explicit outdep(std::shared_ptr<detail::obj_tracker> tr) : tr_(std::move(tr)) {}

  T& get() const {
    assert(payload_ && "outdep used before spawn resolution");
    return *static_cast<T*>(payload_.get());
  }
  T& operator*() const { return get(); }
  T* operator->() const { return &get(); }

  outdep hq_dep_resolve(detail::task_frame* fr) const {
    if (payload_) return *this;
    outdep r(tr_);
    r.payload_ = tr_->acquire_write(fr, std::make_shared<T>());
    return r;
  }

 private:
  std::shared_ptr<detail::obj_tracker> tr_;
  std::shared_ptr<void> payload_;
};

/// Read-write access mode; serializes with all prior accesses.
template <typename T>
class inoutdep {
 public:
  explicit inoutdep(std::shared_ptr<detail::obj_tracker> tr) : tr_(std::move(tr)) {}

  T& get() const {
    assert(payload_ && "inoutdep used before spawn resolution");
    return *static_cast<T*>(payload_.get());
  }
  T& operator*() const { return get(); }
  T* operator->() const { return &get(); }

  inoutdep hq_dep_resolve(detail::task_frame* fr) const {
    if (payload_) return *this;
    inoutdep r(tr_);
    r.payload_ = tr_->acquire_readwrite(fr);
    return r;
  }

 private:
  std::shared_ptr<detail::obj_tracker> tr_;
  std::shared_ptr<void> payload_;
};

}  // namespace hq
