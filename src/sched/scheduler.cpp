#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "core/queue_cb.hpp"  // qattach, for nesting safety + the attach pool
#include "sched/watchdog.hpp"

namespace hq {

namespace detail {

thread_local worker_ctx* t_worker = nullptr;

task_frame* current_frame() noexcept {
  return t_worker ? t_worker->current : nullptr;
}

}  // namespace detail

using detail::task_frame;
using detail::worker_ctx;

scheduler* scheduler::current() noexcept {
  return detail::t_worker ? detail::t_worker->sched : nullptr;
}

namespace {

/// Cross-worker return-stack bound for the frame/attachment pools (see
/// sched/obj_pool.hpp: beyond this many parked returns a freed block
/// migrates to the freeing worker's own magazine instead). Pool memory
/// itself is bounded by the peak in-flight record count, not by this knob.
std::size_t pool_cap_from_env() {
  if (const char* env = std::getenv("HQ_FRAME_POOL_CAP")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 4096;
}

/// HQ_WATCHDOG_MS: no-progress interval (milliseconds) after which a run is
/// cancelled with a stall diagnostic. 0 / unset = disabled.
unsigned watchdog_ms_from_env() {
  if (const char* env = std::getenv("HQ_WATCHDOG_MS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;
}

}  // namespace

scheduler::scheduler(unsigned num_workers)
    : scheduler(num_workers, placement_config{placement_policy_from_env(),
                                              nullptr,
                                              {}}) {}

scheduler::scheduler(unsigned num_workers, placement_config cfg) {
  if (num_workers == 0) {
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  topo_ = cfg.topo != nullptr ? *cfg.topo : topology::detect();
  policy_ = cfg.policy;
  watchdog_ms_ = watchdog_ms_from_env();

  // Worker -> CPU assignment: explicit list (benches building exact
  // pairings) or the deterministic policy plan; empty means unplaced.
  std::vector<unsigned> cpus = cfg.explicit_cpus.empty()
                                   ? plan_placement(topo_, policy_, num_workers)
                                   : std::move(cfg.explicit_cpus);

  workers_.reserve(num_workers);
  std::vector<int> home_nodes(num_workers, -1);
  for (unsigned i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<worker_ctx>();
    w->sched = this;
    w->index = i;
    if (!cpus.empty()) {
      const unsigned cpu = cpus[i % cpus.size()];
      if (const cpu_desc* d = topo_.find(cpu)) {
        w->cpu = static_cast<int>(d->cpu);
        w->node = static_cast<int>(d->node);
        w->llc = static_cast<int>(d->llc);
        w->core = static_cast<int>(d->core);
        home_nodes[i] = w->node;
      }
    }
    workers_.push_back(std::move(w));
  }

  // Victim order: placed workers sweep nearest-first (topology distance,
  // ties broken by rotation offset so same-distance victims differ between
  // thieves); unplaced workers use the plain rotation. Either way a pure
  // function of (worker id, policy, topology).
  for (unsigned i = 0; i < num_workers; ++i) {
    worker_ctx& w = *workers_[i];
    w.victims.reserve(num_workers - 1);
    for (unsigned j = 1; j < num_workers; ++j) {
      w.victims.push_back((i + j) % num_workers);
    }
    if (w.cpu >= 0) {
      const cpu_desc* self = topo_.find(static_cast<unsigned>(w.cpu));
      std::stable_sort(w.victims.begin(), w.victims.end(),
                       [&](unsigned a, unsigned b) {
                         const worker_ctx& wa = *workers_[a];
                         const worker_ctx& wb = *workers_[b];
                         const unsigned da =
                             wa.cpu >= 0 ? topology::distance(
                                               *self, *topo_.find(static_cast<
                                                                  unsigned>(
                                                   wa.cpu)))
                                         : topology::kDistRemote;
                         const unsigned db =
                             wb.cpu >= 0 ? topology::distance(
                                               *self, *topo_.find(static_cast<
                                                                  unsigned>(
                                                   wb.cpu)))
                                         : topology::kDistRemote;
                         return da < db;
                       });
    }
  }

  const std::size_t cap = pool_cap_from_env();
  frame_pool_.init(num_workers, sizeof(task_frame), cap, home_nodes);
  // The attach pool serves both per-(task, queue) attachments and producer
  // shard records (core/view.hpp): one block size covering the larger of
  // the two keeps every spawn-path allocation on the per-worker magazines.
  attach_pool_.init(num_workers,
                    std::max(sizeof(detail::qattach), sizeof(detail::pshard)),
                    cap, home_nodes);

  threads_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
#if defined(__linux__)
    // Best-effort pinning from the ctor (the handle works before the thread
    // runs). Failure — e.g. a synthetic topology naming CPUs this machine
    // lacks — leaves the placement logical: arenas, steal order and the
    // locality counters still follow the assigned node ids.
    worker_ctx& w = *workers_[i];
    if (w.cpu >= 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(w.cpu), &set);
      w.pinned = pthread_setaffinity_np(threads_.back().native_handle(),
                                        sizeof(set), &set) == 0;
    }
#endif
  }
}

scheduler::~scheduler() {
  stop_.store(true, std::memory_order_release);
  work_epoch_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
  assert(injector_.empty() && "scheduler destroyed with pending tasks");
}

void scheduler::run_root(task_fn fn) {
  assert(detail::t_worker == nullptr &&
         "run() must not be called from inside a task; use spawn()");
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    root_done_ = false;
  }
  task_frame* root = alloc_frame(nullptr);
  root->fn = std::move(fn);
  // finish() signals done_cv_ for the parentless root frame after freeing
  // it (not via a completion hook, which would run pre-free): once the wait
  // below returns, no frame is live and no scheduler work is in flight.
  // Arm the stall watchdog for the duration of this run (HQ_WATCHDOG_MS /
  // set_watchdog). Its monitor thread cancels a no-progress run with a
  // stall_error diagnostic, which surfaces through the rethrow below.
  std::optional<watchdog> dog;
  if (watchdog_ms_ > 0) {
    watchdog::options wo;
    wo.interval = std::chrono::milliseconds(watchdog_ms_);
    wo.grace_intervals = watchdog_grace_;
    dog.emplace(*this, wo);
  }
  // Release the spawn guard: the root has no dependences.
  if (root->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue(root);
  }
  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] { return root_done_; });
  }
  dog.reset();
  // Surface the run's first failure on the calling thread. The root has
  // completed, so every frame was executed (bodies skipped once cancelling)
  // and every queue torn down — resetting the epoch leaves the scheduler
  // ready for the next run().
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(failure_mu_);
    err = std::exchange(failure_, nullptr);
  }
  cancelled_.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

void scheduler::record_failure(std::exception_ptr e) noexcept {
  {
    std::lock_guard<std::mutex> lk(failure_mu_);
    if (!failure_) failure_ = std::move(e);
  }
  cancelled_.store(true, std::memory_order_release);
  // Parked workers wake within their 10ms safety-net timeout and then help
  // drain the (body-skipping) remainder; no extra signalling needed.
}

void scheduler::enqueue(task_frame* t) {
  assert(t->sched == this);
  worker_ctx* w = detail::t_worker;
  if (w != nullptr && w->sched == this) {
    w->deque.push_bottom(t);
  } else {
    std::lock_guard<std::mutex> lk(inj_mu_);
    injector_.push_back(t);
    inj_count_.store(injector_.size(), std::memory_order_release);
  }
  // Publish-then-check handshake with parking workers: the task publish
  // above must be ordered before the idle probe, exactly as a parking
  // worker orders its num_idle_ increment before its last work probe
  // (worker_main). One of the two sides is guaranteed to see the other, so
  // spawns with no parked worker — the hot path — touch neither the shared
  // work_epoch_ line nor the condition variable.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  wake_idle();
}

void scheduler::wake_idle() {
  if (num_idle_.load(std::memory_order_relaxed) > 0) {
    work_epoch_.fetch_add(1, std::memory_order_release);
    idle_cv_.notify_one();
  }
}

task_frame* scheduler::try_steal(worker_ctx& w) {
  if (workers_.size() <= 1) return nullptr;
  std::uint64_t attempts = 0;
  task_frame* found = nullptr;
  // Two sweeps over the precomputed victim order — nearest victims first
  // under a placement policy, plain rotation otherwise (scheduler ctor). A
  // stolen frame is about to have its deque line and task state pulled into
  // this worker's cache; preferring an SMT sibling or LLC peer makes that
  // transfer a cache hit instead of a node hop.
  for (unsigned round = 0; round < 2 && found == nullptr; ++round) {
    for (unsigned victim : w.victims) {
      ++attempts;
      if (task_frame* t = workers_[victim]->deque.steal()) {
        w.counters.steals.fetch_add(1, std::memory_order_relaxed);
        found = t;
        break;
      }
    }
  }
  w.counters.steal_attempts.fetch_add(attempts, std::memory_order_relaxed);
  return found;
}

task_frame* scheduler::pop_injector() {
  // The count gate keeps the empty case (the common one) lock-free.
  if (inj_count_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard<std::mutex> lk(inj_mu_);
  if (injector_.empty()) return nullptr;
  task_frame* t = injector_.front();
  injector_.pop_front();
  inj_count_.store(injector_.size(), std::memory_order_release);
  return t;
}

task_frame* scheduler::find_task(worker_ctx& w) {
  if (task_frame* t = w.deque.pop_bottom()) return t;
  // Poll the injector before the steal sweep: external submissions must not
  // starve behind 2·n failed steal rounds.
  if (task_frame* t = pop_injector()) return t;
  if (task_frame* t = try_steal(w)) return t;
  return pop_injector();
}

bool scheduler::work_available() const {
  if (inj_count_.load(std::memory_order_relaxed) > 0) return true;
  for (const auto& w : workers_) {
    if (w->deque.size_estimate() > 0) return true;
  }
  return false;
}

namespace {

bool is_spawn_ancestor(const task_frame* anc, const task_frame* t) {
  for (const task_frame* p = t->parent; p != nullptr; p = p->parent) {
    if (p == anc) return true;
  }
  return false;
}

/// Help-while-blocked deadlock avoidance. A blocking wait that helps may
/// pull any ready task, including a pop-privileged (consumer) task `cand`.
/// Executing it nested on this worker is unsafe when a frame `f` suspended
/// on the worker's execution stack holds a live *spawned* push attachment on
/// a queue `cand` pops: cand's blocking pop can wait for f's producer
/// subtree to complete (the scan blocks at f's still-open shard), while f
/// resumes only after cand returns — a cycle that spins forever. Spawn-tree
/// ancestors of cand are exempt: a descendant consumer never waits on an
/// ancestor's own later pushes (its visible range was frozen at its spawn,
/// before the ancestor's continuation shard), which also keeps the paper's
/// producer-spawns-consumer idiom executable on one worker. The owner
/// attachment (parent == nullptr) is exempt for the same reason.
/// All frames inspected are either suspended on this worker's own stack or
/// not yet started, so their attachment lists are stable.
bool safe_to_nest(task_frame* host, task_frame* cand) {
  for (detail::qattach* at : cand->attachments) {
    if ((at->priv & detail::kPrivPop) == 0) continue;
    for (task_frame* f = host; f != nullptr; f = f->exec_parent) {
      if (is_spawn_ancestor(f, cand)) continue;
      for (detail::qattach* af : f->attachments) {
        if (af->q == at->q && (af->priv & detail::kPrivPush) != 0 &&
            af->parent != nullptr) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

bool scheduler::help_one() {
  worker_ctx* w = detail::t_worker;
  if (w == nullptr || w->sched != this) return false;
  // Two attempts: if the first pick is unsafe to nest, re-expose it and try
  // the opposite end of the local deque once (steal takes the oldest task).
  // When the deque held nothing else, steal hands the deferred task straight
  // back — recognize it and stop rather than churn.
  task_frame* deferred = nullptr;
  for (int attempt = 0; attempt < 2; ++attempt) {
    task_frame* t = attempt == 0 ? find_task(*w) : w->deque.steal();
    if (t == nullptr) return false;
    if (t == deferred) {
      w->deque.push_bottom(t);  // already exposed and advertised once
      return false;
    }
    if (w->current != nullptr && !safe_to_nest(w->current, t)) {
      enqueue(t);  // re-expose: a parked worker can run it at top level
      deferred = t;
      continue;
    }
    w->counters.helps.fetch_add(1, std::memory_order_relaxed);
    execute(t);
    return true;
  }
  return false;
}

void scheduler::execute(task_frame* t) {
  worker_ctx* w = detail::t_worker;
  assert(w != nullptr);
  task_frame* prev = w->current;
  t->exec_parent = prev;
  w->current = t;
  w->counters.executed.fetch_add(1, std::memory_order_relaxed);

  // The failure guard. Cost when nothing throws: one relaxed load and a
  // zero-overhead (table-driven) try region around the existing basic_fn
  // invoke — no allocation, nothing added to the spawn path. Once the run
  // is cancelling, frames skip their bodies entirely: the completion
  // protocol below still runs, so join counters, completion hooks (queue
  // shard reduction) and attachments unwind exactly as on success.
  if (!cancelled_.load(std::memory_order_relaxed)) [[likely]] {
    try {
      t->fn();
    } catch (const detail::cancel_unwind&) {
      // A cancellable wait unwound this body; the originating failure is
      // already in the slot.
    } catch (...) {
      record_failure(std::current_exception());
    }
  }
  // Implicit sync: a task returns only once all its children completed
  // (Cilk semantics; required for the hyperqueue view cascade, which merges
  // children views bottom-up). Not cancellable: children always complete
  // (their bodies skip once cancelling), and the view cascade needs them.
  wait_until([t] { return t->live_children.load(std::memory_order_acquire) == 0; });
  t->fn.reset();
  finish(t);
  w->current = prev;
}

void scheduler::finish(task_frame* t) {
  // 1. Completion hooks: deregister from object trackers, reduce hyperqueue
  //    views into the left sibling / parent (core/queue_cb.cpp).
  for (auto& hook : t->completion_hooks) hook();
  t->completion_hooks.clear();

  // 2. Mark completed and collect dependents; no new dependents can be added
  //    past this point (task_frame::add_dependent checks the flag).
  {
    std::lock_guard<spinlock> lk(t->dep_mu);
    t->completed = true;
  }
  for (task_frame* d : t->dependents) satisfy(d);
  t->dependents.clear();

  // 3. Notify the parent's join counter last, so that a parent passing its
  //    sync observes all effects of this child.
  task_frame* parent = t->parent;
  free_frame(t);
  if (parent != nullptr) {
    parent->live_children.fetch_sub(1, std::memory_order_release);
  } else {
    // The root (the only parentless frame): wake run_root after the frame
    // is recycled, so run() returning means the pools are quiescent.
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      root_done_ = true;
    }
    done_cv_.notify_all();
  }
}

void scheduler::satisfy(task_frame* t) {
  if (t->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue(t);
  }
}

void scheduler::worker_main(unsigned index) {
  worker_ctx* w = workers_[index].get();
  detail::t_worker = w;
  backoff bo;
  while (true) {
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) break;
    if (task_frame* t = find_task(*w)) {
      execute(t);
      bo.reset();
      continue;
    }
    bo.pause();
    if (bo.is_yielding()) {
      // Park until new work is enqueued (epoch moves) or shutdown. Advertise
      // idleness first, then probe once more: an enqueue() that missed the
      // increment must have published its task before its idle check (both
      // sides fence seq_cst), so either it wakes us or we see its task here.
      // The timeout is a safety net against the residual notify race; it
      // bounds any stall to one period.
      num_idle_.fetch_add(1, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!work_available()) {
        std::unique_lock<std::mutex> lk(idle_mu_);
        idle_cv_.wait_for(lk, std::chrono::milliseconds(10), [&] {
          return stop_.load(std::memory_order_acquire) ||
                 work_epoch_.load(std::memory_order_acquire) != epoch;
        });
      }
      num_idle_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  detail::t_worker = nullptr;
}

scheduler::stats_t scheduler::stats() const {
  stats_t s;
  for (const auto& w : workers_) {
    s.spawns += w->counters.spawns.load(std::memory_order_relaxed);
    s.executed += w->counters.executed.load(std::memory_order_relaxed);
    s.steals += w->counters.steals.load(std::memory_order_relaxed);
    s.steal_attempts += w->counters.steal_attempts.load(std::memory_order_relaxed);
    s.helps += w->counters.helps.load(std::memory_order_relaxed);
  }
  s.throttle_waits = throttle_waits_.load(std::memory_order_relaxed);
  s.throttle_ns = throttle_ns_.load(std::memory_order_relaxed);
  return s;
}

void scheduler::throttle_begin(const void* queue) noexcept {
  detail::worker_ctx* w = detail::t_worker;
  if (w != nullptr && w->sched == this)
    w->blocked_on_budget.store(queue, std::memory_order_relaxed);
  throttle_waits_.fetch_add(1, std::memory_order_relaxed);
}

void scheduler::throttle_end(std::uint64_t waited_ns) noexcept {
  detail::worker_ctx* w = detail::t_worker;
  if (w != nullptr && w->sched == this)
    w->blocked_on_budget.store(nullptr, std::memory_order_relaxed);
  throttle_ns_.fetch_add(waited_ns, std::memory_order_relaxed);
}

std::vector<scheduler::worker_stats_t> scheduler::per_worker_stats() const {
  std::vector<worker_stats_t> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    worker_stats_t s;
    s.worker = w->index;
    s.cpu = w->cpu;
    s.node = w->node;
    s.llc = w->llc;
    s.pinned = w->pinned;
    s.spawns = w->counters.spawns.load(std::memory_order_relaxed);
    s.executed = w->counters.executed.load(std::memory_order_relaxed);
    s.steals = w->counters.steals.load(std::memory_order_relaxed);
    s.steal_attempts =
        w->counters.steal_attempts.load(std::memory_order_relaxed);
    s.helps = w->counters.helps.load(std::memory_order_relaxed);
    s.deque_depth = w->deque.size_estimate();
    s.blocked_on_budget = w->blocked_on_budget.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

int scheduler::current_worker_node() noexcept {
  const worker_ctx* w = detail::t_worker;
  return w != nullptr ? w->node : -1;
}

void scheduler::reset_stats() {
  for (auto& w : workers_) {
    w->counters.spawns.store(0, std::memory_order_relaxed);
    w->counters.executed.store(0, std::memory_order_relaxed);
    w->counters.steals.store(0, std::memory_order_relaxed);
    w->counters.steal_attempts.store(0, std::memory_order_relaxed);
    w->counters.helps.store(0, std::memory_order_relaxed);
  }
  throttle_waits_.store(0, std::memory_order_relaxed);
  throttle_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace hq
