// Figure 11 reproduction: dedup speedup vs cores for Pthreads, TBB,
// Objects and Hyperqueue.
//
// Stage costs and chunk statistics are measured on this host; speedup
// curves come from the virtual-time models (single-core host — see
// DESIGN.md). Expected shape: hyperqueue leads pthreads by ~12-30% in the
// 6-8 core range (fine-grained streaming vs list gathering / queue
// overhead); TBB trails pthreads; everything saturates against the ~8%
// serial output stage; the hyperqueue advantage narrows at high core
// counts (task granularity), as in the paper.
#include <cstdlib>
#include <string>
#include <thread>

#include "apps/dedup/dedup.hpp"
#include "calibrate.hpp"
#include "quick.hpp"
#include "sim/models.hpp"
#include "util/datagen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const bool quick = hq::bench::quick_mode(argc, argv);
  hq::apps::dedup::config cfg;
  cfg.input_bytes = 8u << 20;
  if (const char* env = std::getenv("HQ_DEDUP_MB")) {
    cfg.input_bytes = static_cast<std::size_t>(std::atol(env)) << 20;
  }
  if (quick) cfg.input_bytes = 2u << 20;
  auto input =
      hq::util::gen_archive(cfg.input_bytes, cfg.dup_fraction, cfg.seed);

  // 1. Host-measured characterization -> nested pipeline spec.
  auto ch = hq::apps::dedup::stage_times(cfg, input);
  hq::sim::nested_spec spec;
  spec.coarse = ch.iterations[0];
  spec.fine_per_coarse = ch.iterations[2] / std::max<std::uint64_t>(1, ch.iterations[0]);
  spec.fragment_cost = ch.seconds[0] / static_cast<double>(ch.iterations[0]);
  spec.refine_cost = ch.seconds[1] / static_cast<double>(ch.iterations[1]);
  spec.dedup_cost = ch.seconds[2] / static_cast<double>(ch.iterations[2]);
  spec.compress_cost = ch.seconds[3] / static_cast<double>(ch.iterations[3]);
  spec.unique_fraction = static_cast<double>(ch.iterations[3]) /
                         static_cast<double>(ch.iterations[2]);
  spec.output_cost = ch.seconds[4] / static_cast<double>(ch.iterations[4]);
  spec.jitter = 0.3;
  spec.seed = cfg.seed;
  const double serial = hq::sim::serial_time_nested(spec);

  // 2. Host-calibrated overheads, plus the dedup-specific oversubscription
  // locality stretch (per-chunk compressor state is evicted when ~3x more
  // stage threads than cores timeshare; see overheads::pth_oversub_penalty).
  auto ov = hq::bench::calibrate_overheads();
  ov.pth_oversub_penalty = 0.35;

  // 3. Core sweep.
  hq::util::table table({"Cores", "Pthreads", "TBB", "Objects", "Hyperqueue",
                         "HQ/Pthreads"});
  for (unsigned p : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 22u, 28u, 32u}) {
    auto m = hq::bench::paper_machine(p);
    const double sp_pth =
        serial / hq::sim::sim_nested_pthreads(spec, m, ov, /*threads=*/p);
    // Reed et al. use a token count on the order of the thread count; the
    // nested-list tokens are heavyweight (a whole coarse chunk each).
    const double sp_tbb = serial / hq::sim::sim_nested_tbb(spec, m, ov, p);
    const double sp_obj = serial / hq::sim::sim_nested_objects(spec, m, ov);
    const double sp_hq = serial / hq::sim::sim_nested_hyperqueue(spec, m, ov);
    table.add_row({hq::util::table::cell(static_cast<std::uint64_t>(p)),
                   hq::util::table::cell(sp_pth, 2),
                   hq::util::table::cell(sp_tbb, 2),
                   hq::util::table::cell(sp_obj, 2),
                   hq::util::table::cell(sp_hq, 2),
                   hq::util::table::cell(sp_hq / sp_pth, 3)});
  }
  table.print("Figure 11: dedup speedup over serial (virtual-time models, "
              "host-measured stage costs)");

  // 4. Real-execution validation on this host.
  hq::apps::dedup::config small = cfg;
  small.input_bytes = quick ? (1u << 20) : (2u << 20);
  small.threads = std::max(1u, std::thread::hardware_concurrency());
  auto sinput =
      hq::util::gen_archive(small.input_bytes, small.dup_fraction, small.seed);
  auto serial_r = hq::apps::dedup::run_serial(small, sinput);
  auto pth_r = hq::apps::dedup::run_pthreads(small, sinput);
  auto tbb_r = hq::apps::dedup::run_tbb(small, sinput);
  auto obj_r = hq::apps::dedup::run_objects(small, sinput);
  auto hqq_r = hq::apps::dedup::run_hyperqueue(small, sinput);
  auto same = [&](const hq::apps::dedup::result& r) {
    return r.output == serial_r.output ? "yes" : "NO";
  };
  hq::util::table val({"Variant", "Time (s)", "Output matches serial"});
  val.add_row({"serial", hq::util::table::cell(serial_r.seconds, 3), "-"});
  val.add_row({"pthreads", hq::util::table::cell(pth_r.seconds, 3), same(pth_r)});
  val.add_row({"tbb", hq::util::table::cell(tbb_r.seconds, 3), same(tbb_r)});
  val.add_row({"objects", hq::util::table::cell(obj_r.seconds, 3), same(obj_r)});
  val.add_row({"hyperqueue", hq::util::table::cell(hqq_r.seconds, 3), same(hqq_r)});
  val.print("Real execution at " + std::to_string(small.threads) +
            " worker(s) on this host (validation)");
  const bool ok = pth_r.output == serial_r.output &&
                  tbb_r.output == serial_r.output &&
                  obj_r.output == serial_r.output &&
                  hqq_r.output == serial_r.output;
  return ok ? 0 : 1;
}
